//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *small* slice of the `rand 0.8` API it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen::<f64>()`,
//! `gen_range(..)` and `gen_bool(..)`. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for simulation and
//! test-input generation, **not** cryptographically secure (the real
//! `StdRng` is; nothing in this workspace relies on that).
//!
//! Streams differ from the real `rand`, so seeds reproduce runs only
//! within this workspace — which is all the simulator and benches need.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Wrapping arithmetic keeps signed ranges (e.g. -5..5)
                // correct: the span and the offset are exact mod 2^64.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded draw (Lemire); the tiny modulo
                // bias of one 64-bit draw is irrelevant for tests/sim.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                if s == e {
                    return s;
                }
                (s..e.wrapping_add(1)).sample(rng)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = self.into_inner();
        assert!(s <= e, "cannot sample empty range");
        // The closed/half-open distinction is below f64 resolution here.
        s + f64::draw(rng) * (e - s)
    }
}

/// The user-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_is_roughly_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
