//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its test suites use: the [`Strategy`]
//! trait with ranges, tuples, `prop_map`, `prop::collection::vec`,
//! `prop::sample::select` and `prop::option::of`; `any::<T>()` for a few
//! primitives; the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header; and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for a vendored test shim:
//!
//! * **No shrinking.** A failing case reports the test name, case index
//!   and seed; cases are deterministic per test (seeded from the test
//!   name), so failures reproduce exactly under `cargo test`.
//! * **No persistence files**, no forking, no timeout handling.
//! * Value distributions are simpler (e.g. uniform rather than biased
//!   toward edge cases).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value-tree/shrinking layer: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty => $e:expr),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    let f: fn(&mut StdRng) -> $t = $e;
                    f(rng)
                }
            }
        )*};
    }

    arbitrary_prim! {
        bool => |r| r.gen::<f64>() < 0.5,
        u8 => |r| (r.gen::<u64>() & 0xFF) as u8,
        u16 => |r| (r.gen::<u64>() & 0xFFFF) as u16,
        u32 => |r| r.gen::<u32>(),
        u64 => |r| r.gen::<u64>(),
        usize => |r| r.gen::<u64>() as usize,
        i32 => |r| r.gen::<u32>() as i32,
        i64 => |r| r.gen::<u64>() as i64,
        f64 => |r| r.gen::<f64>() * 2e6 - 1e6
    }

    /// The full-domain strategy for `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.end - self.size.start <= 1 {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniform choice among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of no options");
        Select { options }
    }
}

pub mod option {
    //! `Option` strategies (`prop::option`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            // The real crate defaults to Some three times out of four.
            if rng.gen_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Configuration and the per-test runner used by [`proptest!`](crate::proptest).

    /// Knobs honored by the vendored runner. Only `cases` has an effect;
    /// the other fields exist so `..ProptestConfig::default()` updates
    /// from upstream-style code keep compiling.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Accepted but ignored (no shrinking in the vendored shim).
        pub max_shrink_iters: u32,
        /// Accepted but ignored (no global rejection budget).
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// Stable 64-bit FNV-1a, used to derive a per-test seed from its name
    /// so runs are deterministic and independent of test order.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! Everything the seed tests import via `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module path (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Re-exports for macro expansions, so user crates need no direct
    //! `rand` dependency.
    pub use rand;
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ..) { .. }`
/// item becomes a plain `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = <$crate::__rt::rand::rngs::StdRng as $crate::__rt::rand::SeedableRng>::seed_from_u64(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }));
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed (seed {:#x}); the run is \
                         deterministic, rerun the test to reproduce",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __seed,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// `assert!` inside a property body (no shrinking, so it simply asserts).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards the current case when its inputs are unsuitable. The vendored
/// runner counts a discarded case as passed (no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_domain() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let v = prop::collection::vec((0usize..5, 0.5f64..2.0), 1..10).sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 10);
        for (a, b) in v {
            assert!(a < 5);
            assert!((0.5..2.0).contains(&b));
        }
        let s = prop::sample::select(vec![1, 2, 3]).sample(&mut rng);
        assert!([1, 2, 3].contains(&s));
        let mapped = (0u32..3).prop_map(|x| x * 10).sample(&mut rng);
        assert!(mapped % 10 == 0 && mapped < 30);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro parses doc comments, config headers, multiple
        /// arguments and trailing commas.
        #[test]
        fn macro_round_trip(x in 0usize..10, ys in prop::collection::vec(any::<bool>(), 4),) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), 4);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
