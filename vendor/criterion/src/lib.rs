//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then
//! `sample_size` timed samples whose per-iteration minimum, median and
//! mean are printed — with no statistical outlier analysis, plots or
//! saved baselines. The numbers are honest wall-clock medians, good
//! enough for the before/after spot checks the workspace needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_name(name: impl Into<String>) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId::from_name(name)
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once per configured iteration, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.default_sample_size,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_benchmark(&id.into().name, self.default_sample_size, f);
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up: run until ~100 ms or 3 batches of one iteration each, and
    // size iteration batches so one sample takes ≳1 ms (cheap functions
    // are otherwise all timer noise).
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1)
            || warmup_start.elapsed() > Duration::from_millis(100)
        {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {name}: min {} / median {} / mean {}  ({sample_size} samples × {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro. The
/// vendored version ignores criterion CLI flags (it accepts and discards
/// `--bench` and filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-8), "25.0 ns");
    }
}
