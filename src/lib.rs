//! `mdlump` — compositional lumping of continuous-time Markov chains
//! represented as matrix diagrams.
//!
//! This umbrella crate re-exports the full stack; see the individual crates
//! for the detailed APIs:
//!
//! * [`linalg`] — sparse matrices, Kronecker products, the [`linalg::RateMatrix`] trait;
//! * [`ctmc`] — CTMCs, Markov reward processes, stationary/transient solvers;
//! * [`partition`] — partitions and the generic refinement engine (paper Fig. 1–2);
//! * [`statelump`] — optimal *state-level* lumping of flat CTMCs (paper ref. \[9\]);
//! * [`mdd`] — hash-consed multi-valued decision diagrams indexing reachable states;
//! * [`md`] — matrix diagrams: the symbolic matrix representation being lumped;
//! * [`core`] — the paper's contribution: level-local compositional lumping of MDs;
//! * [`models`] — a compositional modeling formalism and the paper's tandem
//!   MSMQ + hypercube example;
//! * [`obs`] — zero-dependency observability: metrics, tracing, compute
//!   budgets and deterministic fault injection.
//!
//! # Quickstart
//!
//! ```
//! use mdlump::models::tandem::{TandemConfig, TandemModel};
//! use mdlump::core::{LumpKind, LumpRequest};
//!
//! let model = TandemModel::new(TandemConfig { jobs: 1, ..TandemConfig::default() });
//! let mrp = model.build_md_mrp().expect("model builds");
//! let lumped = LumpRequest::new(LumpKind::Ordinary).run(&mrp).expect("lumpable input");
//! assert!(lumped.mrp.num_states() <= mrp.num_states());
//! ```

pub use mdl_core as core;
pub use mdl_ctmc as ctmc;
pub use mdl_linalg as linalg;
pub use mdl_md as md;
pub use mdl_mdd as mdd;
pub use mdl_models as models;
pub use mdl_obs as obs;
pub use mdl_partition as partition;
pub use mdl_statelump as statelump;
