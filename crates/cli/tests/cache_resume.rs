//! Acceptance tests for the staged pipeline cache and checkpoint/resume
//! flow, driven through the compiled binary: an interrupted stationary
//! solve resumed from its snapshot must match the uninterrupted answer,
//! and a second run against a warm cache must hit every stage.

use std::path::PathBuf;
use std::process::{Command, Output};

fn model_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../models")
        .join("worker_pool.mdl")
}

/// A fresh per-test scratch path (cleared if a previous run left it).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdl-cache-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the binary with the host's `MDL_CACHE` scrubbed so only the
/// test's own flags decide where artifacts go.
fn run_with(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mdlump-cli"));
    cmd.args(args).env_remove("MDL_CACHE");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

/// Extracts the lumped measure value from a solve's stdout.
fn measure_value(out: &Output) -> f64 {
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("measure (Stationary):"))
        .unwrap_or_else(|| panic!("no measure line in {stdout:?}"));
    line.rsplit(':')
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("unparsable measure in {line:?}: {e}"))
}

/// Reads a counter value out of a JSONL metrics report, `None` when the
/// counter never fired in that process.
fn counter(jsonl: &str, name: &str) -> Option<u64> {
    let tag = format!("\"name\":\"{name}\"");
    jsonl
        .lines()
        .find(|l| l.contains("\"type\":\"counter\"") && l.contains(&tag))
        .map(|l| {
            l.rsplit("\"value\":")
                .next()
                .unwrap()
                .trim_end_matches('}')
                .parse()
                .unwrap_or_else(|e| panic!("unparsable counter in {l:?}: {e}"))
        })
}

#[test]
fn interrupted_solve_resumes_to_the_uninterrupted_answer() {
    let model = model_path();
    let model = model.to_str().unwrap();
    let cache = scratch("resume");
    let cache_str = cache.to_str().unwrap();

    // The reference answer: no cache, no interruption.
    let baseline = run_with(&["solve", model], &[]);
    assert_eq!(baseline.status.code(), Some(0), "{baseline:?}");
    let expected = measure_value(&baseline);

    // Interrupt mid-solve: the failpoint stretches every stationary
    // iteration by 20ms, so by the solver's iteration-33 budget check
    // at least 640ms have passed and the 400ms deadline has long
    // expired (the un-delayed build/lump/compile stages finish well
    // inside it). `--checkpoint-every 1` snapshots each iteration plus
    // a forced one on the way out.
    let interrupted = run_with(
        &[
            "solve",
            model,
            "--cache-dir",
            cache_str,
            "--checkpoint-every",
            "1",
            "--deadline",
            "400ms",
        ],
        &[("MDL_FAILPOINTS", "solver.iterate=sleep:20ms")],
    );
    assert_eq!(interrupted.status.code(), Some(2), "{interrupted:?}");
    let stderr = String::from_utf8_lossy(&interrupted.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");

    // Resume from the snapshot (no failpoint this time) and land on the
    // same answer as the never-interrupted run.
    let resumed = run_with(&["solve", model, "--cache-dir", cache_str, "--resume"], &[]);
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("resuming from checkpoint ("), "{stdout}");
    let got = measure_value(&resumed);
    assert!(
        (got - expected).abs() <= 1e-10,
        "resumed {got} vs uninterrupted {expected}"
    );

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn warm_cache_run_hits_every_stage() {
    let model = model_path();
    let model = model.to_str().unwrap();
    let cache = scratch("warm");
    let cache_str = cache.to_str().unwrap();
    let cold_metrics = scratch("warm-metrics-cold");
    let warm_metrics = scratch("warm-metrics-warm");

    let solve = |metrics_out: &PathBuf| {
        run_with(
            &[
                "solve",
                model,
                "--cache-dir",
                cache_str,
                "--metrics",
                "json",
                "--metrics-out",
                metrics_out.to_str().unwrap(),
            ],
            &[],
        )
    };

    let cold = solve(&cold_metrics);
    assert_eq!(cold.status.code(), Some(0), "{cold:?}");
    let cold_report = std::fs::read_to_string(&cold_metrics).expect("cold metrics written");
    // The cold run populates the cache and reports the model's footprint.
    assert!(
        counter(&cold_report, "store.write_bytes").unwrap_or(0) > 0,
        "{cold_report}"
    );
    assert!(
        counter(&cold_report, "md.memory_bytes").unwrap_or(0) > 0,
        "{cold_report}"
    );
    assert!(
        counter(&cold_report, "mdd.memory_bytes").unwrap_or(0) > 0,
        "{cold_report}"
    );

    let warm = solve(&warm_metrics);
    assert_eq!(warm.status.code(), Some(0), "{warm:?}");
    assert_eq!(warm.stdout, cold.stdout, "warm output must be identical");
    let warm_report = std::fs::read_to_string(&warm_metrics).expect("warm metrics written");
    // Every stage — build, lump, compile, solve, measures — comes out of
    // the cache: nothing misses, nothing is rewritten.
    assert!(
        counter(&warm_report, "store.hit").unwrap_or(0) >= 5,
        "{warm_report}"
    );
    assert_eq!(
        counter(&warm_report, "store.miss").unwrap_or(0),
        0,
        "{warm_report}"
    );
    assert_eq!(
        counter(&warm_report, "store.write_bytes").unwrap_or(0),
        0,
        "{warm_report}"
    );

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&cold_metrics);
    let _ = std::fs::remove_file(&warm_metrics);
}
