//! The sample model files shipped in `models/` must keep parsing and
//! producing the behaviour their comments document.

use std::path::PathBuf;

use mdl_cli::commands::{self, Measure};
use mdl_cli::parse_model;
use mdl_core::{KernelOptions, LumpKind, LumpRequest};

fn load(name: &str) -> mdl_cli::ParsedModel {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../models")
        .join(name);
    let input = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_model(&input).expect("shipped model parses")
}

#[test]
fn worker_pool_lumps_as_documented() {
    let parsed = load("worker_pool.mdl");
    let mrp = parsed.build().expect("builds");
    assert_eq!(mrp.num_states(), 16);
    let result = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    // The 2^3 worker bitmask collapses to 4 busy-counts: 16 -> 8.
    assert_eq!(result.stats.lumped_states, 8);
    assert_eq!(result.partitions[1].num_classes(), 4);
}

#[test]
fn worker_pool_measures_cross_check() {
    let parsed = load("worker_pool.mdl");
    let out = commands::solve(
        &parsed,
        LumpKind::Ordinary,
        Measure::Stationary,
        1_000,
        &KernelOptions::default(),
        &mdl_cli::flags::ResilienceFlags::default(),
        &commands::SolveSetup::ephemeral(0),
    )
    .expect("solves");
    assert!(out.contains("cross-check"), "{out}");
}

#[test]
fn ring_collapses_fully_under_exact_lumping() {
    // Exact lumpability conditions columns and the initial distribution —
    // not the reward — so the rotation-invariant ring collapses to a
    // single class with the uniform `initial` section, and the
    // {0,3}-indicator reward is recovered through r̂ = r(C)/|C|.
    let parsed = load("ring.mdl");
    let mrp = parsed.build().expect("builds");
    assert_eq!(mrp.num_states(), 18);
    let result = LumpRequest::new(LumpKind::Exact).run(&mrp).expect("lumps");
    assert_eq!(result.partitions[1].num_classes(), 1);
    assert_eq!(result.stats.lumped_states, 3);

    // Transient measures on the 3-state quotient match the 18-state chain.
    use mdl_ctmc::TransientOptions;
    let measures = result.exact_measures().expect("exact lump");
    for t in [0.25, 1.0, 4.0] {
        let full = mrp
            .expected_transient_reward(t, &TransientOptions::default())
            .expect("full transient");
        let lumped = measures
            .expected_transient_reward(t, &TransientOptions::default())
            .expect("lumped transient");
        assert!((full - lumped).abs() < 1e-9, "t={t}: {full} vs {lumped}");
    }
}

#[test]
fn ring_ordinary_lumping_respects_the_reward() {
    // Ordinary lumping DOES condition on the reward: the {0,3} indicator
    // breaks the rotation group down to the half-turn, leaving the
    // positions in indicator-compatible classes only.
    let parsed = load("ring.mdl");
    let mrp = parsed.build().expect("builds");
    let ordinary = LumpRequest::new(LumpKind::Ordinary)
        .run(&mrp)
        .expect("lumps");
    let p = &ordinary.partitions[1];
    assert!(p.num_classes() > 1, "reward must block the full collapse");
    for c in 0..p.num_classes() {
        let members = p.members(c);
        let indicator = |s: usize| usize::from(s == 0 || s == 3);
        assert!(
            members
                .iter()
                .all(|&s| indicator(s) == indicator(members[0])),
            "class {members:?} mixes reward values"
        );
    }
}
