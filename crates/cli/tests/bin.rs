//! End-to-end tests of the `mdlump-cli` binary: exit codes and output
//! routing only exist at the process boundary, so they are checked by
//! actually running the compiled binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn model(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../models")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdlump-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn expired_deadline_exits_with_distinct_code_and_message() {
    let path = model("worker_pool.mdl");
    let out = run(&["solve", path.to_str().unwrap(), "--deadline", "0ms"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");
}

#[test]
fn fallback_with_report_solves_and_prints_attempts() {
    let path = model("worker_pool.mdl");
    let out = run(&["solve", path.to_str().unwrap(), "--fallback", "--report"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solve attempts:"), "{stdout}");
    assert!(stdout.contains("cross-check"), "{stdout}");
}

/// A temp path that cleans up after itself, so parallel test runs and
/// repeated invocations never collide or leak.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> TempFile {
        TempFile(std::env::temp_dir().join(format!(
            "mdl-cli-bin-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn interrupted_run_still_writes_complete_metrics() {
    // The JSONL metrics stream must be flushed on *every* exit path:
    // a run that blew its deadline (exit code 2) is exactly the run
    // whose telemetry someone will want to read.
    let path = model("worker_pool.mdl");
    let out_file = TempFile::new("metrics");
    let out = run(&[
        "solve",
        path.to_str().unwrap(),
        "--deadline",
        "0ms",
        "--metrics",
        "json",
        "--metrics-out",
        out_file.0.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let metrics = std::fs::read_to_string(&out_file.0).expect("metrics file written");
    assert!(!metrics.trim().is_empty(), "metrics file has content");
    let mut kinds = std::collections::HashSet::new();
    for line in metrics.lines() {
        let parsed = mdl_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("metrics line is valid JSON ({e}): {line}"));
        if let Some(t) = parsed.get("type").and_then(mdl_obs::json::Json::as_str) {
            kinds.insert(t.to_owned());
        }
    }
    // The final report (counters and/or histograms) made it out, not
    // just the live span stream.
    assert!(
        kinds.contains("counter") || kinds.contains("histogram"),
        "final report flushed on the interrupted path: {kinds:?}"
    );
}

/// A generated model with one component large enough (>= 64 states) to
/// cross the lump key phase's parallel threshold, so worker threads
/// show up in the trace.
fn large_model(states: usize) -> String {
    let mut m = String::new();
    m.push_str(&format!("component big {states}\n"));
    m.push_str("component aux 2\n");
    for i in 0..states - 1 {
        m.push_str(&format!(
            "event up{i} rate 1.0\nfactor big {i} {} 1.0\n",
            i + 1
        ));
    }
    m.push_str(&format!(
        "event reset rate 2.0\nfactor big {} 0 1.0\n",
        states - 1
    ));
    m.push_str("event flip rate 0.5\nfactor aux 0 1 1.0\n");
    m.push_str("event flop rate 0.5\nfactor aux 1 0 1.0\n");
    m.push_str("reward sum\ndefault big 0.0\nvalue big 0 1.0\ndefault aux 0.0\n");
    m
}

#[test]
fn profile_out_writes_chrome_trace_with_nested_stages_and_workers() {
    let model_file = TempFile::new("model");
    std::fs::write(&model_file.0, large_model(80)).unwrap();
    let trace_file = TempFile::new("trace");
    // A transient measure keeps the kernel-product count bounded (the
    // stationary power iteration on this slowly-mixing model would
    // flood the trace ring with leaf spans).
    let out = run(&[
        "solve",
        model_file.0.to_str().unwrap(),
        "--transient",
        "0.5",
        "--threads",
        "2",
        "--profile-out",
        trace_file.0.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = std::fs::read_to_string(&trace_file.0).expect("trace file written");
    let doc = mdl_obs::json::parse(&json).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(mdl_obs::json::Json::as_array)
        .expect("traceEvents array");

    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(mdl_obs::json::Json::as_str) == Some("X"))
        .collect();
    let name_of = |e: &&mdl_obs::json::Json| {
        e.get("name")
            .and_then(mdl_obs::json::Json::as_str)
            .unwrap_or("")
            .to_owned()
    };
    let names: std::collections::HashSet<String> = complete.iter().map(&name_of).collect();
    for stage in [
        "pipeline.build",
        "pipeline.lump",
        "pipeline.compile",
        "pipeline.solve",
        "pipeline.measure",
    ] {
        assert!(names.contains(stage), "trace has {stage}: {names:?}");
    }

    // Spans nest: every non-root parent id resolves to a recorded event.
    let ids: std::collections::HashSet<u64> = complete
        .iter()
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("id"))
                .and_then(mdl_obs::json::Json::as_u64)
        })
        .collect();
    let mut nested = 0;
    for e in &complete {
        let parent = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(mdl_obs::json::Json::as_u64)
            .expect("args.parent present");
        if parent != 0 {
            nested += 1;
            assert!(ids.contains(&parent), "parent {parent} recorded");
        }
    }
    assert!(nested > 0, "trace contains nested spans");

    // Worker threads are attributed to their parent stage: pool.worker
    // events live on non-main tids and point at a recorded parent span.
    let workers: Vec<_> = complete
        .iter()
        .filter(|e| name_of(e) == "pool.worker")
        .collect();
    assert!(
        !workers.is_empty(),
        "parallel phases put workers in the trace"
    );
    for w in &workers {
        let tid = w.get("tid").and_then(mdl_obs::json::Json::as_u64).unwrap();
        assert_ne!(tid, 1, "pool.worker runs off the main thread");
        let parent = w
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(mdl_obs::json::Json::as_u64)
            .unwrap();
        assert!(
            ids.contains(&parent),
            "worker attributes to a recorded span"
        );
    }

    // Thread-name metadata lets trace viewers label the rows.
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(mdl_obs::json::Json::as_str) == Some("M")
                && e.get("name").and_then(mdl_obs::json::Json::as_str) == Some("thread_name")
        }),
        "thread_name metadata present"
    );
}

#[test]
fn ordinary_failures_exit_one() {
    let path = model("worker_pool.mdl");
    let out = run(&["solve", path.to_str().unwrap(), "--deadline"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--deadline needs a value"), "{stderr}");

    let out = run(&["frobnicate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
