//! End-to-end tests of the `mdlump-cli` binary: exit codes and output
//! routing only exist at the process boundary, so they are checked by
//! actually running the compiled binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn model(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../models")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdlump-cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn expired_deadline_exits_with_distinct_code_and_message() {
    let path = model("worker_pool.mdl");
    let out = run(&["solve", path.to_str().unwrap(), "--deadline", "0ms"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");
}

#[test]
fn fallback_with_report_solves_and_prints_attempts() {
    let path = model("worker_pool.mdl");
    let out = run(&["solve", path.to_str().unwrap(), "--fallback", "--report"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solve attempts:"), "{stdout}");
    assert!(stdout.contains("cross-check"), "{stdout}");
}

#[test]
fn ordinary_failures_exit_one() {
    let path = model("worker_pool.mdl");
    let out = run(&["solve", path.to_str().unwrap(), "--deadline"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--deadline needs a value"), "{stderr}");

    let out = run(&["frobnicate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
