//! Small, testable parsers for `mdlump-cli` flags: valued flags with
//! explicit missing/invalid-value errors, and the observability options
//! (`--trace`, `--metrics`, `--metrics-out`) shared by all subcommands.

/// Format of the metrics report and streamed events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Aligned human-readable text.
    Pretty,
    /// One JSON object per line.
    Json,
}

/// Parsed observability options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsFlags {
    /// `--trace`: stream span-start and point events too.
    pub trace: bool,
    /// `--metrics pretty|json`: emit span events and a final counter and
    /// timing report in this format.
    pub metrics: Option<MetricsFormat>,
    /// `--metrics-out FILE`: write the metrics/trace stream to `FILE`
    /// instead of stderr.
    pub out: Option<String>,
}

impl ObsFlags {
    /// `true` when any observability output was requested.
    pub fn active(&self) -> bool {
        self.trace || self.metrics.is_some()
    }

    /// The effective format: explicit `--metrics`, or pretty when only
    /// `--trace` was given.
    pub fn format(&self) -> MetricsFormat {
        self.metrics.unwrap_or(MetricsFormat::Pretty)
    }
}

/// Extracts `--trace`, `--metrics` and `--metrics-out` from `flags`.
///
/// # Errors
///
/// A message naming the flag for a missing value or an unknown format.
pub fn parse_obs_flags(flags: &[String]) -> Result<ObsFlags, String> {
    let metrics = match value_of(flags, "--metrics")? {
        None => None,
        Some("pretty") => Some(MetricsFormat::Pretty),
        Some("json") => Some(MetricsFormat::Json),
        Some(other) => {
            return Err(format!(
                "--metrics: expected `pretty` or `json`, got {other:?}"
            ))
        }
    };
    let out = value_of(flags, "--metrics-out")?.map(String::from);
    let trace = flags.iter().any(|f| f == "--trace");
    Ok(ObsFlags {
        trace,
        metrics,
        out,
    })
}

/// Extracts `--kernel walk|compiled` and `--threads N` from `flags`.
///
/// Defaults: the compiled kernel with `threads = 0` (one worker per
/// available hardware thread), so callers never hardcode worker counts.
///
/// # Errors
///
/// A message naming the flag for a missing value or an unknown kernel.
pub fn parse_kernel_flags(flags: &[String]) -> Result<mdl_core::KernelOptions, String> {
    use mdl_core::{KernelKind, KernelOptions};
    let kind = match value_of(flags, "--kernel")? {
        None | Some("compiled") => KernelKind::Compiled,
        Some("walk") => KernelKind::Walk,
        Some(other) => {
            return Err(format!(
                "--kernel: expected `walk` or `compiled`, got {other:?}"
            ))
        }
    };
    let threads = flag_threads(flags)?.unwrap_or(0);
    Ok(KernelOptions { kind, threads })
}

/// Parses `--threads N`, requiring `N >= 1`: an explicit `--threads 0`
/// is rejected rather than silently meaning "auto" (omit the flag for
/// one worker per hardware thread).
///
/// # Errors
///
/// Explicit messages for a missing, non-integer or zero value.
pub fn flag_threads(flags: &[String]) -> Result<Option<usize>, String> {
    match flag_u64(flags, "--threads")? {
        Some(0) => Err(
            "--threads: must be at least 1 (omit the flag for one worker per hardware thread)"
                .into(),
        ),
        other => Ok(other.map(|n| n as usize)),
    }
}

/// Parses the value of `flag` as a count that must be at least 1
/// (`--reps 0` would silently do nothing — reject it instead).
///
/// # Errors
///
/// Explicit messages for a missing, non-integer or zero value.
pub fn flag_count(flags: &[String], flag: &str) -> Result<Option<u64>, String> {
    match flag_u64(flags, flag)? {
        Some(0) => Err(format!("{flag}: must be at least 1, got 0")),
        other => Ok(other),
    }
}

/// Parses the value of `flag` as a non-negative finite `f64` — time
/// points like `--transient T` and `--accumulated T` have no meaning
/// before 0.
///
/// # Errors
///
/// Explicit messages for a missing, non-numeric, non-finite or negative
/// value.
pub fn flag_f64_nonneg(flags: &[String], flag: &str) -> Result<Option<f64>, String> {
    match flag_f64(flags, flag)? {
        Some(x) if x < 0.0 => Err(format!("{flag}: must be non-negative, got {x}")),
        other => Ok(other),
    }
}

/// Parses the value of `flag` as a strictly positive finite `f64` — a
/// `--horizon 0` simulation observes nothing.
///
/// # Errors
///
/// Explicit messages for a missing, non-numeric, non-finite, zero or
/// negative value.
pub fn flag_f64_positive(flags: &[String], flag: &str) -> Result<Option<f64>, String> {
    match flag_f64(flags, flag)? {
        Some(x) if x <= 0.0 => Err(format!("{flag}: must be positive, got {x}")),
        other => Ok(other),
    }
}

/// The value following `flag`, if present. A missing value — end of the
/// argument list, or another `--flag` where the value should be — is an
/// explicit error rather than silent misparsing.
///
/// # Errors
///
/// "`<flag>` needs a value" when the flag is present without one.
pub fn value_of<'a>(flags: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match flags.iter().position(|f| f == flag) {
        None => Ok(None),
        Some(i) => match flags.get(i + 1).map(String::as_str) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(format!("{flag} needs a value")),
        },
    }
}

/// The one checked-parse path every valued flag goes through: looks up
/// `flag`'s value (missing values are explicit errors via [`value_of`])
/// and runs it through `parse`, prefixing any parse failure with the
/// flag name so the user always learns *which* flag was malformed.
///
/// # Errors
///
/// "`<flag>` needs a value" for a present flag without a value, and
/// "`<flag>`: `<why>`" when `parse` rejects the value.
pub fn flag_parsed<T>(
    flags: &[String],
    flag: &str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Result<Option<T>, String> {
    match value_of(flags, flag)? {
        None => Ok(None),
        Some(v) => parse(v).map(Some).map_err(|why| format!("{flag}: {why}")),
    }
}

/// Parses the value of `flag` as a finite `f64`.
///
/// # Errors
///
/// Explicit messages for a missing value, a non-numeric value, and a
/// non-finite value.
pub fn flag_f64(flags: &[String], flag: &str) -> Result<Option<f64>, String> {
    flag_parsed(flags, flag, |v| {
        let x: f64 = v
            .parse()
            .map_err(|_| format!("invalid value {v:?} (expected a number)"))?;
        if !x.is_finite() {
            return Err(format!("value must be finite, got {v:?}"));
        }
        Ok(x)
    })
}

/// Parsed profiling options (any subcommand).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileFlags {
    /// `--profile`: collect a timeline and render the aggregated span
    /// tree (inclusive/exclusive time, call counts, alloc deltas) to
    /// stderr at exit.
    pub profile: bool,
    /// `--profile-out FILE`: write the timeline as Chrome trace-event
    /// JSON to `FILE` (loadable in Perfetto / `chrome://tracing`).
    pub out: Option<String>,
}

impl ProfileFlags {
    /// `true` when any profiling output was requested.
    pub fn active(&self) -> bool {
        self.profile || self.out.is_some()
    }
}

/// Extracts `--profile` and `--profile-out` from `flags`.
///
/// # Errors
///
/// "`--profile-out` needs a value" when the flag is present without one.
pub fn parse_profile_flags(flags: &[String]) -> Result<ProfileFlags, String> {
    Ok(ProfileFlags {
        profile: flags.iter().any(|f| f == "--profile"),
        out: value_of(flags, "--profile-out")?.map(String::from),
    })
}

/// Parsed resilience options shared by the long-running subcommands.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceFlags {
    /// `--deadline DUR`: wall-clock budget for the whole run.
    pub deadline: Option<std::time::Duration>,
    /// `--fallback`: solve through the resilient `(method, kernel)`
    /// fallback ladder instead of a single configuration.
    pub fallback: bool,
    /// `--report`: append the per-attempt run report to the output.
    pub report: bool,
}

impl ResilienceFlags {
    /// The compute budget these flags describe: a deadline when
    /// `--deadline` was given, unlimited otherwise.
    pub fn budget(&self) -> mdl_obs::Budget {
        match self.deadline {
            Some(d) => mdl_obs::Budget::unlimited().deadline_in(d),
            None => mdl_obs::Budget::unlimited(),
        }
    }
}

/// Extracts `--deadline DUR`, `--fallback` and `--report` from `flags`.
///
/// # Errors
///
/// A message naming the flag for a missing or malformed value, and for
/// `--report` without `--fallback` or `--bounds` (there is no attempt
/// log to report).
pub fn parse_resilience_flags(flags: &[String]) -> Result<ResilienceFlags, String> {
    let deadline = flag_duration(flags, "--deadline")?;
    let fallback = flags.iter().any(|f| f == "--fallback");
    let report = flags.iter().any(|f| f == "--report");
    // Bounds runs carry a per-sweep attempt log of their own, so
    // `--report` is meaningful there without the fallback ladder.
    if report && !fallback && !flags.iter().any(|f| f == "--bounds") {
        return Err("--report needs --fallback or --bounds (it renders the attempt log)".into());
    }
    Ok(ResilienceFlags {
        deadline,
        fallback,
        report,
    })
}

/// Parses the value of `flag` as a duration: a non-negative number with
/// an optional `us`, `ms` or `s` suffix (bare numbers are seconds), e.g.
/// `--deadline 250ms` or `--deadline 1.5`.
///
/// # Errors
///
/// Explicit messages for a missing value, an unknown unit, and a
/// negative or non-finite amount.
pub fn flag_duration(flags: &[String], flag: &str) -> Result<Option<std::time::Duration>, String> {
    flag_parsed(flags, flag, |v| {
        let (number, scale) = if let Some(n) = v.strip_suffix("us") {
            (n, 1e-6)
        } else if let Some(n) = v.strip_suffix("ms") {
            (n, 1e-3)
        } else if let Some(n) = v.strip_suffix('s') {
            (n, 1.0)
        } else {
            (v, 1.0)
        };
        let x: f64 = number.parse().map_err(|_| {
            format!("invalid duration {v:?} (expected e.g. `250ms`, `1.5s` or seconds)")
        })?;
        if !x.is_finite() || x < 0.0 {
            return Err(format!(
                "duration must be finite and non-negative, got {v:?}"
            ));
        }
        Ok(std::time::Duration::from_secs_f64(x * scale))
    })
}

/// Parses `--tolerance exact|N` into the lumping comparison tolerance:
/// `exact` compares rates bit-for-bit, an integer `N` compares them
/// rounded to `N` decimal digits. Absent means the library default (9
/// digits). Looser tolerances lump more aggressively; `--bounds`
/// certifies exactly what the absorbed deviations can do to the measure.
///
/// # Errors
///
/// Explicit messages for a missing value and anything that is neither
/// `exact` nor a small non-negative integer.
pub fn flag_tolerance(flags: &[String]) -> Result<Option<mdl_linalg::Tolerance>, String> {
    flag_parsed(flags, "--tolerance", |v| match v {
        "exact" => Ok(mdl_linalg::Tolerance::Exact),
        _ => v
            .parse::<u32>()
            .map(mdl_linalg::Tolerance::Decimals)
            .map_err(|_| format!("expected `exact` or a number of decimal digits, got {v:?}")),
    })
}

/// Parses the value of `flag` as a `u64` (also used for counts, which
/// must be whole — `--reps 2.7` is rejected rather than truncated).
///
/// # Errors
///
/// Explicit messages for a missing or non-integer value.
pub fn flag_u64(flags: &[String], flag: &str) -> Result<Option<u64>, String> {
    flag_parsed(flags, flag, |v| {
        v.parse()
            .map_err(|_| format!("invalid value {v:?} (expected a non-negative integer)"))
    })
}

/// Parsed artifact-cache and checkpoint/resume options for the staged
/// pipeline. All default to off: caching only activates when a cache
/// directory is configured, by flag or environment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineFlags {
    /// The artifact cache directory: `--cache-dir DIR`, falling back to
    /// the `MDL_CACHE` environment variable. `None` disables caching.
    pub cache_dir: Option<std::path::PathBuf>,
    /// `--checkpoint-every N`: snapshot long solves into the cache every
    /// `N` iterations (stationary) or uniformization steps (transient).
    pub checkpoint_every: Option<u64>,
    /// `--resume`: continue an interrupted solve from its snapshot.
    pub resume: bool,
}

/// The environment variable naming a default cache directory when
/// `--cache-dir` is not given.
pub const CACHE_ENV_VAR: &str = "MDL_CACHE";

/// Extracts `--cache-dir DIR`, `--checkpoint-every N` and `--resume`
/// from `flags`. `env_cache` is the value of [`CACHE_ENV_VAR`] (passed
/// in, not read here, so tests stay hermetic); an explicit `--cache-dir`
/// wins over it, and an empty value reads as unset.
///
/// # Errors
///
/// A message naming the flag for a missing or malformed value, and for
/// `--checkpoint-every` / `--resume` without a cache directory — both
/// store their snapshots there, so without one they silently would do
/// nothing.
pub fn parse_pipeline_flags(
    flags: &[String],
    env_cache: Option<&str>,
) -> Result<PipelineFlags, String> {
    let explicit = flag_parsed(flags, "--cache-dir", |v| Ok(std::path::PathBuf::from(v)))?;
    let cache_dir = explicit.or_else(|| {
        env_cache
            .filter(|v| !v.trim().is_empty())
            .map(std::path::PathBuf::from)
    });
    let checkpoint_every = flag_count(flags, "--checkpoint-every")?;
    let resume = flags.iter().any(|f| f == "--resume");
    if cache_dir.is_none() {
        if checkpoint_every.is_some() {
            return Err(format!(
                "--checkpoint-every needs a cache directory (--cache-dir DIR or {CACHE_ENV_VAR}) to write snapshots into"
            ));
        }
        if resume {
            return Err(format!(
                "--resume needs a cache directory (--cache-dir DIR or {CACHE_ENV_VAR}) to read snapshots from"
            ));
        }
    }
    Ok(PipelineFlags {
        cache_dir,
        checkpoint_every,
        resume,
    })
}

/// Extracts every `--set name=lo:hi:count` / `--set name=value` axis
/// from `flags`, in order. Each grid spec is an **inclusive** linspace
/// (`mu=0.5:2.0:16` is 16 points from 0.5 to 2.0, both ends included);
/// multiple `--set` flags sweep their Cartesian product. Values must be
/// positive and finite — they re-rate events, and positive rates are
/// what keeps reachability sweep-invariant.
///
/// # Errors
///
/// Explicit messages for a missing value, a malformed spec, a
/// non-positive or non-finite number, and a grid count below 2.
pub fn parse_sweep_axes(flags: &[String]) -> Result<Vec<(String, Vec<f64>)>, String> {
    let mut axes = Vec::new();
    let mut i = 0;
    while i < flags.len() {
        if flags[i] == "--set" {
            let spec = match flags.get(i + 1).map(String::as_str) {
                Some(v) if !v.starts_with("--") => v,
                _ => return Err("--set needs a value (e.g. --set mu=0.5:2.0:16)".into()),
            };
            axes.push(parse_sweep_axis(spec).map_err(|why| format!("--set: {why}"))?);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(axes)
}

fn parse_sweep_axis(spec: &str) -> Result<(String, Vec<f64>), String> {
    let (name, range) = spec
        .split_once('=')
        .ok_or_else(|| format!("expected name=lo:hi:count or name=value, got {spec:?}"))?;
    if name.is_empty() {
        return Err(format!("missing event name in {spec:?}"));
    }
    let rate = |s: &str| -> Result<f64, String> {
        let x: f64 = s
            .parse()
            .map_err(|_| format!("invalid number {s:?} in {spec:?}"))?;
        if !(x.is_finite() && x > 0.0) {
            return Err(format!(
                "rates must be positive and finite, got {s:?} in {spec:?}"
            ));
        }
        Ok(x)
    };
    let parts: Vec<&str> = range.split(':').collect();
    let values = match parts.as_slice() {
        [v] => vec![rate(v)?],
        [lo, hi, count] => {
            let lo = rate(lo)?;
            let hi = rate(hi)?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("invalid count {count:?} in {spec:?}"))?;
            if count < 2 {
                return Err(format!(
                    "count must be at least 2 in {spec:?} (use {name}=value for a single point)"
                ));
            }
            // Inclusive linspace; interior points are convex combinations
            // of two positive endpoints, so positivity is preserved.
            (0..count)
                .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
                .collect()
        }
        _ => {
            return Err(format!(
                "expected name=lo:hi:count or name=value, got {spec:?}"
            ))
        }
    };
    Ok((name.to_string(), values))
}

/// Parsed `mdl-serve` daemon options. Defaults are production-shaped:
/// loopback bind, small worker pool, bounded queue, per-tenant caps and
/// a default per-request deadline — an unconfigured daemon is already
/// overload-safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeFlags {
    /// `--addr HOST:PORT`: bind address (port `0` picks a free port).
    pub addr: String,
    /// `--workers N`: solver worker threads.
    pub workers: usize,
    /// `--queue N`: bounded admission queue length.
    pub queue_limit: usize,
    /// `--tenant-cap N`: per-tenant in-flight (queued + executing) cap.
    pub tenant_cap: usize,
    /// `--solve-threads N`: threads each individual solve may use.
    pub solve_threads: usize,
    /// `--default-deadline DUR`: deadline for requests that name none.
    pub default_deadline: Option<std::time::Duration>,
    /// `--max-deadline DUR`: clamp on client-requested deadlines.
    pub max_deadline: Option<std::time::Duration>,
    /// `--cache-dir DIR` (or [`CACHE_ENV_VAR`]): shared artifact store.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServeFlags {
    fn default() -> Self {
        ServeFlags {
            addr: "127.0.0.1:7117".into(),
            workers: 2,
            queue_limit: 32,
            tenant_cap: 8,
            solve_threads: 1,
            default_deadline: Some(std::time::Duration::from_secs(30)),
            max_deadline: Some(std::time::Duration::from_secs(300)),
            cache_dir: None,
        }
    }
}

/// Extracts the `mdl-serve` flags. `env_cache` is the value of
/// [`CACHE_ENV_VAR`] (passed in for hermetic tests); an explicit
/// `--cache-dir` wins over it. `--default-deadline 0` / `--max-deadline
/// 0` disable the respective bound (an explicitly unlimited server).
///
/// # Errors
///
/// A message naming the flag for any missing, malformed or zero-valued
/// count (`--workers 0` cannot serve anything).
pub fn parse_serve_flags(flags: &[String], env_cache: Option<&str>) -> Result<ServeFlags, String> {
    let defaults = ServeFlags::default();
    let positive = |flag: &'static str| -> Result<Option<usize>, String> {
        match flag_count(flags, flag)? {
            Some(0) => Err(format!("{flag} must be at least 1")),
            Some(n) => Ok(Some(n as usize)),
            None => Ok(None),
        }
    };
    let deadline = |flag: &'static str,
                    default: Option<std::time::Duration>|
     -> Result<Option<std::time::Duration>, String> {
        Ok(match flag_duration(flags, flag)? {
            Some(d) if d.is_zero() => None,
            Some(d) => Some(d),
            None => default,
        })
    };
    let explicit_cache = flag_parsed(flags, "--cache-dir", |v| Ok(std::path::PathBuf::from(v)))?;
    Ok(ServeFlags {
        addr: value_of(flags, "--addr")?
            .map(String::from)
            .unwrap_or(defaults.addr),
        workers: positive("--workers")?.unwrap_or(defaults.workers),
        queue_limit: positive("--queue")?.unwrap_or(defaults.queue_limit),
        tenant_cap: positive("--tenant-cap")?.unwrap_or(defaults.tenant_cap),
        solve_threads: positive("--solve-threads")?.unwrap_or(defaults.solve_threads),
        default_deadline: deadline("--default-deadline", defaults.default_deadline)?,
        max_deadline: deadline("--max-deadline", defaults.max_deadline)?,
        cache_dir: explicit_cache.or_else(|| {
            env_cache
                .filter(|v| !v.trim().is_empty())
                .map(std::path::PathBuf::from)
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flags_parse_to_none() {
        let flags = args(&["--exact"]);
        assert_eq!(flag_f64(&flags, "--transient").unwrap(), None);
        assert_eq!(flag_u64(&flags, "--reps").unwrap(), None);
        assert_eq!(parse_obs_flags(&flags).unwrap(), ObsFlags::default());
        let pf = parse_profile_flags(&flags).unwrap();
        assert_eq!(pf, ProfileFlags::default());
        assert!(!pf.active());
    }

    #[test]
    fn profile_flags_parse() {
        let pf = parse_profile_flags(&args(&["--profile"])).unwrap();
        assert!(pf.profile && pf.out.is_none() && pf.active());
        let pf = parse_profile_flags(&args(&["--profile-out", "trace.json"])).unwrap();
        assert!(!pf.profile);
        assert_eq!(pf.out.as_deref(), Some("trace.json"));
        assert!(pf.active(), "--profile-out alone enables profiling");
        let e = parse_profile_flags(&args(&["--profile-out", "--exact"])).unwrap_err();
        assert!(e.contains("--profile-out needs a value"), "{e}");
    }

    #[test]
    fn valued_flags_parse() {
        let flags = args(&["--transient", "2.5", "--reps", "40", "--seed", "7"]);
        assert_eq!(flag_f64(&flags, "--transient").unwrap(), Some(2.5));
        assert_eq!(flag_u64(&flags, "--reps").unwrap(), Some(40));
        assert_eq!(flag_u64(&flags, "--seed").unwrap(), Some(7));
    }

    #[test]
    fn missing_value_is_explicit_error() {
        // At the end of the argument list…
        let e = flag_f64(&args(&["--transient"]), "--transient").unwrap_err();
        assert!(e.contains("--transient needs a value"), "{e}");
        // …and when another flag sits where the value should be.
        let e = flag_f64(&args(&["--horizon", "--exact"]), "--horizon").unwrap_err();
        assert!(e.contains("--horizon needs a value"), "{e}");
        let e = flag_u64(&args(&["--reps", "--seed", "3"]), "--reps").unwrap_err();
        assert!(e.contains("--reps needs a value"), "{e}");
    }

    #[test]
    fn invalid_value_is_explicit_error() {
        let e = flag_f64(&args(&["--accumulated", "soon"]), "--accumulated").unwrap_err();
        assert!(e.contains("--accumulated") && e.contains("soon"), "{e}");
        let e = flag_f64(&args(&["--transient", "inf"]), "--transient").unwrap_err();
        assert!(e.contains("finite"), "{e}");
        let e = flag_u64(&args(&["--reps", "2.7"]), "--reps").unwrap_err();
        assert!(e.contains("integer"), "{e}");
        let e = flag_u64(&args(&["--seed", "-1"]), "--seed").unwrap_err();
        assert!(e.contains("--seed"), "{e}");
    }

    #[test]
    fn negative_values_parse_but_time_points_reject_them() {
        // `-1` is a value, not a flag: only `--`-prefixed tokens are. The
        // generic parser accepts it; the time-point wrapper rejects it
        // with an explicit message.
        let flags = args(&["--transient", "-1"]);
        assert_eq!(flag_f64(&flags, "--transient").unwrap(), Some(-1.0));
        let e = flag_f64_nonneg(&flags, "--transient").unwrap_err();
        assert!(e.contains("non-negative"), "{e}");
    }

    #[test]
    fn zero_threads_is_explicit_error() {
        let e = parse_kernel_flags(&args(&["--threads", "0"])).unwrap_err();
        assert!(e.contains("--threads") && e.contains("at least 1"), "{e}");
        let e = flag_threads(&args(&["--threads", "0"])).unwrap_err();
        assert!(e.contains("hardware thread"), "{e}");
        // Absent stays "auto"; explicit positive counts pass through.
        assert_eq!(flag_threads(&args(&[])).unwrap(), None);
        assert_eq!(flag_threads(&args(&["--threads", "4"])).unwrap(), Some(4));
    }

    #[test]
    fn zero_reps_is_explicit_error() {
        let e = flag_count(&args(&["--reps", "0"]), "--reps").unwrap_err();
        assert!(e.contains("--reps") && e.contains("at least 1"), "{e}");
        assert_eq!(
            flag_count(&args(&["--reps", "30"]), "--reps").unwrap(),
            Some(30)
        );
        assert_eq!(flag_count(&args(&[]), "--reps").unwrap(), None);
    }

    #[test]
    fn nonpositive_horizon_is_explicit_error() {
        let e = flag_f64_positive(&args(&["--horizon", "0"]), "--horizon").unwrap_err();
        assert!(e.contains("--horizon") && e.contains("positive"), "{e}");
        let e = flag_f64_positive(&args(&["--horizon", "-2.5"]), "--horizon").unwrap_err();
        assert!(e.contains("positive"), "{e}");
        assert_eq!(
            flag_f64_positive(&args(&["--horizon", "50"]), "--horizon").unwrap(),
            Some(50.0)
        );
    }

    #[test]
    fn negative_time_points_are_explicit_errors() {
        for flag in ["--transient", "--accumulated"] {
            let e = flag_f64_nonneg(&args(&[flag, "-0.5"]), flag).unwrap_err();
            assert!(e.contains(flag) && e.contains("non-negative"), "{e}");
            // Zero is a legal time point (the initial distribution).
            assert_eq!(
                flag_f64_nonneg(&args(&[flag, "0"]), flag).unwrap(),
                Some(0.0)
            );
        }
        // A zero deadline stays legal: it means "interrupt immediately",
        // which the resilience tests rely on.
        assert_eq!(
            flag_duration(&args(&["--deadline", "0"]), "--deadline").unwrap(),
            Some(std::time::Duration::ZERO)
        );
    }

    #[test]
    fn kernel_flags_parse() {
        use mdl_core::{KernelKind, KernelOptions};
        assert_eq!(
            parse_kernel_flags(&args(&[])).unwrap(),
            KernelOptions {
                kind: KernelKind::Compiled,
                threads: 0
            }
        );
        let f = parse_kernel_flags(&args(&["--kernel", "walk", "--threads", "4"])).unwrap();
        assert_eq!(f.kind, KernelKind::Walk);
        assert_eq!(f.threads, 4);
        let f = parse_kernel_flags(&args(&["--kernel", "compiled"])).unwrap();
        assert_eq!(f.kind, KernelKind::Compiled);
        let e = parse_kernel_flags(&args(&["--kernel", "magic"])).unwrap_err();
        assert!(e.contains("walk") && e.contains("compiled"), "{e}");
        let e = parse_kernel_flags(&args(&["--threads"])).unwrap_err();
        assert!(e.contains("--threads needs a value"), "{e}");
    }

    #[test]
    fn durations_parse_with_units() {
        use std::time::Duration;
        let d = |list: &[&str]| flag_duration(&args(list), "--deadline").unwrap();
        assert_eq!(d(&[]), None);
        assert_eq!(
            d(&["--deadline", "250ms"]),
            Some(Duration::from_millis(250))
        );
        assert_eq!(d(&["--deadline", "2s"]), Some(Duration::from_secs(2)));
        assert_eq!(d(&["--deadline", "40us"]), Some(Duration::from_micros(40)));
        // Bare numbers are seconds, fractions allowed.
        assert_eq!(d(&["--deadline", "1.5"]), Some(Duration::from_millis(1500)));
        assert_eq!(d(&["--deadline", "0ms"]), Some(Duration::ZERO));
    }

    #[test]
    fn bad_durations_are_explicit_errors() {
        let e = |list: &[&str]| flag_duration(&args(list), "--deadline").unwrap_err();
        assert!(e(&["--deadline"]).contains("needs a value"));
        assert!(e(&["--deadline", "soonish"]).contains("invalid duration"));
        assert!(e(&["--deadline", "5m"]).contains("invalid duration"));
        assert!(e(&["--deadline", "-3ms"]).contains("non-negative"));
        assert!(e(&["--deadline", "infs"]).contains("non-negative"));
    }

    #[test]
    fn tolerance_flag_parses() {
        use mdl_linalg::Tolerance;
        assert_eq!(flag_tolerance(&args(&[])).unwrap(), None);
        assert_eq!(
            flag_tolerance(&args(&["--tolerance", "exact"])).unwrap(),
            Some(Tolerance::Exact)
        );
        assert_eq!(
            flag_tolerance(&args(&["--tolerance", "2"])).unwrap(),
            Some(Tolerance::Decimals(2))
        );
        assert_eq!(
            flag_tolerance(&args(&["--tolerance", "9"])).unwrap(),
            Some(Tolerance::default())
        );
        let e = flag_tolerance(&args(&["--tolerance", "tight"])).unwrap_err();
        assert!(e.contains("--tolerance") && e.contains("exact"), "{e}");
        let e = flag_tolerance(&args(&["--tolerance", "-1"])).unwrap_err();
        assert!(e.contains("decimal digits"), "{e}");
        let e = flag_tolerance(&args(&["--tolerance"])).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn resilience_flags_parse() {
        assert_eq!(
            parse_resilience_flags(&args(&[])).unwrap(),
            ResilienceFlags::default()
        );
        let f =
            parse_resilience_flags(&args(&["--fallback", "--report", "--deadline", "2s"])).unwrap();
        assert!(f.fallback && f.report);
        assert_eq!(f.deadline, Some(std::time::Duration::from_secs(2)));
        assert!(!f.budget().is_unlimited());
        assert!(ResilienceFlags::default().budget().is_unlimited());
        let e = parse_resilience_flags(&args(&["--report"])).unwrap_err();
        assert!(e.contains("--fallback"), "{e}");
    }

    #[test]
    fn obs_flags_parse_formats() {
        let f = parse_obs_flags(&args(&["--metrics", "json"])).unwrap();
        assert_eq!(f.metrics, Some(MetricsFormat::Json));
        assert!(!f.trace);
        assert!(f.active());
        let f = parse_obs_flags(&args(&["--metrics", "pretty", "--trace"])).unwrap();
        assert_eq!(f.format(), MetricsFormat::Pretty);
        assert!(f.trace);
    }

    #[test]
    fn obs_flags_errors() {
        let e = parse_obs_flags(&args(&["--metrics", "xml"])).unwrap_err();
        assert!(e.contains("pretty") && e.contains("json"), "{e}");
        let e = parse_obs_flags(&args(&["--metrics"])).unwrap_err();
        assert!(e.contains("--metrics needs a value"), "{e}");
        let e = parse_obs_flags(&args(&["--metrics-out", "--trace"])).unwrap_err();
        assert!(e.contains("--metrics-out needs a value"), "{e}");
    }

    #[test]
    fn flag_parsed_reports_the_flag_and_the_reason() {
        // The generic path: absent flag is None, value flows through…
        let ok = flag_parsed(&args(&["--cache-dir", "/tmp/c"]), "--cache-dir", |v| {
            Ok(v.len())
        })
        .unwrap();
        assert_eq!(ok, Some(6));
        assert_eq!(
            flag_parsed(&args(&[]), "--cache-dir", |v| Ok(v.len())).unwrap(),
            None
        );
        // …missing values error before parse runs…
        let e = flag_parsed(&args(&["--cache-dir"]), "--cache-dir", |v| Ok(v.len())).unwrap_err();
        assert!(e.contains("--cache-dir needs a value"), "{e}");
        // …and parse rejections come back prefixed with the flag.
        let e = flag_parsed(&args(&["--level", "loud"]), "--level", |_| {
            Err::<usize, _>("unknown level".into())
        })
        .unwrap_err();
        assert_eq!(e, "--level: unknown level");
    }

    #[test]
    fn pipeline_flags_parse_and_env_fallback() {
        use std::path::PathBuf;
        assert_eq!(
            parse_pipeline_flags(&args(&[]), None).unwrap(),
            PipelineFlags::default()
        );
        // The flag wins over the environment; the environment fills in
        // when the flag is absent; empty environment values read as unset.
        let f = parse_pipeline_flags(&args(&["--cache-dir", "/tmp/a"]), Some("/tmp/b")).unwrap();
        assert_eq!(f.cache_dir, Some(PathBuf::from("/tmp/a")));
        let f = parse_pipeline_flags(&args(&[]), Some("/tmp/b")).unwrap();
        assert_eq!(f.cache_dir, Some(PathBuf::from("/tmp/b")));
        assert_eq!(
            parse_pipeline_flags(&args(&[]), Some("  "))
                .unwrap()
                .cache_dir,
            None
        );

        let f = parse_pipeline_flags(
            &args(&[
                "--cache-dir",
                "/tmp/a",
                "--checkpoint-every",
                "500",
                "--resume",
            ]),
            None,
        )
        .unwrap();
        assert_eq!(f.checkpoint_every, Some(500));
        assert!(f.resume);
    }

    #[test]
    fn pipeline_flags_errors_are_explicit() {
        let e = parse_pipeline_flags(&args(&["--cache-dir"]), None).unwrap_err();
        assert!(e.contains("--cache-dir needs a value"), "{e}");
        let e = parse_pipeline_flags(
            &args(&["--cache-dir", "/c", "--checkpoint-every", "0"]),
            None,
        )
        .unwrap_err();
        assert!(
            e.contains("--checkpoint-every") && e.contains("at least 1"),
            "{e}"
        );
        let e = parse_pipeline_flags(
            &args(&["--cache-dir", "/c", "--checkpoint-every", "9.5"]),
            None,
        )
        .unwrap_err();
        assert!(e.contains("integer"), "{e}");
        // Checkpointing and resuming are meaningless without a store.
        let e = parse_pipeline_flags(&args(&["--checkpoint-every", "100"]), None).unwrap_err();
        assert!(e.contains("cache directory"), "{e}");
        let e = parse_pipeline_flags(&args(&["--resume"]), None).unwrap_err();
        assert!(
            e.contains("cache directory") && e.contains("--resume"),
            "{e}"
        );
        // An environment-provided cache satisfies the requirement.
        assert!(parse_pipeline_flags(&args(&["--resume"]), Some("/tmp/c")).is_ok());
    }

    #[test]
    fn sweep_axes_parse_grids_and_single_values() {
        assert!(parse_sweep_axes(&args(&[])).unwrap().is_empty());
        let axes = parse_sweep_axes(&args(&["--set", "mu=0.5:2.0:16"])).unwrap();
        assert_eq!(axes.len(), 1);
        assert_eq!(axes[0].0, "mu");
        assert_eq!(axes[0].1.len(), 16);
        assert_eq!(axes[0].1[0], 0.5);
        assert_eq!(axes[0].1[15], 2.0, "linspace is inclusive of both ends");
        assert_eq!(axes[0].1[1], 0.5 + 1.5 / 15.0);
        // Multiple axes keep command-line order; single values allowed.
        let axes = parse_sweep_axes(&args(&["--set", "mu=1:2:3", "--set", "lambda=4.5"])).unwrap();
        assert_eq!(axes[0].1, vec![1.0, 1.5, 2.0]);
        assert_eq!(axes[1], ("lambda".to_string(), vec![4.5]));
        // Descending grids work.
        let axes = parse_sweep_axes(&args(&["--set", "mu=2:1:2"])).unwrap();
        assert_eq!(axes[0].1, vec![2.0, 1.0]);
    }

    #[test]
    fn sweep_axis_errors_are_explicit() {
        let e = |list: &[&str]| parse_sweep_axes(&args(list)).unwrap_err();
        assert!(e(&["--set"]).contains("--set needs a value"));
        assert!(e(&["--set", "--trace"]).contains("--set needs a value"));
        assert!(e(&["--set", "mu"]).contains("name=lo:hi:count"));
        assert!(e(&["--set", "=1:2:3"]).contains("missing event name"));
        assert!(e(&["--set", "mu=1:2"]).contains("name=lo:hi:count"));
        assert!(e(&["--set", "mu=1:2:3:4"]).contains("name=lo:hi:count"));
        assert!(e(&["--set", "mu=a:2:3"]).contains("invalid number"));
        assert!(e(&["--set", "mu=0:2:3"]).contains("positive"));
        assert!(e(&["--set", "mu=1:inf:3"]).contains("positive"));
        assert!(e(&["--set", "mu=1:2:1"]).contains("at least 2"));
        assert!(e(&["--set", "mu=1:2:x"]).contains("invalid count"));
    }

    #[test]
    fn metrics_out_and_trace_default_format() {
        let f = parse_obs_flags(&args(&["--trace", "--metrics-out", "/tmp/x.jsonl"])).unwrap();
        assert_eq!(f.out.as_deref(), Some("/tmp/x.jsonl"));
        assert_eq!(f.format(), MetricsFormat::Pretty);
        assert!(f.active());
    }

    #[test]
    fn serve_flags_default_to_a_bounded_loopback_daemon() {
        let f = parse_serve_flags(&[], None).unwrap();
        assert_eq!(f, ServeFlags::default());
        assert!(f.addr.starts_with("127.0.0.1"));
        assert!(f.queue_limit > 0 && f.tenant_cap > 0);
        assert!(f.default_deadline.is_some() && f.max_deadline.is_some());
    }

    #[test]
    fn serve_flags_parse_every_knob() {
        let f = parse_serve_flags(
            &args(&[
                "--addr",
                "0.0.0.0:9000",
                "--workers",
                "8",
                "--queue",
                "64",
                "--tenant-cap",
                "4",
                "--solve-threads",
                "2",
                "--default-deadline",
                "5s",
                "--max-deadline",
                "60s",
                "--cache-dir",
                "/tmp/mdl-cache",
            ]),
            None,
        )
        .unwrap();
        assert_eq!(f.addr, "0.0.0.0:9000");
        assert_eq!(f.workers, 8);
        assert_eq!(f.queue_limit, 64);
        assert_eq!(f.tenant_cap, 4);
        assert_eq!(f.solve_threads, 2);
        assert_eq!(f.default_deadline, Some(std::time::Duration::from_secs(5)));
        assert_eq!(f.max_deadline, Some(std::time::Duration::from_secs(60)));
        assert_eq!(
            f.cache_dir,
            Some(std::path::PathBuf::from("/tmp/mdl-cache"))
        );
    }

    #[test]
    fn serve_flags_zero_deadline_means_unlimited() {
        let f = parse_serve_flags(
            &args(&["--default-deadline", "0", "--max-deadline", "0"]),
            None,
        )
        .unwrap();
        assert_eq!(f.default_deadline, None);
        assert_eq!(f.max_deadline, None);
    }

    #[test]
    fn serve_flags_env_cache_fallback_and_explicit_override() {
        let f = parse_serve_flags(&[], Some("/env/cache")).unwrap();
        assert_eq!(f.cache_dir, Some(std::path::PathBuf::from("/env/cache")));
        let f =
            parse_serve_flags(&args(&["--cache-dir", "/flag/cache"]), Some("/env/cache")).unwrap();
        assert_eq!(f.cache_dir, Some(std::path::PathBuf::from("/flag/cache")));
        assert_eq!(parse_serve_flags(&[], Some("  ")).unwrap().cache_dir, None);
    }

    #[test]
    fn serve_flag_errors_are_explicit() {
        let e = |list: &[&str]| parse_serve_flags(&args(list), None).unwrap_err();
        assert!(e(&["--workers", "0"]).contains("--workers"));
        assert!(e(&["--queue"]).contains("--queue needs a value"));
        assert!(e(&["--tenant-cap", "many"]).contains("--tenant-cap"));
        assert!(e(&["--default-deadline", "soon"]).contains("--default-deadline"));
    }
}
