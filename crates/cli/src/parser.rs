//! The model-file parser (format documented at the [crate root](crate)).

use std::collections::HashMap;
use std::fmt;

use mdl_core::{Combiner, DecomposableVector, MdMrp};
use mdl_md::SparseFactor;
use mdl_models::{ComposedModel, ModelError};

/// A parse failure with its line number (1-based).
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line of the offending input (0 for end-of-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// The outcome of parsing: a composed model plus its reward structure.
#[derive(Debug)]
pub struct ParsedModel {
    /// Component names in level order.
    pub component_names: Vec<String>,
    /// The composed model.
    pub model: ComposedModel,
    /// The decomposable reward (defaults to the constant 1 if the file has
    /// no `reward` section).
    pub reward: DecomposableVector,
    /// The initial distribution from the file's `initial` section, or
    /// `None` for the default point mass on the components' initial
    /// states.
    pub initial: Option<DecomposableVector>,
}

impl ParsedModel {
    /// Builds the symbolic MRP (matrix diagram, reachability MDD,
    /// point-mass initial distribution).
    ///
    /// # Errors
    ///
    /// Propagates model-assembly errors.
    pub fn build(&self) -> Result<MdMrp, ModelError> {
        match &self.initial {
            None => self.model.build_md_mrp(self.reward.clone()),
            Some(initial) => self
                .model
                .build_md_mrp_with_initial(self.reward.clone(), initial.clone()),
        }
    }
}

#[derive(Debug)]
struct PendingEvent {
    name: String,
    rate: f64,
    line: usize,
    factors: Vec<Option<SparseFactor>>,
}

#[derive(Debug, Default)]
struct PendingInitial {
    /// (level, state, value) assignments.
    values: Vec<(usize, usize, f64)>,
    /// per-level default overrides.
    defaults: HashMap<usize, f64>,
}

#[derive(Debug)]
struct PendingReward {
    combiner_is_sum: bool,
    /// (level, state, value) assignments.
    values: Vec<(usize, usize, f64)>,
    /// per-level default overrides.
    defaults: HashMap<usize, f64>,
}

/// Parses a model file.
///
/// # Errors
///
/// [`ParseError`] with the line number of the first problem.
pub fn parse_model(input: &str) -> Result<ParsedModel, ParseError> {
    let mut names: Vec<String> = Vec::new();
    let mut name_index: HashMap<String, usize> = HashMap::new();
    let mut sizes: Vec<usize> = Vec::new();
    let mut initials: Vec<u32> = Vec::new();
    let mut events: Vec<PendingEvent> = Vec::new();
    let mut reward: Option<PendingReward> = None;
    let mut in_reward = false;
    let mut initial_dist: Option<PendingInitial> = None;
    let mut in_initial = false;

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "component" => {
                in_reward = false;
                in_initial = false;
                if !events.is_empty() {
                    return Err(err(lineno, "components must be declared before events"));
                }
                let (name, rest) = match tokens.as_slice() {
                    [_, name, size] => (name, (*size, None)),
                    [_, name, size, "initial", k] => (name, (*size, Some(*k))),
                    _ => {
                        return Err(err(
                            lineno,
                            "expected: component <name> <size> [initial <k>]",
                        ))
                    }
                };
                let size: usize = rest
                    .0
                    .parse()
                    .map_err(|_| err(lineno, format!("bad component size {:?}", rest.0)))?;
                if size == 0 {
                    return Err(err(lineno, "component size must be positive"));
                }
                let initial: u32 = match rest.1 {
                    None => 0,
                    Some(k) => k
                        .parse()
                        .map_err(|_| err(lineno, format!("bad initial state {k:?}")))?,
                };
                if initial as usize >= size {
                    return Err(err(lineno, "initial state outside the component"));
                }
                if name_index.contains_key(*name) {
                    return Err(err(lineno, format!("duplicate component {name}")));
                }
                name_index.insert((*name).to_string(), names.len());
                names.push((*name).to_string());
                sizes.push(size);
                initials.push(initial);
            }
            "event" => {
                in_reward = false;
                in_initial = false;
                let (name, rate) = match tokens.as_slice() {
                    [_, name, "rate", r] => (*name, *r),
                    _ => return Err(err(lineno, "expected: event <name> rate <λ>")),
                };
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| err(lineno, format!("bad rate {rate:?}")))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(err(lineno, "rates must be positive and finite"));
                }
                events.push(PendingEvent {
                    name: name.to_string(),
                    rate,
                    line: lineno,
                    factors: vec![None; names.len()],
                });
            }
            "factor" => {
                let event = events
                    .last_mut()
                    .ok_or_else(|| err(lineno, "factor before any event"))?;
                let (comp, from, to, value) = match tokens.as_slice() {
                    [_, comp, from, to, value] => (*comp, *from, *to, *value),
                    _ => {
                        return Err(err(
                            lineno,
                            "expected: factor <component> <from> <to> <value>",
                        ))
                    }
                };
                let level = *name_index
                    .get(comp)
                    .ok_or_else(|| err(lineno, format!("unknown component {comp}")))?;
                let from: usize = from
                    .parse()
                    .map_err(|_| err(lineno, format!("bad state {from:?}")))?;
                let to: usize = to
                    .parse()
                    .map_err(|_| err(lineno, format!("bad state {to:?}")))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(lineno, format!("bad value {value:?}")))?;
                if from >= sizes[level] || to >= sizes[level] {
                    return Err(err(lineno, format!("state outside component {comp}")));
                }
                if !value.is_finite() {
                    return Err(err(lineno, "factor values must be finite"));
                }
                let f = event.factors[level].get_or_insert_with(|| SparseFactor::new(sizes[level]));
                f.push(from, to, value);
            }
            "reward" => {
                if reward.is_some() {
                    return Err(err(lineno, "duplicate reward section"));
                }
                let combiner_is_sum = match tokens.as_slice() {
                    [_, "sum"] => true,
                    [_, "product"] => false,
                    _ => return Err(err(lineno, "expected: reward sum|product")),
                };
                reward = Some(PendingReward {
                    combiner_is_sum,
                    values: Vec::new(),
                    defaults: HashMap::new(),
                });
                in_reward = true;
                in_initial = false;
            }
            "initial" => {
                if tokens.len() != 1 {
                    return Err(err(
                        lineno,
                        "the initial section starts with a bare `initial`",
                    ));
                }
                if initial_dist.is_some() {
                    return Err(err(lineno, "duplicate initial section"));
                }
                initial_dist = Some(PendingInitial::default());
                in_initial = true;
                in_reward = false;
            }
            "ivalue" => {
                if !in_initial {
                    return Err(err(lineno, "ivalue outside an initial section"));
                }
                let d = initial_dist
                    .as_mut()
                    .expect("in_initial implies initial_dist");
                let (comp, state, value) = match tokens.as_slice() {
                    [_, comp, state, value] => (*comp, *state, *value),
                    _ => return Err(err(lineno, "expected: ivalue <component> <state> <v>")),
                };
                let level = *name_index
                    .get(comp)
                    .ok_or_else(|| err(lineno, format!("unknown component {comp}")))?;
                let state: usize = state
                    .parse()
                    .map_err(|_| err(lineno, format!("bad state {state:?}")))?;
                if state >= sizes[level] {
                    return Err(err(lineno, format!("state outside component {comp}")));
                }
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(lineno, format!("bad value {value:?}")))?;
                d.values.push((level, state, value));
            }
            "idefault" => {
                if !in_initial {
                    return Err(err(lineno, "idefault outside an initial section"));
                }
                let d = initial_dist
                    .as_mut()
                    .expect("in_initial implies initial_dist");
                let (comp, value) = match tokens.as_slice() {
                    [_, comp, value] => (*comp, *value),
                    _ => return Err(err(lineno, "expected: idefault <component> <v>")),
                };
                let level = *name_index
                    .get(comp)
                    .ok_or_else(|| err(lineno, format!("unknown component {comp}")))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(lineno, format!("bad value {value:?}")))?;
                d.defaults.insert(level, value);
            }
            "value" => {
                if !in_reward {
                    return Err(err(lineno, "value outside a reward section"));
                }
                let r = reward.as_mut().expect("in_reward implies reward");
                let (comp, state, value) = match tokens.as_slice() {
                    [_, comp, state, value] => (*comp, *state, *value),
                    _ => return Err(err(lineno, "expected: value <component> <state> <v>")),
                };
                let level = *name_index
                    .get(comp)
                    .ok_or_else(|| err(lineno, format!("unknown component {comp}")))?;
                let state: usize = state
                    .parse()
                    .map_err(|_| err(lineno, format!("bad state {state:?}")))?;
                if state >= sizes[level] {
                    return Err(err(lineno, format!("state outside component {comp}")));
                }
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(lineno, format!("bad value {value:?}")))?;
                r.values.push((level, state, value));
            }
            "default" => {
                if !in_reward {
                    return Err(err(lineno, "default outside a reward section"));
                }
                let r = reward.as_mut().expect("in_reward implies reward");
                let (comp, value) = match tokens.as_slice() {
                    [_, comp, value] => (*comp, *value),
                    _ => return Err(err(lineno, "expected: default <component> <v>")),
                };
                let level = *name_index
                    .get(comp)
                    .ok_or_else(|| err(lineno, format!("unknown component {comp}")))?;
                let value: f64 = value
                    .parse()
                    .map_err(|_| err(lineno, format!("bad value {value:?}")))?;
                r.defaults.insert(level, value);
            }
            other => return Err(err(lineno, format!("unknown directive {other:?}"))),
        }
    }

    if names.is_empty() {
        return Err(err(0, "no components declared"));
    }

    // Assemble the composed model.
    let mut model = ComposedModel::new();
    for ((name, &size), &initial) in names.iter().zip(&sizes).zip(&initials) {
        model.add_component(name.clone(), size, initial);
    }
    for e in events {
        let mut factors = e.factors;
        factors.resize(names.len(), None);
        if factors.iter().all(Option::is_none) {
            return Err(err(e.line, format!("event {} has no factors", e.name)));
        }
        model
            .add_event(e.name.clone(), e.rate, factors)
            .map_err(|me| err(e.line, format!("event {}: {me}", e.name)))?;
    }

    // Assemble the reward.
    let reward = match reward {
        None => {
            DecomposableVector::constant(&sizes, 1.0).map_err(|e| err(0, format!("reward: {e}")))?
        }
        Some(r) => {
            let neutral = if r.combiner_is_sum { 0.0 } else { 1.0 };
            let mut tables: Vec<Vec<f64>> = sizes
                .iter()
                .enumerate()
                .map(|(l, &n)| vec![r.defaults.get(&l).copied().unwrap_or(neutral); n])
                .collect();
            for (level, state, value) in r.values {
                tables[level][state] = value;
            }
            let combiner = if r.combiner_is_sum {
                Combiner::Sum
            } else {
                Combiner::Product
            };
            DecomposableVector::new(tables, combiner).map_err(|e| err(0, format!("reward: {e}")))?
        }
    };

    // Assemble the optional initial distribution (product form; defaults
    // to 1.0 per unset entry so an untouched level is neutral).
    let initial = match initial_dist {
        None => None,
        Some(d) => {
            let mut tables: Vec<Vec<f64>> = sizes
                .iter()
                .enumerate()
                .map(|(l, &n)| vec![d.defaults.get(&l).copied().unwrap_or(1.0); n])
                .collect();
            for (level, state, value) in d.values {
                tables[level][state] = value;
            }
            Some(
                DecomposableVector::new(tables, Combiner::Product)
                    .map_err(|e| err(0, format!("initial: {e}")))?,
            )
        }
    };

    Ok(ParsedModel {
        component_names: names,
        model,
        reward,
        initial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# sample model
component ctrl 2 initial 0
component workers 3

event toggle rate 0.5
  factor ctrl 0 1 1.0
  factor ctrl 1 0 1.0

event work rate 2.0
  factor ctrl 0 0 1.0
  factor workers 0 1 1.0
  factor workers 1 2 1.0

event finish rate 1.0
  factor workers 1 0 1.0
  factor workers 2 1 1.0

reward sum
  value workers 1 1.0
  value workers 2 2.0
"#;

    #[test]
    fn sample_parses_and_builds() {
        let parsed = parse_model(SAMPLE).unwrap();
        assert_eq!(parsed.component_names, vec!["ctrl", "workers"]);
        assert_eq!(parsed.model.sizes(), vec![2, 3]);
        assert_eq!(parsed.model.events().len(), 3);
        let mrp = parsed.build().unwrap();
        assert!(mrp.num_states() > 0);
        assert_eq!(mrp.reward().evaluate(&[0, 2]), 2.0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let parsed = parse_model("component a 2 # trailing\n\n# full line\n").unwrap();
        assert_eq!(parsed.model.sizes(), vec![2]);
    }

    #[test]
    fn missing_components_rejected() {
        let e = parse_model("# nothing\n").unwrap_err();
        assert!(e.message.contains("no components"));
    }

    #[test]
    fn unknown_directive_reports_line() {
        let e = parse_model("component a 2\nfrobnicate\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn factor_before_event_rejected() {
        let e = parse_model("component a 2\nfactor a 0 1 1.0\n").unwrap_err();
        assert!(e.message.contains("before any event"));
    }

    #[test]
    fn out_of_range_states_rejected() {
        let e = parse_model("component a 2\nevent x rate 1.0\nfactor a 0 5 1.0\n").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn bad_rate_rejected() {
        let e = parse_model("component a 2\nevent x rate -1\n").unwrap_err();
        assert!(e.message.contains("positive"));
        let e = parse_model("component a 2\nevent x rate nope\n").unwrap_err();
        assert!(e.message.contains("bad rate"));
    }

    #[test]
    fn duplicate_component_rejected() {
        let e = parse_model("component a 2\ncomponent a 3\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn event_without_factors_rejected() {
        let e = parse_model("component a 2\nevent idle rate 1.0\n").unwrap_err();
        assert!(e.message.contains("no factors"));
    }

    #[test]
    fn default_reward_is_constant_one() {
        let parsed = parse_model("component a 2\nevent x rate 1.0\nfactor a 0 1 1.0\n").unwrap();
        assert_eq!(parsed.reward.evaluate(&[0]), 1.0);
        assert_eq!(parsed.reward.evaluate(&[1]), 1.0);
    }

    #[test]
    fn product_reward_with_defaults() {
        let parsed = parse_model(
            "component a 2\ncomponent b 2\nevent x rate 1.0\nfactor a 0 1 1.0\n\
             reward product\ndefault b 0.5\nvalue a 1 3.0\n",
        )
        .unwrap();
        assert_eq!(parsed.reward.evaluate(&[1, 0]), 1.5);
        assert_eq!(parsed.reward.evaluate(&[0, 1]), 0.5);
    }

    #[test]
    fn initial_section_parses_product_form() {
        let parsed = parse_model(
            "component a 2\ncomponent b 2\nevent x rate 1.0\nfactor a 0 1 1.0\n\
             initial\nivalue a 1 0.0\nidefault b 0.5\n",
        )
        .unwrap();
        let init = parsed.initial.expect("initial section parsed");
        assert_eq!(init.evaluate(&[0, 0]), 0.5);
        assert_eq!(init.evaluate(&[1, 1]), 0.0);
    }

    #[test]
    fn initial_without_section_is_none() {
        let parsed = parse_model("component a 2\nevent x rate 1.0\nfactor a 0 1 1.0\n").unwrap();
        assert!(parsed.initial.is_none());
    }

    #[test]
    fn initial_directives_require_section() {
        let e = parse_model("component a 2\nivalue a 0 1.0\n").unwrap_err();
        assert!(e.message.contains("outside an initial section"));
        let e = parse_model("component a 2\nidefault a 1.0\n").unwrap_err();
        assert!(e.message.contains("outside an initial section"));
    }

    #[test]
    fn duplicate_initial_section_rejected() {
        let e = parse_model("component a 2\ninitial\ninitial\n").unwrap_err();
        assert!(e.message.contains("duplicate initial"));
    }

    #[test]
    fn reward_directives_require_section() {
        let e = parse_model("component a 2\nvalue a 0 1.0\n").unwrap_err();
        assert!(e.message.contains("outside a reward section"));
    }
}
