//! The CLI's error type: every failure carries a message, and budget
//! interruptions are kept distinct so `main` can map them to their own
//! exit code (scripts driving `--deadline` need to tell "ran out of
//! time" apart from "the model is broken").

use std::fmt;

/// Exit code for ordinary failures (bad flags, malformed models, solver
/// errors).
pub const EXIT_FAILURE: u8 = 1;
/// Exit code when a `--deadline` (or other budget limit) interrupted the
/// run before it finished.
pub const EXIT_INTERRUPTED: u8 = 2;

/// A CLI failure: what to print on stderr, classified by exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A compute budget interrupted the run (`--deadline` expired,
    /// cancellation, node cap). Exits with [`EXIT_INTERRUPTED`].
    Interrupted(String),
    /// Any other failure. Exits with [`EXIT_FAILURE`].
    Failed(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Interrupted(_) => EXIT_INTERRUPTED,
            CliError::Failed(_) => EXIT_FAILURE,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Interrupted(msg) | CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failed(msg)
    }
}

/// Formatting into the output `String` cannot fail in practice, but the
/// commands propagate instead of unwrapping so a surprise is an error
/// message, not a panic.
impl From<fmt::Error> for CliError {
    fn from(e: fmt::Error) -> Self {
        CliError::Failed(format!("cannot format output: {e}"))
    }
}

impl From<mdl_ctmc::CtmcError> for CliError {
    fn from(e: mdl_ctmc::CtmcError) -> Self {
        match e {
            mdl_ctmc::CtmcError::Interrupted { .. } => CliError::Interrupted(e.to_string()),
            _ => CliError::Failed(e.to_string()),
        }
    }
}

impl From<mdl_core::CoreError> for CliError {
    fn from(e: mdl_core::CoreError) -> Self {
        let interrupted = matches!(
            &e,
            mdl_core::CoreError::Interrupted { .. }
                | mdl_core::CoreError::Ctmc(mdl_ctmc::CtmcError::Interrupted { .. })
                | mdl_core::CoreError::Md(mdl_md::MdError::Interrupted { .. })
        );
        if interrupted {
            CliError::Interrupted(e.to_string())
        } else {
            CliError::Failed(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interruptions_get_their_own_exit_code() {
        let e = CliError::from(mdl_core::CoreError::Interrupted {
            phase: "lump.level",
            reason: mdl_obs::BudgetExceeded::Cancelled,
        });
        assert_eq!(e.exit_code(), EXIT_INTERRUPTED);
        assert!(e.to_string().contains("interrupted"), "{e}");

        let e = CliError::from(mdl_core::CoreError::Ctmc(mdl_ctmc::CtmcError::interrupted(
            "solve.power",
            3,
            0.5,
            vec![],
            mdl_obs::BudgetExceeded::Cancelled,
        )));
        assert_eq!(e.exit_code(), EXIT_INTERRUPTED);

        let e = CliError::from(mdl_core::CoreError::Md(mdl_md::MdError::Interrupted {
            phase: "md.compile",
            nodes: 1,
            reason: mdl_obs::BudgetExceeded::Cancelled,
        }));
        assert_eq!(e.exit_code(), EXIT_INTERRUPTED);
    }

    #[test]
    fn other_failures_exit_one() {
        let e = CliError::from("no such flag".to_string());
        assert_eq!(e.exit_code(), EXIT_FAILURE);
        let e = CliError::from(mdl_ctmc::CtmcError::AbsorbingState { state: 0 });
        assert_eq!(e.exit_code(), EXIT_FAILURE);
        let e = CliError::from(mdl_core::CoreError::NotProductForm { what: "initial" });
        assert_eq!(e.exit_code(), EXIT_FAILURE);
    }
}
