//! Library half of the `mdlump-cli` command-line tool: the model-file
//! parser and the command implementations, kept out of `main.rs` so they
//! are unit-testable.
//!
//! # Model file format
//!
//! Line-oriented; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! # A power-managed worker pool.
//! component ctrl 2 initial 0
//! component workers 4 initial 0
//!
//! event toggle rate 0.2
//!   factor ctrl 0 1 1.0
//!   factor ctrl 1 0 1.0
//!
//! event work_high rate 1.5
//!   factor ctrl 0 0 1.0          # gate: only in mode 0
//!   factor workers 0 1 1.0
//!   factor workers 1 2 1.0
//!   factor workers 2 3 1.0
//!
//! event finish rate 1.0
//!   factor workers 1 0 1.0
//!   factor workers 2 1 1.0
//!   factor workers 3 2 1.0
//!
//! reward sum
//!   value workers 1 1.0
//!   value workers 2 2.0
//!   value workers 3 3.0
//! ```
//!
//! * `component <name> <size> [initial <k>]` — one per MD level, in order;
//! * `event <name> rate <λ>` followed by `factor <component> <from> <to>
//!   <value>` lines (components not mentioned are untouched);
//! * `reward sum|product` followed by `value <component> <state> <v>` and
//!   optional `default <component> <v>` lines (unset values are 0 for
//!   `sum`, 1 for `product`);
//! * an optional `initial` section (bare `initial` line, then
//!   `ivalue <component> <state> <v>` / `idefault <component> <v>` lines)
//!   giving a product-form initial distribution — required for exact
//!   lumping, whose classes must carry uniform initial probability; with
//!   no section, the point mass on the components' `initial` states is
//!   used. The distribution must sum to 1 over reachable states.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod commands;
pub mod error;
pub mod flags;
pub mod parser;

pub use parser::{parse_model, ParseError, ParsedModel};
