//! Implementations of the `info`, `lump` and `solve` subcommands; `main`
//! only parses arguments and prints.

use std::fmt::Write as _;
use std::time::Duration;

use mdl_core::{
    KernelOptions, LumpKind, LumpRequest, LumpResult, MdMrp, SolveOutcome, SolveRequest,
};
use mdl_ctmc::{RunReport, SolverOptions, TransientOptions};
use mdl_obs::Budget;

use crate::error::CliError;
use crate::flags::ResilienceFlags;
use crate::parser::ParsedModel;

/// The wall-clock budget for a command: a deadline when one was given on
/// the command line, unlimited otherwise.
fn budget_for(deadline: Option<Duration>) -> Budget {
    match deadline {
        Some(d) => Budget::unlimited().deadline_in(d),
        None => Budget::unlimited(),
    }
}

/// Which measure `solve` computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Steady-state expected reward.
    Stationary,
    /// Expected reward at time `t`.
    Transient(f64),
    /// Expected reward accumulated over `[0, t]`.
    Accumulated(f64),
}

/// `info`: structural description of the model and its symbolic
/// representation.
///
/// # Errors
///
/// Propagates build errors as [`CliError`]s.
pub fn info(parsed: &ParsedModel) -> Result<String, CliError> {
    let mut out = String::new();
    let sizes = parsed.model.sizes();
    writeln!(out, "components ({} levels):", sizes.len())?;
    for (name, size) in parsed.component_names.iter().zip(&sizes) {
        writeln!(out, "  {name:<20} {size} local states")?;
    }
    writeln!(out, "events: {}", parsed.model.events().len())?;
    for e in parsed.model.events() {
        let touched: Vec<&str> = e
            .factors
            .iter()
            .zip(&parsed.component_names)
            .filter_map(|(f, n)| f.as_ref().map(|_| n.as_str()))
            .collect();
        writeln!(
            out,
            "  {:<20} rate {:<8} touches {}",
            e.name,
            e.rate,
            touched.join(", ")
        )?;
    }
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let product: u64 = sizes.iter().map(|&s| s as u64).product();
    writeln!(out, "state space:")?;
    writeln!(out, "  potential (product): {product}")?;
    writeln!(out, "  reachable:           {}", mrp.num_states())?;
    writeln!(
        out,
        "  MD nodes per level:  {:?}",
        mrp.matrix().md().nodes_per_level()
    )?;
    writeln!(
        out,
        "  symbolic memory:     {} bytes",
        mrp.matrix().memory_bytes()
    )?;
    Ok(out)
}

fn run_lump(
    mrp: &MdMrp,
    kind: LumpKind,
    iterate: bool,
    budget: &Budget,
    threads: usize,
) -> Result<LumpResult, CliError> {
    LumpRequest::new(kind)
        .threads(threads)
        .budget(budget.clone())
        .iterate(iterate)
        .run(mrp)
        .map_err(CliError::from)
}

/// `lump`: run compositional lumping and report the reduction.
///
/// # Errors
///
/// Propagates build and lumping errors as [`CliError`]s; a `deadline`
/// that expires mid-lump surfaces as [`CliError::Interrupted`].
pub fn lump(
    parsed: &ParsedModel,
    kind: LumpKind,
    iterate: bool,
    deadline: Option<Duration>,
    threads: usize,
) -> Result<String, CliError> {
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let result = run_lump(&mrp, kind, iterate, &budget_for(deadline), threads)?;
    let rounds = result.stats.rounds;
    let mut out = String::new();
    writeln!(
        out,
        "{:?} lumping: {} -> {} states (x{:.2}) in {:?} ({} round{})",
        kind,
        result.stats.original_states,
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        result.stats.elapsed,
        rounds,
        if rounds == 1 { "" } else { "s" },
    )?;
    for (l, stats) in result.stats.per_level.iter().enumerate() {
        writeln!(
            out,
            "  level {} ({}): {} -> {} local states",
            l + 1,
            parsed.component_names[l],
            stats.original_size,
            stats.lumped_size
        )?;
    }
    writeln!(
        out,
        "  symbolic memory: {} -> {} bytes",
        result.stats.memory_before, result.stats.memory_after
    )?;
    Ok(out)
}

/// The [`SolveRequest`] for `measure` with the shared CLI options
/// applied (fallback still off — callers enable it when asked to).
fn request_for(
    measure: Measure,
    sopts: &SolverOptions,
    topts: &TransientOptions,
    kernel: &KernelOptions,
) -> SolveRequest {
    let request = match measure {
        Measure::Stationary => SolveRequest::stationary(),
        Measure::Transient(t) => SolveRequest::transient(t),
        Measure::Accumulated(t) => SolveRequest::accumulated_reward(t),
    };
    request
        .solver_options(sopts.clone())
        .transient_options(topts.clone())
        .kernel(kernel.kind)
        .threads(kernel.threads)
}

/// The expected reward a solve outcome denotes: the scalar itself, or
/// the distribution dotted with `mrp`'s reward vector.
fn expected_reward(mrp: &MdMrp, outcome: SolveOutcome) -> Result<f64, CliError> {
    match outcome {
        SolveOutcome::Distribution(sol) => Ok(sol.try_expected_reward(&mrp.reward_vector())?),
        SolveOutcome::Value(v) => Ok(v),
    }
}

/// Solves one measure directly on a single kernel/method configuration
/// (no fallback ladder). Used for the lumped chain and the cross-check.
fn solve_direct(
    mrp: &MdMrp,
    exact: Option<&LumpResult>,
    measure: Measure,
    sopts: &SolverOptions,
    topts: &TransientOptions,
    kernel: &KernelOptions,
) -> Result<f64, CliError> {
    match exact {
        None => {
            let (outcome, _) = request_for(measure, sopts, topts, kernel).run(mrp);
            expected_reward(mrp, outcome?)
        }
        Some(result) => {
            let measures = result.exact_measures().expect("exact lump has exit rates");
            let value = match measure {
                Measure::Stationary => measures.expected_stationary_reward(sopts)?,
                Measure::Transient(t) => measures.expected_transient_reward(t, topts)?,
                Measure::Accumulated(t) => measures.expected_accumulated_reward(t, topts)?,
            };
            Ok(value)
        }
    }
}

/// Solves the lumped chain through the resilient fallback ladder.
/// Exact lumps solve through their embedded measures instead (the exact
/// path has no ladder) and report no attempts.
fn solve_with_fallback(
    result: &LumpResult,
    kind: LumpKind,
    measure: Measure,
    sopts: &SolverOptions,
    topts: &TransientOptions,
    kernel: &KernelOptions,
) -> Result<(f64, Option<RunReport>), CliError> {
    if kind == LumpKind::Exact {
        let value = solve_direct(&result.mrp, Some(result), measure, sopts, topts, kernel)?;
        return Ok((value, None));
    }
    let (outcome, report) = request_for(measure, sopts, topts, kernel)
        .fallback(true)
        .run(&result.mrp);
    let value = expected_reward(&result.mrp, outcome?)?;
    Ok((value, Some(report)))
}

/// `solve`: lump, solve the lumped chain, report the measure (with a
/// cross-check against the unlumped chain when it is small enough).
///
/// With `--fallback` the lumped chain solves through the resilient
/// `(method, kernel)` ladder; `--report` appends the per-attempt log;
/// `--deadline` bounds the whole run (lump, compile, solve,
/// cross-check).
///
/// # Errors
///
/// Propagates build, lumping and solver errors as [`CliError`]s; budget
/// interruptions surface as [`CliError::Interrupted`].
pub fn solve(
    parsed: &ParsedModel,
    kind: LumpKind,
    measure: Measure,
    cross_check_limit: usize,
    kernel: &KernelOptions,
    resilience: &ResilienceFlags,
) -> Result<String, CliError> {
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let budget = resilience.budget();
    let result = run_lump(&mrp, kind, false, &budget, kernel.threads)?;
    let mut out = String::new();
    writeln!(
        out,
        "lumped {} -> {} states; solving the lumped chain",
        result.stats.original_states, result.stats.lumped_states
    )?;

    let sopts = SolverOptions {
        tolerance: 1e-12,
        budget: budget.clone(),
        ..SolverOptions::default()
    };
    let topts = TransientOptions {
        budget: budget.clone(),
        ..TransientOptions::default()
    };
    let (lumped_value, report) = if resilience.fallback {
        solve_with_fallback(&result, kind, measure, &sopts, &topts, kernel)?
    } else {
        let exact = (kind == LumpKind::Exact).then_some(&result);
        (
            solve_direct(&result.mrp, exact, measure, &sopts, &topts, kernel)?,
            None,
        )
    };
    writeln!(out, "measure ({measure:?}): {lumped_value:.10}")?;
    if resilience.report {
        match &report {
            Some(r) => out.push_str(&r.render()),
            None => writeln!(
                out,
                "no fallback ladder for this configuration; solved directly"
            )?,
        }
    }

    if mrp.num_states() <= cross_check_limit {
        let full_value = solve_direct(&mrp, None, measure, &sopts, &topts, kernel)?;
        writeln!(
            out,
            "cross-check (unlumped chain): {full_value:.10}  |Δ| = {:.3e}",
            (full_value - lumped_value).abs()
        )?;
    }
    Ok(out)
}

/// `simulate`: Monte Carlo estimate of the stationary (or accumulated)
/// reward, cross-checked against the lumped numerical solution — the
/// simulator shares only the model semantics with the symbolic stack, so
/// agreement validates the whole pipeline.
///
/// # Errors
///
/// Propagates build, lumping and solver errors as [`CliError`]s; a
/// `deadline` bounds the numerical cross-check (the simulation itself
/// runs a fixed number of replications).
pub fn simulate(
    parsed: &ParsedModel,
    horizon: f64,
    replications: usize,
    seed: u64,
    deadline: Option<Duration>,
) -> Result<String, CliError> {
    use mdl_models::sim::SimOptions;
    let options = SimOptions { seed, replications };
    let budget = budget_for(deadline);
    let mut out = String::new();

    let est = parsed
        .model
        .simulate_stationary_reward(&parsed.reward, horizon, &options);
    writeln!(
        out,
        "simulated long-run reward: {:.6} ± {:.6} ({} batches of length {horizon})",
        est.mean, est.std_error, est.replications
    )?;

    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let result = run_lump(&mrp, LumpKind::Ordinary, false, &budget, 0)?;
    let numerical = result.mrp.expected_stationary_reward(&SolverOptions {
        budget,
        ..SolverOptions::default()
    })?;
    writeln!(
        out,
        "numerical (lumped {} -> {} states): {numerical:.10}",
        result.stats.original_states, result.stats.lumped_states
    )?;
    writeln!(
        out,
        "|simulated − numerical| = {:.3e} ({:.1} standard errors)",
        (est.mean - numerical).abs(),
        (est.mean - numerical).abs() / est.std_error.max(1e-300)
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;

    const MODEL: &str = "
component ctrl 2 initial 0
component workers 8

event toggle rate 0.2
  factor ctrl 0 1 1.0
  factor ctrl 1 0 1.0

event start rate 2.0
  factor ctrl 0 0 1.0
  factor workers 0 1 1.0
  factor workers 0 2 1.0
  factor workers 0 4 1.0
  factor workers 1 3 1.0
  factor workers 1 5 1.0
  factor workers 2 3 1.0
  factor workers 2 6 1.0
  factor workers 4 5 1.0
  factor workers 4 6 1.0
  factor workers 3 7 1.0
  factor workers 5 7 1.0
  factor workers 6 7 1.0

event finish rate 1.0
  factor workers 1 0 1.0
  factor workers 2 0 1.0
  factor workers 4 0 1.0
  factor workers 3 1 1.0
  factor workers 3 2 1.0
  factor workers 5 1 1.0
  factor workers 5 4 1.0
  factor workers 6 2 1.0
  factor workers 6 4 1.0
  factor workers 7 3 1.0
  factor workers 7 5 1.0
  factor workers 7 6 1.0

reward sum
  value workers 1 1.0
  value workers 2 1.0
  value workers 4 1.0
  value workers 3 2.0
  value workers 5 2.0
  value workers 6 2.0
  value workers 7 3.0
";

    #[test]
    fn info_reports_structure() {
        let parsed = parse_model(MODEL).unwrap();
        let out = info(&parsed).unwrap();
        assert!(out.contains("ctrl"));
        assert!(out.contains("reachable"));
    }

    #[test]
    fn lump_finds_worker_bit_symmetry() {
        let parsed = parse_model(MODEL).unwrap();
        let out = lump(&parsed, LumpKind::Ordinary, false, None, 0).unwrap();
        // The 8 worker bitmask states lump to 4 counts: 2×8 -> 2×4.
        assert!(out.contains("16 -> 8 states"), "{out}");
    }

    #[test]
    fn solve_reports_measure_and_cross_check() {
        let parsed = parse_model(MODEL).unwrap();
        let out = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
        )
        .unwrap();
        assert!(out.contains("cross-check"), "{out}");
        assert!(out.contains("measure"), "{out}");
        // |Δ| printed in scientific notation and tiny.
        assert!(out.contains("e-"), "{out}");
    }

    #[test]
    fn solve_output_identical_across_kernels() {
        use mdl_core::{KernelKind, KernelOptions};
        let parsed = parse_model(MODEL).unwrap();
        let walk = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions {
                kind: KernelKind::Walk,
                threads: 1,
            },
            &ResilienceFlags::default(),
        )
        .unwrap();
        for threads in [1usize, 4] {
            let compiled = solve(
                &parsed,
                LumpKind::Ordinary,
                Measure::Stationary,
                1_000,
                &KernelOptions {
                    kind: KernelKind::Compiled,
                    threads,
                },
                &ResilienceFlags::default(),
            )
            .unwrap();
            assert_eq!(walk, compiled, "kernel products are bit-identical");
        }
    }

    #[test]
    fn solve_with_fallback_matches_direct_and_reports_attempts() {
        let parsed = parse_model(MODEL).unwrap();
        let direct = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
        )
        .unwrap();
        let resilient = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags {
                fallback: true,
                report: true,
                deadline: None,
            },
        )
        .unwrap();
        assert!(resilient.contains("solve attempts:"), "{resilient}");
        assert!(resilient.contains("jacobi"), "{resilient}");
        // Same measure line in both outputs.
        let measure_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("measure"))
                .map(String::from)
        };
        assert_eq!(measure_line(&direct), measure_line(&resilient));

        // The accumulated measure rides the kernel-rung ladder too and
        // reports its (synthesized) attempt log.
        let accumulated = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Accumulated(1.0),
            0,
            &KernelOptions::default(),
            &ResilienceFlags {
                fallback: true,
                report: true,
                deadline: None,
            },
        )
        .unwrap();
        assert!(accumulated.contains("solve attempts:"), "{accumulated}");
        assert!(accumulated.contains("uniformization"), "{accumulated}");
    }

    #[test]
    fn expired_deadline_interrupts_with_distinct_error() {
        let parsed = parse_model(MODEL).unwrap();
        let err = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags {
                deadline: Some(Duration::ZERO),
                fallback: false,
                report: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Interrupted(_)), "{err:?}");
        assert_eq!(err.exit_code(), crate::error::EXIT_INTERRUPTED);
        assert!(err.to_string().contains("interrupted"), "{err}");

        let err = lump(&parsed, LumpKind::Ordinary, true, Some(Duration::ZERO), 1).unwrap_err();
        assert!(matches!(err, CliError::Interrupted(_)), "{err:?}");
    }

    #[test]
    fn simulate_agrees_with_numerical() {
        let parsed = parse_model(MODEL).unwrap();
        let out = simulate(&parsed, 50.0, 30, 99, None).unwrap();
        assert!(out.contains("simulated long-run reward"), "{out}");
        assert!(out.contains("numerical"), "{out}");
        // The report itself contains the discrepancy in standard errors;
        // parse it back out and require statistical agreement.
        let se_line = out.lines().find(|l| l.contains("standard errors")).unwrap();
        let inside = se_line.split('(').nth(1).unwrap();
        let ses: f64 = inside.split_whitespace().next().unwrap().parse().unwrap();
        assert!(
            ses < 6.0,
            "simulation {ses} standard errors away:
{out}"
        );
    }

    #[test]
    fn solve_transient_and_accumulated() {
        let parsed = parse_model(MODEL).unwrap();
        for m in [Measure::Transient(1.5), Measure::Accumulated(3.0)] {
            let out = solve(
                &parsed,
                LumpKind::Ordinary,
                m,
                1_000,
                &KernelOptions::default(),
                &ResilienceFlags::default(),
            )
            .unwrap();
            assert!(out.contains("measure"), "{out}");
        }
    }
}
