//! Implementations of the `info`, `lump` and `solve` subcommands; `main`
//! only parses arguments and prints.

use std::fmt::Write as _;

use mdl_core::{
    compositional_lump_iterated, compositional_lump_with, KernelOptions, LumpKind, LumpOptions,
    LumpResult, MdMrp,
};
use mdl_ctmc::{SolverOptions, TransientOptions};

use crate::parser::ParsedModel;

/// Which measure `solve` computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Steady-state expected reward.
    Stationary,
    /// Expected reward at time `t`.
    Transient(f64),
    /// Expected reward accumulated over `[0, t]`.
    Accumulated(f64),
}

/// `info`: structural description of the model and its symbolic
/// representation.
///
/// # Errors
///
/// Propagates build errors as strings (the CLI's error type).
pub fn info(parsed: &ParsedModel) -> Result<String, String> {
    let mut out = String::new();
    let sizes = parsed.model.sizes();
    writeln!(out, "components ({} levels):", sizes.len()).unwrap();
    for (name, size) in parsed.component_names.iter().zip(&sizes) {
        writeln!(out, "  {name:<20} {size} local states").unwrap();
    }
    writeln!(out, "events: {}", parsed.model.events().len()).unwrap();
    for e in parsed.model.events() {
        let touched: Vec<&str> = e
            .factors
            .iter()
            .zip(&parsed.component_names)
            .filter_map(|(f, n)| f.as_ref().map(|_| n.as_str()))
            .collect();
        writeln!(
            out,
            "  {:<20} rate {:<8} touches {}",
            e.name,
            e.rate,
            touched.join(", ")
        )
        .unwrap();
    }
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let product: u64 = sizes.iter().map(|&s| s as u64).product();
    writeln!(out, "state space:").unwrap();
    writeln!(out, "  potential (product): {product}").unwrap();
    writeln!(out, "  reachable:           {}", mrp.num_states()).unwrap();
    writeln!(
        out,
        "  MD nodes per level:  {:?}",
        mrp.matrix().md().nodes_per_level()
    )
    .unwrap();
    writeln!(
        out,
        "  symbolic memory:     {} bytes",
        mrp.matrix().memory_bytes()
    )
    .unwrap();
    Ok(out)
}

fn run_lump(mrp: &MdMrp, kind: LumpKind, iterate: bool) -> Result<(LumpResult, usize), String> {
    let options = LumpOptions::default();
    if iterate {
        compositional_lump_iterated(mrp, kind, &options).map_err(|e| e.to_string())
    } else {
        compositional_lump_with(mrp, kind, &options)
            .map(|r| (r, 1))
            .map_err(|e| e.to_string())
    }
}

/// `lump`: run compositional lumping and report the reduction.
///
/// # Errors
///
/// Propagates build and lumping errors as strings.
pub fn lump(parsed: &ParsedModel, kind: LumpKind, iterate: bool) -> Result<String, String> {
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let (result, rounds) = run_lump(&mrp, kind, iterate)?;
    let mut out = String::new();
    writeln!(
        out,
        "{:?} lumping: {} -> {} states (x{:.2}) in {:?} ({} round{})",
        kind,
        result.stats.original_states,
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        result.stats.elapsed,
        rounds,
        if rounds == 1 { "" } else { "s" },
    )
    .unwrap();
    for (l, stats) in result.stats.per_level.iter().enumerate() {
        writeln!(
            out,
            "  level {} ({}): {} -> {} local states",
            l + 1,
            parsed.component_names[l],
            stats.original_size,
            stats.lumped_size
        )
        .unwrap();
    }
    writeln!(
        out,
        "  symbolic memory: {} -> {} bytes",
        result.stats.memory_before, result.stats.memory_after
    )
    .unwrap();
    Ok(out)
}

/// `solve`: lump, solve the lumped chain, report the measure (with a
/// cross-check against the unlumped chain when it is small enough).
///
/// # Errors
///
/// Propagates build, lumping and solver errors as strings.
pub fn solve(
    parsed: &ParsedModel,
    kind: LumpKind,
    measure: Measure,
    cross_check_limit: usize,
    kernel: &KernelOptions,
) -> Result<String, String> {
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let (result, _) = run_lump(&mrp, kind, false)?;
    let mut out = String::new();
    writeln!(
        out,
        "lumped {} -> {} states; solving the lumped chain",
        result.stats.original_states, result.stats.lumped_states
    )
    .unwrap();

    let sopts = SolverOptions {
        tolerance: 1e-12,
        ..SolverOptions::default()
    };
    let topts = TransientOptions::default();
    let lumped_value = match (kind, measure) {
        (LumpKind::Ordinary, Measure::Stationary) => result
            .mrp
            .expected_stationary_reward_with(&sopts, kernel)
            .map_err(|e| e.to_string())?,
        (LumpKind::Ordinary, Measure::Transient(t)) => result
            .mrp
            .expected_transient_reward_with(t, &topts, kernel)
            .map_err(|e| e.to_string())?,
        (LumpKind::Ordinary, Measure::Accumulated(t)) => result
            .mrp
            .expected_accumulated_reward_with(t, &topts, kernel)
            .map_err(|e| e.to_string())?,
        (LumpKind::Exact, m) => {
            let measures = result.exact_measures().expect("exact lump has exit rates");
            match m {
                Measure::Stationary => measures
                    .expected_stationary_reward(&sopts)
                    .map_err(|e| e.to_string())?,
                Measure::Transient(t) => measures
                    .expected_transient_reward(t, &topts)
                    .map_err(|e| e.to_string())?,
                Measure::Accumulated(t) => measures
                    .expected_accumulated_reward(t, &topts)
                    .map_err(|e| e.to_string())?,
            }
        }
    };
    writeln!(out, "measure ({measure:?}): {lumped_value:.10}").unwrap();

    if mrp.num_states() <= cross_check_limit {
        let full_value = match measure {
            Measure::Stationary => mrp
                .expected_stationary_reward_with(&sopts, kernel)
                .map_err(|e| e.to_string())?,
            Measure::Transient(t) => mrp
                .expected_transient_reward_with(t, &topts, kernel)
                .map_err(|e| e.to_string())?,
            Measure::Accumulated(t) => mrp
                .expected_accumulated_reward_with(t, &topts, kernel)
                .map_err(|e| e.to_string())?,
        };
        writeln!(
            out,
            "cross-check (unlumped chain): {full_value:.10}  |Δ| = {:.3e}",
            (full_value - lumped_value).abs()
        )
        .unwrap();
    }
    Ok(out)
}

/// `simulate`: Monte Carlo estimate of the stationary (or accumulated)
/// reward, cross-checked against the lumped numerical solution — the
/// simulator shares only the model semantics with the symbolic stack, so
/// agreement validates the whole pipeline.
///
/// # Errors
///
/// Propagates build, lumping and solver errors as strings.
pub fn simulate(
    parsed: &ParsedModel,
    horizon: f64,
    replications: usize,
    seed: u64,
) -> Result<String, String> {
    use mdl_models::sim::SimOptions;
    let options = SimOptions { seed, replications };
    let mut out = String::new();

    let est = parsed
        .model
        .simulate_stationary_reward(&parsed.reward, horizon, &options);
    writeln!(
        out,
        "simulated long-run reward: {:.6} ± {:.6} ({} batches of length {horizon})",
        est.mean, est.std_error, est.replications
    )
    .unwrap();

    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let (result, _) = run_lump(&mrp, LumpKind::Ordinary, false)?;
    let numerical = result
        .mrp
        .expected_stationary_reward(&SolverOptions::default())
        .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "numerical (lumped {} -> {} states): {numerical:.10}",
        result.stats.original_states, result.stats.lumped_states
    )
    .unwrap();
    writeln!(
        out,
        "|simulated − numerical| = {:.3e} ({:.1} standard errors)",
        (est.mean - numerical).abs(),
        (est.mean - numerical).abs() / est.std_error.max(1e-300)
    )
    .unwrap();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;

    const MODEL: &str = "
component ctrl 2 initial 0
component workers 8

event toggle rate 0.2
  factor ctrl 0 1 1.0
  factor ctrl 1 0 1.0

event start rate 2.0
  factor ctrl 0 0 1.0
  factor workers 0 1 1.0
  factor workers 0 2 1.0
  factor workers 0 4 1.0
  factor workers 1 3 1.0
  factor workers 1 5 1.0
  factor workers 2 3 1.0
  factor workers 2 6 1.0
  factor workers 4 5 1.0
  factor workers 4 6 1.0
  factor workers 3 7 1.0
  factor workers 5 7 1.0
  factor workers 6 7 1.0

event finish rate 1.0
  factor workers 1 0 1.0
  factor workers 2 0 1.0
  factor workers 4 0 1.0
  factor workers 3 1 1.0
  factor workers 3 2 1.0
  factor workers 5 1 1.0
  factor workers 5 4 1.0
  factor workers 6 2 1.0
  factor workers 6 4 1.0
  factor workers 7 3 1.0
  factor workers 7 5 1.0
  factor workers 7 6 1.0

reward sum
  value workers 1 1.0
  value workers 2 1.0
  value workers 4 1.0
  value workers 3 2.0
  value workers 5 2.0
  value workers 6 2.0
  value workers 7 3.0
";

    #[test]
    fn info_reports_structure() {
        let parsed = parse_model(MODEL).unwrap();
        let out = info(&parsed).unwrap();
        assert!(out.contains("ctrl"));
        assert!(out.contains("reachable"));
    }

    #[test]
    fn lump_finds_worker_bit_symmetry() {
        let parsed = parse_model(MODEL).unwrap();
        let out = lump(&parsed, LumpKind::Ordinary, false).unwrap();
        // The 8 worker bitmask states lump to 4 counts: 2×8 -> 2×4.
        assert!(out.contains("16 -> 8 states"), "{out}");
    }

    #[test]
    fn solve_reports_measure_and_cross_check() {
        let parsed = parse_model(MODEL).unwrap();
        let out = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
        )
        .unwrap();
        assert!(out.contains("cross-check"), "{out}");
        assert!(out.contains("measure"), "{out}");
        // |Δ| printed in scientific notation and tiny.
        assert!(out.contains("e-"), "{out}");
    }

    #[test]
    fn solve_output_identical_across_kernels() {
        use mdl_core::{KernelKind, KernelOptions};
        let parsed = parse_model(MODEL).unwrap();
        let walk = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions {
                kind: KernelKind::Walk,
                threads: 1,
            },
        )
        .unwrap();
        for threads in [1usize, 4] {
            let compiled = solve(
                &parsed,
                LumpKind::Ordinary,
                Measure::Stationary,
                1_000,
                &KernelOptions {
                    kind: KernelKind::Compiled,
                    threads,
                },
            )
            .unwrap();
            assert_eq!(walk, compiled, "kernel products are bit-identical");
        }
    }

    #[test]
    fn simulate_agrees_with_numerical() {
        let parsed = parse_model(MODEL).unwrap();
        let out = simulate(&parsed, 50.0, 30, 99).unwrap();
        assert!(out.contains("simulated long-run reward"), "{out}");
        assert!(out.contains("numerical"), "{out}");
        // The report itself contains the discrepancy in standard errors;
        // parse it back out and require statistical agreement.
        let se_line = out.lines().find(|l| l.contains("standard errors")).unwrap();
        let inside = se_line.split('(').nth(1).unwrap();
        let ses: f64 = inside.split_whitespace().next().unwrap().parse().unwrap();
        assert!(
            ses < 6.0,
            "simulation {ses} standard errors away:
{out}"
        );
    }

    #[test]
    fn solve_transient_and_accumulated() {
        let parsed = parse_model(MODEL).unwrap();
        for m in [Measure::Transient(1.5), Measure::Accumulated(3.0)] {
            let out = solve(
                &parsed,
                LumpKind::Ordinary,
                m,
                1_000,
                &KernelOptions::default(),
            )
            .unwrap();
            assert!(out.contains("measure"), "{out}");
        }
    }
}
