//! Implementations of the `info`, `lump` and `solve` subcommands; `main`
//! only parses arguments and prints.

use std::fmt::Write as _;
use std::time::Duration;

use mdl_core::{
    CoreError, KernelKind, KernelOptions, LumpKind, LumpRequest, LumpResult, MdMrp, Pipeline,
    SolveOutcome, SolveRequest, Staged,
};
use mdl_ctmc::{BoundsOptions, RunReport, SolverOptions, TransientOptions};
use mdl_linalg::{Interval, Tolerance};
use mdl_obs::Budget;

use crate::error::CliError;
use crate::flags::ResilienceFlags;
use crate::parser::ParsedModel;

/// The wall-clock budget for a command: a deadline when one was given on
/// the command line, unlimited otherwise.
fn budget_for(deadline: Option<Duration>) -> Budget {
    match deadline {
        Some(d) => Budget::unlimited().deadline_in(d),
        None => Budget::unlimited(),
    }
}

/// Which measure `solve` computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Steady-state expected reward.
    Stationary,
    /// Expected reward at time `t`.
    Transient(f64),
    /// Expected reward accumulated over `[0, t]`.
    Accumulated(f64),
}

/// Everything `solve` needs from the staged pipeline: the engine itself
/// (with or without an attached artifact store) plus the
/// checkpoint/resume options riding on its store.
#[derive(Debug, Clone)]
pub struct SolveSetup {
    /// The staged pipeline the solve runs through.
    pub pipeline: Pipeline,
    /// `Some(n)`: snapshot long solves into the pipeline's store every
    /// `n` iterations (stationary) or uniformization steps (transient).
    pub checkpoint_every: Option<usize>,
    /// Resume from the snapshot of a previous interrupted run, when one
    /// exists under the solve's key.
    pub resume: bool,
    /// The lumping comparison tolerance (`--tolerance exact|N`): how
    /// close rates must be to be grouped. The default, nine decimal
    /// digits, absorbs only floating-point noise; looser settings lump
    /// near-symmetric models and `--bounds` certifies the consequences.
    pub tolerance: Tolerance,
}

impl SolveSetup {
    /// A setup without persistence: every stage computes, checkpointing
    /// is off, the lump tolerance is the library default.
    pub fn ephemeral(model_key: u64) -> Self {
        SolveSetup {
            pipeline: Pipeline::new(model_key),
            checkpoint_every: None,
            resume: false,
            tolerance: Tolerance::default(),
        }
    }
}

/// Runs the pipeline's build stage for the parsed model, carrying
/// model-layer failures through as [`CoreError::Build`] (whose `Display`
/// is the original message, so CLI output is unchanged).
fn build_stage(pipeline: &Pipeline, parsed: &ParsedModel) -> Result<Staged<MdMrp>, CliError> {
    pipeline
        .build(|| {
            parsed.build().map_err(|e| match e {
                mdl_models::ModelError::Core(c) => c,
                other => CoreError::Build {
                    detail: other.to_string(),
                },
            })
        })
        .map_err(CliError::from)
}

/// The stationary-solver options every `solve` path shares.
fn solver_options(budget: &Budget) -> SolverOptions {
    SolverOptions {
        tolerance: 1e-12,
        budget: budget.clone(),
        ..SolverOptions::default()
    }
}

/// The uniformization options every `solve` path shares.
fn transient_options(budget: &Budget) -> TransientOptions {
    TransientOptions {
        budget: budget.clone(),
        ..TransientOptions::default()
    }
}

/// The single scalar a measure stage stored. Defensive rather than
/// indexed: a damaged cache must never panic the CLI.
fn scalar(values: &[f64]) -> Result<f64, CliError> {
    values
        .first()
        .copied()
        .ok_or_else(|| CliError::Failed("cached measure artifact is empty".into()))
}

/// `info`: structural description of the model and its symbolic
/// representation.
///
/// # Errors
///
/// Propagates build errors as [`CliError`]s.
pub fn info(parsed: &ParsedModel) -> Result<String, CliError> {
    let mut out = String::new();
    let sizes = parsed.model.sizes();
    writeln!(out, "components ({} levels):", sizes.len())?;
    for (name, size) in parsed.component_names.iter().zip(&sizes) {
        writeln!(out, "  {name:<20} {size} local states")?;
    }
    writeln!(out, "events: {}", parsed.model.events().len())?;
    for e in parsed.model.events() {
        let touched: Vec<&str> = e
            .factors
            .iter()
            .zip(&parsed.component_names)
            .filter_map(|(f, n)| f.as_ref().map(|_| n.as_str()))
            .collect();
        writeln!(
            out,
            "  {:<20} rate {:<8} touches {}",
            e.name,
            e.rate,
            touched.join(", ")
        )?;
    }
    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let product: u64 = sizes.iter().map(|&s| s as u64).product();
    writeln!(out, "state space:")?;
    writeln!(out, "  potential (product): {product}")?;
    writeln!(out, "  reachable:           {}", mrp.num_states())?;
    writeln!(
        out,
        "  MD nodes per level:  {:?}",
        mrp.matrix().md().nodes_per_level()
    )?;
    writeln!(
        out,
        "  symbolic memory:     {} bytes",
        mrp.matrix().memory_bytes()
    )?;
    Ok(out)
}

fn run_lump(
    mrp: &MdMrp,
    kind: LumpKind,
    iterate: bool,
    budget: &Budget,
    threads: usize,
) -> Result<LumpResult, CliError> {
    LumpRequest::new(kind)
        .threads(threads)
        .budget(budget.clone())
        .iterate(iterate)
        .run(mrp)
        .map_err(CliError::from)
}

/// `lump`: run compositional lumping and report the reduction. Both
/// stages (build, lump) go through `pipeline`, so with a cache directory
/// a repeated lump is two artifact loads.
///
/// # Errors
///
/// Propagates build and lumping errors as [`CliError`]s; a `deadline`
/// that expires mid-lump surfaces as [`CliError::Interrupted`].
pub fn lump(
    parsed: &ParsedModel,
    kind: LumpKind,
    tolerance: Tolerance,
    iterate: bool,
    deadline: Option<Duration>,
    threads: usize,
    pipeline: &Pipeline,
) -> Result<String, CliError> {
    let built = build_stage(pipeline, parsed)?;
    let request = LumpRequest::new(kind)
        .tolerance(tolerance)
        .threads(threads)
        .budget(budget_for(deadline))
        .iterate(iterate);
    let result = &pipeline
        .lump(&built, &request)
        .map_err(CliError::from)?
        .value;
    let rounds = result.stats.rounds;
    let mut out = String::new();
    writeln!(
        out,
        "{:?} lumping: {} -> {} states (x{:.2}) in {:?} ({} round{})",
        kind,
        result.stats.original_states,
        result.stats.lumped_states,
        result.stats.reduction_factor(),
        result.stats.elapsed,
        rounds,
        if rounds == 1 { "" } else { "s" },
    )?;
    for (l, stats) in result.stats.per_level.iter().enumerate() {
        writeln!(
            out,
            "  level {} ({}): {} -> {} local states",
            l + 1,
            parsed.component_names[l],
            stats.original_size,
            stats.lumped_size
        )?;
    }
    writeln!(
        out,
        "  symbolic memory: {} -> {} bytes",
        result.stats.memory_before, result.stats.memory_after
    )?;
    Ok(out)
}

/// The [`SolveRequest`] for `measure` with the shared CLI options
/// applied (fallback still off — callers enable it when asked to).
fn request_for(
    measure: Measure,
    sopts: &SolverOptions,
    topts: &TransientOptions,
    kernel: &KernelOptions,
) -> SolveRequest {
    let request = match measure {
        Measure::Stationary => SolveRequest::stationary(),
        Measure::Transient(t) => SolveRequest::transient(t),
        Measure::Accumulated(t) => SolveRequest::accumulated_reward(t),
    };
    request
        .solver_options(sopts.clone())
        .transient_options(topts.clone())
        .kernel(kernel.kind)
        .threads(kernel.threads)
}

/// The expected reward a solve outcome denotes: the scalar itself, or
/// the distribution dotted with `mrp`'s reward vector.
fn expected_reward(mrp: &MdMrp, outcome: SolveOutcome) -> Result<f64, CliError> {
    match outcome {
        SolveOutcome::Distribution(sol) => Ok(sol.try_expected_reward(&mrp.reward_vector())?),
        SolveOutcome::Value(v) => Ok(v),
    }
}

/// Solves the measure on an exact lump through its embedded exit-rate
/// measures (the exact path has no kernel or fallback ladder), cached as
/// a measure stage under the lump's key.
fn solve_exact(
    pipeline: &Pipeline,
    lumped: &Staged<LumpResult>,
    measure: Measure,
    budget: &Budget,
) -> Result<f64, CliError> {
    let label = format!("exact:{measure:?}");
    let staged = pipeline
        .measure(lumped.key, &label, || {
            let measures = lumped
                .value
                .exact_measures()
                .expect("exact lump has exit rates");
            let sopts = solver_options(budget);
            let topts = transient_options(budget);
            let value = match measure {
                Measure::Stationary => measures.expected_stationary_reward(&sopts)?,
                Measure::Transient(t) => measures.expected_transient_reward(t, &topts)?,
                Measure::Accumulated(t) => measures.expected_accumulated_reward(t, &topts)?,
            };
            Ok(vec![value])
        })
        .map_err(CliError::from)?;
    scalar(&staged.value)
}

/// Cross-checks the lumped measure against the unlumped chain, cached as
/// a measure stage under the build key so a warm run skips the (much
/// larger) unlumped solve too.
fn cross_check(
    pipeline: &Pipeline,
    built: &Staged<MdMrp>,
    measure: Measure,
    kernel: &KernelOptions,
    budget: &Budget,
) -> Result<f64, CliError> {
    let label = format!("cross-check:{measure:?}");
    let staged = pipeline
        .measure(built.key, &label, || {
            let sopts = solver_options(budget);
            let topts = transient_options(budget);
            let (outcome, _) = request_for(measure, &sopts, &topts, kernel).run(&built.value);
            let value = match outcome? {
                SolveOutcome::Distribution(sol) => {
                    sol.try_expected_reward(&built.value.reward_vector())?
                }
                SolveOutcome::Value(v) => v,
            };
            Ok(vec![value])
        })
        .map_err(CliError::from)?;
    scalar(&staged.value)
}

/// `solve`: run the staged pipeline — build, lump, compile the kernel,
/// solve the lumped chain, report the measure (with a cross-check
/// against the unlumped chain when it is small enough). With a cache
/// directory every stage persists its artifacts and a repeated solve is
/// pure cache hits.
///
/// With `--fallback` the lumped chain solves through the resilient
/// `(method, kernel)` ladder; `--report` appends the per-attempt log;
/// `--deadline` bounds the whole run (lump, compile, solve,
/// cross-check). `setup` carries the pipeline plus checkpoint/resume:
/// with `checkpoint_every`, stationary and transient solves snapshot
/// their iterate into the store, and with `resume` an interrupted solve
/// continues from its snapshot (the snapshot is cleared on success).
///
/// # Errors
///
/// Propagates build, lumping and solver errors as [`CliError`]s; budget
/// interruptions surface as [`CliError::Interrupted`].
pub fn solve(
    parsed: &ParsedModel,
    kind: LumpKind,
    measure: Measure,
    cross_check_limit: usize,
    kernel: &KernelOptions,
    resilience: &ResilienceFlags,
    setup: &SolveSetup,
) -> Result<String, CliError> {
    let pipeline = &setup.pipeline;
    let budget = resilience.budget();
    let built = build_stage(pipeline, parsed)?;
    let lump_request = LumpRequest::new(kind)
        .tolerance(setup.tolerance)
        .threads(kernel.threads)
        .budget(budget.clone());
    let lumped = pipeline
        .lump(&built, &lump_request)
        .map_err(CliError::from)?;
    let mut out = String::new();
    writeln!(
        out,
        "lumped {} -> {} states; solving the lumped chain",
        lumped.value.stats.original_states, lumped.value.stats.lumped_states
    )?;

    let (lumped_value, report) = if kind == LumpKind::Exact {
        (solve_exact(pipeline, &lumped, measure, &budget)?, None)
    } else {
        // The lumped MRP re-staged under the lump key: the input to the
        // kernel-compile and solve stages.
        let lumped_mrp = Staged {
            value: lumped.value.mrp.clone(),
            key: lumped.key,
            cached: lumped.cached,
        };
        let mut sopts = solver_options(&budget);
        let mut topts = transient_options(&budget);
        // The solve key ignores checkpoint sinks, warm starts and
        // prebuilt kernels, so it can be derived before they are wired.
        let base = request_for(measure, &sopts, &topts, kernel).fallback(resilience.fallback);
        let solve_key = pipeline.solve_key(lumped_mrp.key, &base);
        if let Some(every) = setup.checkpoint_every {
            match measure {
                Measure::Stationary => {
                    sopts.checkpoint = pipeline.stationary_checkpoint_sink(solve_key, every);
                }
                Measure::Transient(_) => {
                    topts.checkpoint = pipeline.transient_checkpoint_sink(solve_key, every);
                }
                // The accumulated-reward scalar has no snapshot form.
                Measure::Accumulated(_) => {}
            }
        }
        if setup.resume {
            if let Some(ck) = pipeline.load_checkpoint(solve_key) {
                writeln!(
                    out,
                    "resuming from checkpoint ({} iterations in)",
                    ck.iterations
                )?;
                match measure {
                    Measure::Stationary => sopts.warm_start = Some(ck.iterate),
                    Measure::Transient(_) => {
                        topts.resume_from = mdl_core::transient_resume(&ck);
                    }
                    Measure::Accumulated(_) => {}
                }
            }
        }

        // Compile (or restore) the kernel whenever a compiled product
        // may run. A compile failure under --fallback is not fatal — the
        // ladder degrades through the walk and flat-CSR rungs.
        let wants_kernel = kernel.kind == KernelKind::Compiled || resilience.fallback;
        let prebuilt = if wants_kernel {
            match pipeline.compile(&lumped_mrp, kernel.threads, &budget) {
                Ok(staged) => Some(staged.value),
                Err(_) if resilience.fallback => {
                    mdl_obs::counter("pipeline.compile.failed").inc();
                    None
                }
                Err(e) => return Err(e.into()),
            }
        } else {
            None
        };
        let mut request =
            request_for(measure, &sopts, &topts, kernel).fallback(resilience.fallback);
        if let Some(k) = prebuilt {
            request = request.prebuilt_kernel(k);
        }
        let (outcome, run_report) = pipeline.solve(&lumped_mrp, &request);
        let staged = outcome.map_err(CliError::from)?;
        let value = expected_reward(&lumped_mrp.value, staged.value)?;
        // The solve finished: its checkpoint (if any) must not be
        // replayed by a later --resume.
        if setup.checkpoint_every.is_some() || setup.resume {
            pipeline
                .clear_checkpoint(solve_key)
                .map_err(CliError::from)?;
        }
        (value, resilience.fallback.then_some(run_report))
    };
    writeln!(out, "measure ({measure:?}): {lumped_value:.10}")?;
    if resilience.report {
        writeln!(
            out,
            "max rate deviation absorbed by lumping: {:.3e}",
            lumped.value.stats.max_rate_deviation
        )?;
        match &report {
            Some(r) => out.push_str(&r.render()),
            None => writeln!(
                out,
                "no fallback ladder for this configuration; solved directly"
            )?,
        }
    }

    if built.value.num_states() <= cross_check_limit {
        let full_value = cross_check(pipeline, &built, measure, kernel, &budget)?;
        writeln!(
            out,
            "cross-check (unlumped chain): {full_value:.10}  |Δ| = {:.3e}",
            (full_value - lumped_value).abs()
        )?;
    }
    Ok(out)
}

/// The raw outcome of a certified-bounds computation, before any
/// formatting: what `solve --bounds` prints and what tests assert on
/// (the formatted interval loses the low-order bits the degenerate-path
/// bit-identity guarantee is about).
#[derive(Debug)]
pub struct CertifiedBounds {
    /// The tolerance lump whose quotient the sweeps ran on, carrying the
    /// rate envelope and `stats.max_rate_deviation`.
    pub lump: LumpResult,
    /// `true` when every transition lumped exactly: the envelope is
    /// empty, the credal box collapses to the single scalar chain, and
    /// `bounds` is the degenerate interval `[x, x]` of the scalar solve.
    pub degenerate: bool,
    /// The certified enclosure of the measure.
    pub bounds: Interval,
    /// Whether the sweeps reached their tolerance (always `true` on the
    /// degenerate path). Unconverged bounds are still certified, just
    /// looser than requested.
    pub converged: bool,
    /// The per-sweep attempt log.
    pub report: RunReport,
}

/// Computes a certified enclosure `[lo, hi]` of the measure under
/// tolerance lumping. The lump records a rate envelope — per lumped
/// transition, the hull of the member rates each stored coefficient
/// stands in for — and the enclosure is computed by lower/upper power
/// sweeps over the interval-weighted compiled kernel (outward-rounded
/// arithmetic end to end), so every CTMC whose rates lie inside the
/// envelope, including the unlumped chain, has its measure inside the
/// returned interval.
///
/// # Errors
///
/// Accumulated rewards are rejected (the certified sweeps cover
/// stationary and transient measures); lumping and solver failures
/// propagate as [`CliError`]s; an expired budget surfaces as
/// [`CliError::Interrupted`].
pub fn certified_bounds(
    mrp: &MdMrp,
    measure: Measure,
    tolerance: Tolerance,
    kernel: &KernelOptions,
    budget: &Budget,
) -> Result<CertifiedBounds, CliError> {
    let time_point = match measure {
        Measure::Stationary => None,
        Measure::Transient(t) => Some(t),
        Measure::Accumulated(_) => {
            return Err(CliError::Failed(
                "--bounds supports the stationary and --transient measures \
                 (accumulated rewards have no certified sweep)"
                    .into(),
            ))
        }
    };
    // Envelopes are not persisted (the lump cache stores only the
    // quotient), so the bounds path lumps directly: a single pass with
    // quasi-reduction off — the configuration whose `(level, node)`
    // keying the envelope certifies.
    let lump = LumpRequest::new(LumpKind::Ordinary)
        .tolerance(tolerance)
        .threads(kernel.threads)
        .budget(budget.clone())
        .run(mrp)
        .map_err(CliError::from)?;
    // A `--tolerance exact` run compares rates bitwise and records no
    // envelope: every merge was exact, so the bounds legitimately
    // degenerate. A missing envelope under any other tolerance is a bug.
    let empty_envelope = mdl_core::RateEnvelope::default();
    let envelope = match (&lump.envelope, tolerance) {
        (Some(env), _) => env,
        (None, Tolerance::Exact) => &empty_envelope,
        (None, _) => {
            return Err(CliError::Failed(
                "lump carried no rate envelope (internal error)".into(),
            ))
        }
    };

    if envelope.is_empty() {
        let sopts = solver_options(budget);
        let topts = transient_options(budget);
        let (outcome, report) = request_for(measure, &sopts, &topts, kernel).run(&lump.mrp);
        let value = expected_reward(&lump.mrp, outcome.map_err(CliError::from)?)?;
        return Ok(CertifiedBounds {
            degenerate: true,
            bounds: Interval::point(value),
            converged: true,
            report,
            lump,
        });
    }
    let ikernel = mdl_md::CompiledMdMatrix::<Interval>::compile_weighted(
        lump.mrp.matrix(),
        kernel.threads,
        budget,
        &|site| envelope.widen(site),
    )
    .map_err(|e| CliError::from(CoreError::Md(e)))?;
    let f = lump.mrp.reward_vector();
    let options = BoundsOptions {
        budget: budget.clone(),
        ..BoundsOptions::default()
    };
    let solution = match time_point {
        None => mdl_ctmc::stationary_bounds(&ikernel, &f, &options)?,
        Some(t) => {
            mdl_ctmc::transient_bounds(&ikernel, &lump.mrp.initial_vector(), &f, t, &options)?
        }
    };
    Ok(CertifiedBounds {
        degenerate: false,
        bounds: solution.bounds,
        converged: solution.stats.converged,
        report: solution.report,
        lump,
    })
}

/// `solve --bounds`: a certified enclosure `[lo, hi]` of the measure
/// under tolerance lumping (see [`certified_bounds`] for the
/// mathematics). When every transition lumped exactly the enclosure
/// degenerates to the scalar solve itself — `[x, x]`, bit-identical to
/// the plain `solve` path at any thread count.
///
/// # Errors
///
/// `--exact` and `--accumulated` are rejected (the certified sweeps
/// cover stationary and transient measures of the ordinary quotient);
/// build, lumping and solver failures propagate as [`CliError`]s; an
/// expired `--deadline` surfaces as [`CliError::Interrupted`].
pub fn solve_bounds(
    parsed: &ParsedModel,
    kind: LumpKind,
    measure: Measure,
    cross_check_limit: usize,
    kernel: &KernelOptions,
    resilience: &ResilienceFlags,
    setup: &SolveSetup,
) -> Result<String, CliError> {
    if kind == LumpKind::Exact {
        return Err(CliError::Failed(
            "--bounds encloses measures of the ordinary-lumped chain; --exact is not supported"
                .into(),
        ));
    }
    let pipeline = &setup.pipeline;
    let budget = resilience.budget();
    let built = build_stage(pipeline, parsed)?;
    let cb = certified_bounds(&built.value, measure, setup.tolerance, kernel, &budget)?;
    let mut out = String::new();
    writeln!(
        out,
        "lumped {} -> {} states; computing certified bounds on the lumped chain",
        cb.lump.stats.original_states, cb.lump.stats.lumped_states
    )?;
    writeln!(
        out,
        "max rate deviation absorbed by lumping: {:.3e}",
        cb.lump.stats.max_rate_deviation
    )?;
    if cb.degenerate {
        writeln!(
            out,
            "every transition lumped exactly; bounds degenerate to the scalar solve"
        )?;
    }
    if !cb.converged {
        writeln!(
            out,
            "sweeps stopped before the tolerance (bounds are certified but loose)"
        )?;
    }
    writeln!(
        out,
        "measure ({measure:?}): [{:.10}, {:.10}]  width {:.3e}",
        cb.bounds.lo,
        cb.bounds.hi,
        cb.bounds.hi - cb.bounds.lo
    )?;
    if resilience.report {
        out.push_str(&cb.report.render());
    }

    if built.value.num_states() <= cross_check_limit {
        let full_value = cross_check(pipeline, &built, measure, kernel, &budget)?;
        if cb.degenerate {
            // A zero-width interval is the scalar solve; the unlumped
            // solve differs from it by its own iteration tolerance, so
            // report the discrepancy like the plain solve path does
            // rather than a meaningless strict-enclosure verdict.
            writeln!(
                out,
                "cross-check (unlumped chain): {full_value:.10}  |Δ| = {:.3e}",
                (full_value - cb.bounds.lo).abs()
            )?;
        } else {
            let enclosed = cb.bounds.lo <= full_value && full_value <= cb.bounds.hi;
            writeln!(
                out,
                "cross-check (unlumped chain): {full_value:.10}  enclosed: {}",
                if enclosed { "yes" } else { "NO" }
            )?;
        }
    }
    Ok(out)
}

/// One JSONL row of the `--sweep-out` stream: the point's parameters,
/// its measure, and its reuse/warm-start provenance.
fn sweep_jsonl_row(r: &mdl_core::SweepPointResult, measure: f64) -> String {
    let mut params = String::from("{");
    for (i, (name, value)) in r.params.iter().enumerate() {
        if i > 0 {
            params.push(',');
        }
        params.push('"');
        mdl_obs::json::escape_into(&mut params, name);
        params.push_str("\":");
        mdl_obs::json::write_f64(&mut params, *value);
    }
    params.push('}');
    let mut row = mdl_obs::json::JsonObject::new();
    row.u64("point", r.index as u64)
        .raw("params", &params)
        .f64("measure", measure)
        .u64("lumped_states", r.lump.stats.lumped_states)
        .f64("max_rate_deviation", r.lump.stats.max_rate_deviation)
        .u64("levels_reused", r.levels_reused as u64)
        .u64("levels_relumped", r.levels_relumped as u64)
        .bool("warm_started", r.warm_started)
        .u64(
            "iterations",
            r.outcome
                .solution()
                .map(|s| s.stats.iterations as u64)
                .unwrap_or(0),
        )
        .bool("lump_cached", r.lump_cached)
        .bool("solve_cached", r.solve_cached)
        .f64("elapsed_ms", r.elapsed.as_secs_f64() * 1e3);
    row.close()
}

/// `sweep`: solve the stationary measure across a parameter grid,
/// compiling the model structure once. Reachability is computed a single
/// time (rates are positive, so the reach set is rate-invariant), levels
/// whose local matrices a point left unchanged reuse their partition
/// from earlier points, and each solve warm-starts from the nearest
/// already-solved neighbor. With a cache directory every per-point
/// artifact persists, so a repeated sweep is pure cache hits.
///
/// `axes` come from `--set name=lo:hi:count` flags (Cartesian product);
/// axis names must name events of the model. `sweep_out` streams one
/// JSON object per point to the given file.
///
/// # Errors
///
/// Propagates build, lumping and solver errors as [`CliError`]s; an
/// unknown event name and an unwritable `--sweep-out` file are explicit
/// failures; an expired `--deadline` surfaces as
/// [`CliError::Interrupted`].
pub fn sweep(
    parsed: &ParsedModel,
    axes: &[(String, Vec<f64>)],
    kernel: &KernelOptions,
    resilience: &ResilienceFlags,
    pipeline: &Pipeline,
    sweep_out: Option<&str>,
) -> Result<String, CliError> {
    if axes.is_empty() {
        return Err(CliError::Failed(
            "sweep needs at least one --set axis (e.g. --set mu=0.5:2.0:16)".into(),
        ));
    }
    for (name, _) in axes {
        if !parsed.model.events().iter().any(|e| &e.name == name) {
            let known: Vec<&str> = parsed
                .model
                .events()
                .iter()
                .map(|e| e.name.as_str())
                .collect();
            return Err(CliError::Failed(format!(
                "--set {name}: no event named {name:?} (events: {})",
                known.join(", ")
            )));
        }
    }

    let budget = resilience.budget();
    // Reachability once: every grid point shares it.
    let reach = parsed
        .model
        .reachable()
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let points = mdl_core::sweep_grid(axes);
    let request = mdl_core::SweepRequest::new(
        LumpRequest::new(LumpKind::Ordinary)
            .threads(kernel.threads)
            .budget(budget.clone()),
        SolveRequest::stationary()
            .solver_options(solver_options(&budget))
            .kernel(kernel.kind)
            .threads(kernel.threads)
            .fallback(resilience.fallback),
    )
    .compile_kernel(kernel.kind == KernelKind::Compiled || resilience.fallback)
    .threads(kernel.threads)
    .budget(budget);

    let outcome = pipeline
        .sweep(&points, &request, |point| {
            let mut model = parsed.model.clone();
            for (name, value) in &point.params {
                model.set_event_rate(name, *value).map_err(|e| match e {
                    mdl_models::ModelError::Core(c) => c,
                    other => CoreError::Build {
                        detail: other.to_string(),
                    },
                })?;
            }
            model
                .build_md_mrp_with_reach(parsed.reward.clone(), reach.clone())
                .map_err(|e| match e {
                    mdl_models::ModelError::Core(c) => c,
                    other => CoreError::Build {
                        detail: other.to_string(),
                    },
                })
        })
        .map_err(CliError::from)?;

    let mut out = String::new();
    let axis_names: Vec<&str> = axes.iter().map(|(n, _)| n.as_str()).collect();
    writeln!(
        out,
        "sweep: {} points over {} (reachability computed once)",
        points.len(),
        axis_names.join(" x ")
    )?;
    let mut rows = String::new();
    let mut warm_points = 0usize;
    for r in &outcome.points {
        let measure = expected_reward(&r.lump.mrp, r.outcome.clone())?;
        let params: Vec<String> = r
            .params
            .iter()
            .map(|(n, v)| format!("{n}={v:.6}"))
            .collect();
        writeln!(
            out,
            "  point {:<4} {}  measure {:.10}  lumped {:>6} states  reuse {}/{}{}{}",
            r.index,
            params.join(" "),
            measure,
            r.lump.stats.lumped_states,
            r.levels_reused,
            r.levels_reused + r.levels_relumped,
            if r.warm_started { "  warm" } else { "" },
            if r.lump_cached && r.solve_cached {
                "  cached"
            } else {
                ""
            },
        )?;
        if r.warm_started {
            warm_points += 1;
        }
        if sweep_out.is_some() {
            rows.push_str(&sweep_jsonl_row(r, measure));
            rows.push('\n');
        }
    }
    writeln!(
        out,
        "total: {} points in {:?}; levels reused {}, re-lumped {}; {} warm-started",
        outcome.points.len(),
        outcome.elapsed,
        outcome.levels_reused,
        outcome.levels_relumped,
        warm_points,
    )?;
    if let Some(path) = sweep_out {
        std::fs::write(path, rows)
            .map_err(|e| CliError::Failed(format!("--sweep-out: cannot write {path}: {e}")))?;
        writeln!(out, "per-point JSONL written to {path}")?;
    }
    Ok(out)
}

/// `simulate`: Monte Carlo estimate of the stationary (or accumulated)
/// reward, cross-checked against the lumped numerical solution — the
/// simulator shares only the model semantics with the symbolic stack, so
/// agreement validates the whole pipeline.
///
/// # Errors
///
/// Propagates build, lumping and solver errors as [`CliError`]s; a
/// `deadline` bounds the numerical cross-check (the simulation itself
/// runs a fixed number of replications).
pub fn simulate(
    parsed: &ParsedModel,
    horizon: f64,
    replications: usize,
    seed: u64,
    deadline: Option<Duration>,
) -> Result<String, CliError> {
    use mdl_models::sim::SimOptions;
    let options = SimOptions { seed, replications };
    let budget = budget_for(deadline);
    let mut out = String::new();

    let est = parsed
        .model
        .simulate_stationary_reward(&parsed.reward, horizon, &options);
    writeln!(
        out,
        "simulated long-run reward: {:.6} ± {:.6} ({} batches of length {horizon})",
        est.mean, est.std_error, est.replications
    )?;

    let mrp = parsed.build().map_err(|e| e.to_string())?;
    let result = run_lump(&mrp, LumpKind::Ordinary, false, &budget, 0)?;
    let numerical = result.mrp.expected_stationary_reward(&SolverOptions {
        budget,
        ..SolverOptions::default()
    })?;
    writeln!(
        out,
        "numerical (lumped {} -> {} states): {numerical:.10}",
        result.stats.original_states, result.stats.lumped_states
    )?;
    writeln!(
        out,
        "|simulated − numerical| = {:.3e} ({:.1} standard errors)",
        (est.mean - numerical).abs(),
        (est.mean - numerical).abs() / est.std_error.max(1e-300)
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;
    use mdl_core::model_source_key;

    /// The default ephemeral setup tests solve through.
    fn setup() -> SolveSetup {
        SolveSetup::ephemeral(model_source_key(MODEL))
    }

    /// A per-test cache directory under the system temp dir, cleaned
    /// before use so every run starts cold.
    fn cache_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mdl-cli-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const MODEL: &str = "
component ctrl 2 initial 0
component workers 8

event toggle rate 0.2
  factor ctrl 0 1 1.0
  factor ctrl 1 0 1.0

event start rate 2.0
  factor ctrl 0 0 1.0
  factor workers 0 1 1.0
  factor workers 0 2 1.0
  factor workers 0 4 1.0
  factor workers 1 3 1.0
  factor workers 1 5 1.0
  factor workers 2 3 1.0
  factor workers 2 6 1.0
  factor workers 4 5 1.0
  factor workers 4 6 1.0
  factor workers 3 7 1.0
  factor workers 5 7 1.0
  factor workers 6 7 1.0

event finish rate 1.0
  factor workers 1 0 1.0
  factor workers 2 0 1.0
  factor workers 4 0 1.0
  factor workers 3 1 1.0
  factor workers 3 2 1.0
  factor workers 5 1 1.0
  factor workers 5 4 1.0
  factor workers 6 2 1.0
  factor workers 6 4 1.0
  factor workers 7 3 1.0
  factor workers 7 5 1.0
  factor workers 7 6 1.0

reward sum
  value workers 1 1.0
  value workers 2 1.0
  value workers 4 1.0
  value workers 3 2.0
  value workers 5 2.0
  value workers 6 2.0
  value workers 7 3.0
";

    /// `MODEL` with one `finish` factor nudged by one part in a
    /// thousand: no longer exactly lumpable, but tolerance-lumpable at
    /// two decimal digits — the configuration `--bounds` exists for.
    const NEAR_MODEL: &str = "
component ctrl 2 initial 0
component workers 8

event toggle rate 0.2
  factor ctrl 0 1 1.0
  factor ctrl 1 0 1.0

event start rate 2.0
  factor ctrl 0 0 1.0
  factor workers 0 1 1.0
  factor workers 0 2 1.0
  factor workers 0 4 1.0
  factor workers 1 3 1.0
  factor workers 1 5 1.0
  factor workers 2 3 1.0
  factor workers 2 6 1.0
  factor workers 4 5 1.0
  factor workers 4 6 1.0
  factor workers 3 7 1.0
  factor workers 5 7 1.0
  factor workers 6 7 1.0

event finish rate 1.0
  factor workers 1 0 1.001
  factor workers 2 0 1.0
  factor workers 4 0 1.0
  factor workers 3 1 1.0
  factor workers 3 2 1.0
  factor workers 5 1 1.0
  factor workers 5 4 1.0
  factor workers 6 2 1.0
  factor workers 6 4 1.0
  factor workers 7 3 1.0
  factor workers 7 5 1.0
  factor workers 7 6 1.0

reward sum
  value workers 1 1.0
  value workers 2 1.0
  value workers 4 1.0
  value workers 3 2.0
  value workers 5 2.0
  value workers 6 2.0
  value workers 7 3.0
";

    /// The `MODEL` structure with every event rate substituted: the
    /// worker bits keep identical rates by construction, so every draw
    /// is exactly lumpable.
    fn symmetric_model(toggle: f64, start: f64, finish: f64) -> String {
        MODEL
            .replace("rate 0.2", &format!("rate {toggle}"))
            .replace("rate 2.0", &format!("rate {start}"))
            .replace("rate 1.0", &format!("rate {finish}"))
    }

    #[test]
    fn info_reports_structure() {
        let parsed = parse_model(MODEL).unwrap();
        let out = info(&parsed).unwrap();
        assert!(out.contains("ctrl"));
        assert!(out.contains("reachable"));
    }

    #[test]
    fn lump_finds_worker_bit_symmetry() {
        let parsed = parse_model(MODEL).unwrap();
        let out = lump(
            &parsed,
            LumpKind::Ordinary,
            Tolerance::default(),
            false,
            None,
            0,
            &setup().pipeline,
        )
        .unwrap();
        // The 8 worker bitmask states lump to 4 counts: 2×8 -> 2×4.
        assert!(out.contains("16 -> 8 states"), "{out}");
    }

    #[test]
    fn solve_reports_measure_and_cross_check() {
        let parsed = parse_model(MODEL).unwrap();
        let out = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap();
        assert!(out.contains("cross-check"), "{out}");
        assert!(out.contains("measure"), "{out}");
        // |Δ| printed in scientific notation and tiny.
        assert!(out.contains("e-"), "{out}");
    }

    #[test]
    fn solve_output_identical_across_kernels() {
        use mdl_core::{KernelKind, KernelOptions};
        let parsed = parse_model(MODEL).unwrap();
        let walk = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions {
                kind: KernelKind::Walk,
                threads: 1,
            },
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap();
        for threads in [1usize, 4] {
            let compiled = solve(
                &parsed,
                LumpKind::Ordinary,
                Measure::Stationary,
                1_000,
                &KernelOptions {
                    kind: KernelKind::Compiled,
                    threads,
                },
                &ResilienceFlags::default(),
                &setup(),
            )
            .unwrap();
            assert_eq!(walk, compiled, "kernel products are bit-identical");
        }
    }

    #[test]
    fn solve_with_fallback_matches_direct_and_reports_attempts() {
        let parsed = parse_model(MODEL).unwrap();
        let direct = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap();
        let resilient = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags {
                fallback: true,
                report: true,
                deadline: None,
            },
            &setup(),
        )
        .unwrap();
        assert!(resilient.contains("solve attempts:"), "{resilient}");
        assert!(resilient.contains("jacobi"), "{resilient}");
        // Same measure line in both outputs.
        let measure_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("measure"))
                .map(String::from)
        };
        assert_eq!(measure_line(&direct), measure_line(&resilient));

        // The accumulated measure rides the kernel-rung ladder too and
        // reports its (synthesized) attempt log.
        let accumulated = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Accumulated(1.0),
            0,
            &KernelOptions::default(),
            &ResilienceFlags {
                fallback: true,
                report: true,
                deadline: None,
            },
            &setup(),
        )
        .unwrap();
        assert!(accumulated.contains("solve attempts:"), "{accumulated}");
        assert!(accumulated.contains("uniformization"), "{accumulated}");
    }

    #[test]
    fn expired_deadline_interrupts_with_distinct_error() {
        let parsed = parse_model(MODEL).unwrap();
        let err = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags {
                deadline: Some(Duration::ZERO),
                fallback: false,
                report: false,
            },
            &setup(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Interrupted(_)), "{err:?}");
        assert_eq!(err.exit_code(), crate::error::EXIT_INTERRUPTED);
        assert!(err.to_string().contains("interrupted"), "{err}");

        let err = lump(
            &parsed,
            LumpKind::Ordinary,
            Tolerance::default(),
            true,
            Some(Duration::ZERO),
            1,
            &setup().pipeline,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Interrupted(_)), "{err:?}");
    }

    #[test]
    fn warm_cache_solve_output_is_identical_and_all_stages_hit() {
        let _g = mdl_obs::testing::guard();
        let dir = cache_dir("warm-solve");
        let store = mdl_store::Store::open(&dir).unwrap();
        let parsed = parse_model(MODEL).unwrap();
        let warm_setup = || SolveSetup {
            pipeline: Pipeline::with_store(model_source_key(MODEL), store.clone()),
            checkpoint_every: None,
            resume: false,
            tolerance: Tolerance::default(),
        };
        let run = || {
            solve(
                &parsed,
                LumpKind::Ordinary,
                Measure::Stationary,
                1_000,
                &KernelOptions::default(),
                &ResilienceFlags::default(),
                &warm_setup(),
            )
            .unwrap()
        };
        let cold = run();

        mdl_obs::reset();
        mdl_obs::set_enabled(true);
        let warm = run();
        assert_eq!(cold, warm, "warm output must be byte-identical");
        let report = mdl_obs::snapshot();
        let count = |name: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        // Build, lump, compile, solve and the two measures (lumped value
        // is the solve stage; cross-check is a measure stage) all hit.
        assert!(count("store.hit") >= 5, "{report:?}");
        assert_eq!(count("store.miss"), 0, "{report:?}");
        assert_eq!(count("store.write_bytes"), 0, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_solve_writes_and_clears_its_snapshot() {
        let _g = mdl_obs::testing::guard();
        mdl_obs::set_enabled(true);
        let dir = cache_dir("checkpoint");
        let store = mdl_store::Store::open(&dir).unwrap();
        let parsed = parse_model(MODEL).unwrap();
        let setup = SolveSetup {
            pipeline: Pipeline::with_store(model_source_key(MODEL), store.clone()),
            checkpoint_every: Some(1),
            resume: true,
            tolerance: Tolerance::default(),
        };
        let out = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            0,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup,
        )
        .unwrap();
        assert!(out.contains("measure"), "{out}");
        // Snapshots were written during the run…
        let report = mdl_obs::snapshot();
        let written = report
            .counters
            .iter()
            .find(|c| c.name == "checkpoint.written")
            .map(|c| c.value)
            .unwrap_or(0);
        assert!(written >= 1, "{report:?}");
        // …and cleared on success, so nothing is left to resume.
        let base = mdl_core::SolveRequest::stationary()
            .solver_options(solver_options(&Budget::unlimited()));
        // Rebuild the solve key the same way solve() does.
        let built = build_stage(&setup.pipeline, &parsed).unwrap();
        let lumped = setup
            .pipeline
            .lump(&built, &LumpRequest::new(LumpKind::Ordinary))
            .unwrap();
        let solve_key = setup.pipeline.solve_key(lumped.key, &base);
        assert!(setup.pipeline.load_checkpoint(solve_key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_measures_match_independent_solves() {
        let parsed = parse_model(MODEL).unwrap();
        let axes = vec![("finish".to_string(), vec![0.5, 1.0, 2.0])];
        let out = sweep(
            &parsed,
            &axes,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup().pipeline,
            None,
        )
        .unwrap();
        assert!(out.contains("3 points"), "{out}");
        // The ctrl level never changes; finish touches only workers. So
        // points 1 and 2 reuse the ctrl partition.
        assert!(out.contains("reuse 1/2"), "{out}");
        assert!(out.contains("warm"), "{out}");
        // The finish=1.0 point is the base model: its measure must equal
        // the plain solve's measure line.
        let direct = solve(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            0,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap();
        let direct_measure = direct
            .lines()
            .find(|l| l.starts_with("measure"))
            .and_then(|l| l.split(": ").nth(1))
            .unwrap()
            .trim()
            .to_string();
        let base_point = out
            .lines()
            .find(|l| l.contains("finish=1.000000"))
            .unwrap_or_else(|| panic!("no base point line in {out}"));
        // Warm starts shift low-order bits, so compare to solver
        // tolerance rather than textually.
        let sweep_measure: f64 = base_point
            .split("measure ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let direct_measure: f64 = direct_measure.parse().unwrap();
        assert!(
            (sweep_measure - direct_measure).abs() < 1e-9,
            "{sweep_measure} vs {direct_measure}"
        );
    }

    #[test]
    fn sweep_writes_jsonl_and_rejects_unknown_events() {
        let parsed = parse_model(MODEL).unwrap();
        let err = sweep(
            &parsed,
            &[("nope".to_string(), vec![1.0])],
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup().pipeline,
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no event named"), "{err}");
        assert!(err.to_string().contains("toggle"), "{err}");
        let err = sweep(
            &parsed,
            &[],
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup().pipeline,
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--set"), "{err}");

        let path = std::env::temp_dir().join(format!("mdl-sweep-out-{}.jsonl", std::process::id()));
        let out = sweep(
            &parsed,
            &[("toggle".to_string(), vec![0.1, 0.2])],
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup().pipeline,
            Some(path.to_str().unwrap()),
        )
        .unwrap();
        assert!(out.contains("JSONL written"), "{out}");
        let rows = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = rows.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let row = mdl_obs::json::parse(line).unwrap();
            assert_eq!(row.get("point").unwrap().as_u64(), Some(i as u64));
            assert!(row.get("measure").unwrap().as_f64().is_some());
            assert!(row.get("params").unwrap().get("toggle").is_some());
            assert!(row.get("levels_reused").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn simulate_agrees_with_numerical() {
        let parsed = parse_model(MODEL).unwrap();
        let out = simulate(&parsed, 50.0, 30, 99, None).unwrap();
        assert!(out.contains("simulated long-run reward"), "{out}");
        assert!(out.contains("numerical"), "{out}");
        // The report itself contains the discrepancy in standard errors;
        // parse it back out and require statistical agreement.
        let se_line = out.lines().find(|l| l.contains("standard errors")).unwrap();
        let inside = se_line.split('(').nth(1).unwrap();
        let ses: f64 = inside.split_whitespace().next().unwrap().parse().unwrap();
        assert!(
            ses < 6.0,
            "simulation {ses} standard errors away:
{out}"
        );
    }

    #[test]
    fn bounds_reject_exact_and_accumulated() {
        let parsed = parse_model(MODEL).unwrap();
        let err = solve_bounds(
            &parsed,
            LumpKind::Exact,
            Measure::Stationary,
            0,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--exact"), "{err}");
        let err = solve_bounds(
            &parsed,
            LumpKind::Ordinary,
            Measure::Accumulated(1.0),
            0,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("certified sweep"), "{err}");
    }

    #[test]
    fn bounds_enclose_unlumped_measures_on_a_tolerance_lump() {
        let parsed = parse_model(NEAR_MODEL).unwrap();
        let mrp = parsed.build().unwrap();
        let kernel = KernelOptions::default();
        let budget = Budget::unlimited();
        for measure in [Measure::Stationary, Measure::Transient(0.8)] {
            let cb =
                certified_bounds(&mrp, measure, Tolerance::Decimals(2), &kernel, &budget).unwrap();
            assert!(!cb.degenerate, "perturbed rates must leave an envelope");
            assert!(
                cb.lump.stats.lumped_states < cb.lump.stats.original_states,
                "the near-symmetric model must still lump at 2 decimals"
            );
            assert!(cb.lump.stats.max_rate_deviation > 0.0);
            assert!(
                cb.bounds.hi > cb.bounds.lo,
                "an inexact lump must widen the enclosure"
            );
            // The certified interval encloses the *unlumped* chain's
            // measure — the acceptance property of the whole feature.
            let sopts = solver_options(&budget);
            let topts = transient_options(&budget);
            let (outcome, _) = request_for(measure, &sopts, &topts, &kernel).run(&mrp);
            let full = expected_reward(&mrp, outcome.unwrap()).unwrap();
            assert!(
                cb.bounds.lo <= full && full <= cb.bounds.hi,
                "{measure:?}: unlumped {full} outside [{}, {}]",
                cb.bounds.lo,
                cb.bounds.hi
            );
        }
    }

    #[test]
    fn solve_bounds_reports_enclosure_of_the_unlumped_chain() {
        let parsed = parse_model(NEAR_MODEL).unwrap();
        let setup = SolveSetup {
            tolerance: Tolerance::Decimals(2),
            ..SolveSetup::ephemeral(model_source_key(NEAR_MODEL))
        };
        let out = solve_bounds(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags {
                report: true,
                ..ResilienceFlags::default()
            },
            &setup,
        )
        .unwrap();
        assert!(out.contains("16 -> 8 states"), "{out}");
        assert!(out.contains("max rate deviation"), "{out}");
        assert!(out.contains("enclosed: yes"), "{out}");
        assert!(out.contains("width"), "{out}");
        assert!(
            out.contains("bounds-lower") && out.contains("bounds-upper"),
            "{out}"
        );
        assert!(!out.contains("degenerate"), "{out}");
    }

    #[test]
    fn solve_bounds_degenerates_on_the_exactly_lumpable_model() {
        let parsed = parse_model(MODEL).unwrap();
        let out = solve_bounds(
            &parsed,
            LumpKind::Ordinary,
            Measure::Stationary,
            1_000,
            &KernelOptions::default(),
            &ResilienceFlags::default(),
            &setup(),
        )
        .unwrap();
        assert!(out.contains("degenerate"), "{out}");
        assert!(out.contains("width 0.0"), "{out}");
        // The degenerate cross-check reports the scalar discrepancy
        // (solver-tolerance sized), not a strict-enclosure verdict.
        assert!(out.contains("|Δ|"), "{out}");
        assert!(!out.contains("enclosed"), "{out}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig { cases: 6, ..Default::default() })]
        /// The 0-ulp acceptance property: on an exactly lumpable model,
        /// `--bounds` returns a zero-width interval whose midpoint is
        /// bit-identical to the scalar solve, at every thread count.
        #[test]
        fn exact_lump_bounds_are_zero_width_and_bit_identical(
            toggle in 0.05f64..4.0,
            start in 0.05f64..4.0,
            finish in 0.05f64..4.0,
        ) {
            let text = symmetric_model(toggle, start, finish);
            let parsed = parse_model(&text).unwrap();
            let mrp = parsed.build().unwrap();
            let budget = Budget::unlimited();
            // The scalar reference: the plain solve path on the quotient.
            let lump = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
            let sopts = solver_options(&budget);
            let topts = transient_options(&budget);
            let reference = KernelOptions { kind: KernelKind::Compiled, threads: 1 };
            let (outcome, _) =
                request_for(Measure::Stationary, &sopts, &topts, &reference).run(&lump.mrp);
            let scalar = expected_reward(&lump.mrp, outcome.unwrap()).unwrap();
            for threads in [1usize, 2, 4] {
                let kernel = KernelOptions { kind: KernelKind::Compiled, threads };
                let cb = certified_bounds(
                    &mrp, Measure::Stationary, Tolerance::default(), &kernel, &budget,
                ).unwrap();
                proptest::prop_assert!(cb.degenerate, "symmetric draw must lump exactly");
                proptest::prop_assert_eq!(cb.bounds.lo.to_bits(), cb.bounds.hi.to_bits());
                proptest::prop_assert_eq!(
                    cb.bounds.lo.to_bits(),
                    scalar.to_bits(),
                    "threads {}: {} vs {}",
                    threads,
                    cb.bounds.lo,
                    scalar
                );
            }
        }
    }

    #[test]
    fn solve_transient_and_accumulated() {
        let parsed = parse_model(MODEL).unwrap();
        for m in [Measure::Transient(1.5), Measure::Accumulated(3.0)] {
            let out = solve(
                &parsed,
                LumpKind::Ordinary,
                m,
                1_000,
                &KernelOptions::default(),
                &ResilienceFlags::default(),
                &setup(),
            )
            .unwrap();
            assert!(out.contains("measure"), "{out}");
        }
    }
}
