//! `mdlump-cli` — parse a model file, lump its matrix diagram, solve for
//! measures.
//!
//! ```text
//! mdlump-cli info     <model-file>
//! mdlump-cli lump     <model-file> [--exact] [--iterate]
//! mdlump-cli solve    <model-file> [--exact] [--transient T | --accumulated T]
//! mdlump-cli simulate <model-file> [--horizon T] [--reps N] [--seed S]
//! ```

use std::process::ExitCode;

use mdl_cli::commands::{self, Measure};
use mdl_cli::parse_model;
use mdl_core::LumpKind;

fn usage() -> String {
    "usage:\n  mdlump-cli info     <model-file>\n  mdlump-cli lump     <model-file> [--exact] [--iterate]\n  mdlump-cli solve    <model-file> [--exact] [--transient T | --accumulated T]\n  mdlump-cli simulate <model-file> [--horizon T] [--reps N] [--seed S]\n\nsee the mdl-cli crate docs for the model file format"
        .to_string()
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, file) = match args.as_slice() {
        [c, f, ..] => (c.as_str(), f.as_str()),
        _ => return Err(usage()),
    };
    let flags = &args[2..];
    let kind = if flags.iter().any(|f| f == "--exact") {
        LumpKind::Exact
    } else {
        LumpKind::Ordinary
    };

    let input = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let parsed = parse_model(&input).map_err(|e| e.to_string())?;

    match command {
        "info" => commands::info(&parsed),
        "lump" => {
            let iterate = flags.iter().any(|f| f == "--iterate");
            commands::lump(&parsed, kind, iterate)
        }
        "solve" => {
            let value_of = |flag: &str| -> Result<Option<f64>, String> {
                match flags.iter().position(|f| f == flag) {
                    None => Ok(None),
                    Some(i) => flags
                        .get(i + 1)
                        .ok_or_else(|| format!("{flag} needs a time horizon"))?
                        .parse()
                        .map(Some)
                        .map_err(|_| format!("{flag}: bad time horizon")),
                }
            };
            let measure = match (value_of("--transient")?, value_of("--accumulated")?) {
                (Some(_), Some(_)) => {
                    return Err("choose one of --transient and --accumulated".into())
                }
                (Some(t), None) => Measure::Transient(t),
                (None, Some(t)) => Measure::Accumulated(t),
                (None, None) => Measure::Stationary,
            };
            commands::solve(&parsed, kind, measure, 200_000)
        }
        "simulate" => {
            let numeric = |flag: &str, default: f64| -> Result<f64, String> {
                match flags.iter().position(|f| f == flag) {
                    None => Ok(default),
                    Some(i) => flags
                        .get(i + 1)
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .parse()
                        .map_err(|_| format!("{flag}: bad value")),
                }
            };
            let horizon = numeric("--horizon", 100.0)?;
            let reps = numeric("--reps", 50.0)? as usize;
            let seed = numeric("--seed", 0x5EED as f64)? as u64;
            commands::simulate(&parsed, horizon, reps, seed)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
