//! `mdlump-cli` — parse a model file, lump its matrix diagram, solve for
//! measures.
//!
//! ```text
//! mdlump-cli info     <model-file>
//! mdlump-cli lump     <model-file> [--exact] [--iterate] [--tolerance exact|N]
//!                     [--threads N] [--deadline DUR]
//! mdlump-cli solve    <model-file> [--exact] [--transient T | --accumulated T]
//!                     [--bounds] [--tolerance exact|N]
//!                     [--kernel walk|compiled] [--threads N]
//!                     [--deadline DUR] [--fallback] [--report]
//!                     [--cache-dir DIR] [--checkpoint-every N] [--resume]
//! mdlump-cli sweep    <model-file> --set name=lo:hi:count [--set ...]
//!                     [--sweep-out FILE] [--kernel walk|compiled]
//!                     [--threads N] [--deadline DUR] [--fallback]
//!                     [--cache-dir DIR]
//! mdlump-cli simulate <model-file> [--horizon T] [--reps N] [--seed S]
//!                     [--deadline DUR]
//! ```
//!
//! All subcommands also take `--metrics pretty|json` (span events plus a
//! final counter/timing report), `--trace` (additionally stream span-start
//! and point events), `--metrics-out FILE` (write the stream to `FILE`
//! instead of stderr, keeping stdout for the command's own output),
//! `--profile` (an aggregated self-profile tree on stderr at exit) and
//! `--profile-out FILE` (a Chrome trace-event JSON timeline for
//! Perfetto / `chrome://tracing`).
//!
//! The metrics report, the profile tree and the trace file are written on
//! every exit path — a run that fails or blows its `--deadline` still
//! leaves complete telemetry behind, which is exactly when it is needed.
//!
//! Exit codes: `0` success, `1` failure, `2` a `--deadline` (or other
//! budget limit) interrupted the run.

use std::process::ExitCode;
use std::sync::Arc;

use mdl_cli::commands::{self, Measure};
use mdl_cli::error::CliError;
use mdl_cli::flags::{self, MetricsFormat, ObsFlags, ProfileFlags};
use mdl_cli::parse_model;
use mdl_core::LumpKind;
use mdl_obs::{JsonlSubscriber, PrettySubscriber};

/// The counting allocator wrapper: free (one relaxed load per
/// allocation) until `--profile`/`--profile-out` switch tracking on, at
/// which point every pipeline stage reports bytes allocated and the
/// heap high-water mark alongside wall time.
#[global_allocator]
static ALLOC: mdl_obs::CountingAllocator = mdl_obs::CountingAllocator;

fn usage() -> String {
    "usage:\n  mdlump-cli info     <model-file>\n  mdlump-cli lump     <model-file> [--exact] [--iterate] [--tolerance exact|N]\n                      [--threads N] [--deadline DUR] [--cache-dir DIR]\n  mdlump-cli solve    <model-file> [--exact] [--transient T | --accumulated T]\n                      [--bounds] [--tolerance exact|N]\n                      [--kernel walk|compiled] [--threads N]\n                      [--deadline DUR] [--fallback] [--report]\n                      [--cache-dir DIR] [--checkpoint-every N] [--resume]\n  mdlump-cli sweep    <model-file> --set name=lo:hi:count [--set ...]\n                      [--sweep-out FILE] [--kernel walk|compiled]\n                      [--threads N] [--deadline DUR] [--fallback]\n                      [--cache-dir DIR]\n  mdlump-cli simulate <model-file> [--horizon T] [--reps N] [--seed S]\n                      [--deadline DUR]\n\nparameter sweep:\n  --set name=lo:hi:count  sweep the named event's rate over an inclusive\n                          linspace (count >= 2 points), or name=value for\n                          a single point; repeat --set to sweep the\n                          Cartesian product of several axes; the\n                          structure compiles once, unchanged levels\n                          reuse their partition across points, and each\n                          stationary solve warm-starts from its nearest\n                          solved neighbor\n  --sweep-out FILE        write one JSON object per point to FILE\n                          (params, measure, lumped states, level reuse,\n                          warm start, iterations, timings)\n\nartifact cache (lump, solve and sweep):\n  --cache-dir DIR         content-addressed cache of every pipeline\n                          stage (build, lump, kernel compile, solve,\n                          measures): artifacts persist under keys\n                          derived from the model text and the\n                          result-relevant options, so a repeated run is\n                          pure cache hits (the MDL_CACHE environment\n                          variable supplies a default directory)\n  --checkpoint-every N    with a cache: snapshot long stationary /\n                          transient solves every N iterations so an\n                          interrupted run can continue\n  --resume                with a cache: continue an interrupted solve\n                          from its checkpoint (cleared on success)\n\nsolve kernel:\n  --kernel walk|compiled  iterate the recursive MD walk, or compile the\n                          MD\u{d7}MDD pair once into a flat kernel (default;\n                          bit-identical products, typically much faster)\n  --threads N             worker threads (at least 1) for compiled\n                          products and for the lump refinement's\n                          formal-sum key phase; the result is\n                          bit-identical for any count (omit the flag for\n                          one worker per hardware thread)\n\nlumping (lump and solve):\n  --tolerance exact|N     compare rates bit-for-bit (exact) or rounded\n                          to N decimal digits when grouping states\n                          (default 9, which absorbs only floating-point\n                          noise); looser tolerances lump near-symmetric\n                          models, trading exactness for reduction --\n                          pair with --bounds to certify the trade\n\ncertified bounds (solve):\n  --bounds                enclose the measure in a certified interval\n                          [lo, hi]: tolerance lumping records, per lumped\n                          transition, the hull of the member rates its\n                          coefficient stands in for, and lower/upper\n                          sweeps over that interval-weighted kernel\n                          (outward-rounded arithmetic throughout) bound\n                          every chain in the envelope -- including the\n                          unlumped one; an exactly lumpable model yields\n                          the degenerate interval [x, x] of the scalar\n                          solve (stationary and --transient measures)\n\nresilience:\n  --deadline DUR          wall-clock budget for the run (e.g. 250ms, 1.5s;\n                          bare numbers are seconds); an expired deadline\n                          exits with code 2 and an `interrupted` message\n  --fallback              solve through the resilient fallback ladder:\n                          jacobi/compiled -> power/compiled -> power/walk\n                          -> power/flat-csr (solve only; the ladder\n                          covers stationary and transient measures)\n  --report                with --fallback, append the per-attempt log to\n                          the output\n\nobservability (any subcommand):\n  --trace                 stream span/point events as they happen\n  --metrics pretty|json   emit spans and a final counter/timing report\n  --metrics-out FILE      write the stream to FILE instead of stderr\n  --profile               print an aggregated self-profile to stderr at\n                          exit: the span tree with call counts,\n                          inclusive/exclusive wall time and allocation\n                          deltas per stage (JSON with --metrics json)\n  --profile-out FILE      write the run's timeline as Chrome\n                          trace-event JSON to FILE; load it in Perfetto\n                          or chrome://tracing to see pipeline stages\n                          and worker threads on a zoomable time axis\n\nexit codes: 0 success, 1 failure, 2 deadline/budget interrupted\n\nsee the mdl-cli crate docs for the model file format"
        .to_string()
}

/// The configured metrics emitter: the subscriber receiving live events,
/// kept so the final report can be written to the same destination.
enum Emitter {
    Pretty(Arc<PrettySubscriber>),
    Json(Arc<JsonlSubscriber>),
}

impl Emitter {
    fn write_line(&self, line: &str) {
        match self {
            Emitter::Pretty(s) => s.write_line(line),
            Emitter::Json(s) => s.write_line(line),
        }
    }
}

/// Enables observability per `cfg` and attaches the requested emitter.
fn setup_obs(cfg: &ObsFlags) -> Result<Option<Emitter>, String> {
    if !cfg.active() {
        return Ok(None);
    }
    mdl_obs::set_enabled(true);
    if cfg.trace {
        mdl_obs::set_tracing(true);
    }
    let emitter = match (cfg.format(), cfg.out.as_deref()) {
        (MetricsFormat::Pretty, None) => Emitter::Pretty(Arc::new(PrettySubscriber::stderr())),
        (MetricsFormat::Pretty, Some(path)) => Emitter::Pretty(Arc::new(
            PrettySubscriber::to_file(path)
                .map_err(|e| format!("--metrics-out: cannot open {path}: {e}"))?,
        )),
        (MetricsFormat::Json, None) => Emitter::Json(Arc::new(JsonlSubscriber::stderr())),
        (MetricsFormat::Json, Some(path)) => Emitter::Json(Arc::new(
            JsonlSubscriber::to_file(path)
                .map_err(|e| format!("--metrics-out: cannot open {path}: {e}"))?,
        )),
    };
    match &emitter {
        Emitter::Pretty(s) => mdl_obs::add_subscriber(s.clone()),
        Emitter::Json(s) => mdl_obs::add_subscriber(s.clone()),
    }
    Ok(Some(emitter))
}

/// Writes the end-of-run counter/timing report to the emitter's
/// destination, in its format.
fn emit_report(emitter: &Emitter) {
    let report = mdl_obs::snapshot();
    if report.is_empty() {
        return;
    }
    let rendered = match emitter {
        Emitter::Pretty(_) => report.render_pretty(),
        Emitter::Json(_) => report.render_jsonl(),
    };
    for line in rendered.lines() {
        emitter.write_line(line);
    }
}

/// Everything configured before the command body runs, kept so the
/// teardown in [`main`] can write the final report and profile outputs
/// no matter how the command exits.
struct Session {
    emitter: Option<Emitter>,
    profile: ProfileFlags,
    json: bool,
}

/// Parses the observability/profiling flags and switches the requested
/// instrumentation on. Runs before the command body so that even a
/// run that fails while parsing its own flags tears down cleanly.
fn setup(flag_args: &[String]) -> Result<Session, String> {
    let obs_flags = flags::parse_obs_flags(flag_args)?;
    let profile = flags::parse_profile_flags(flag_args)?;
    let emitter = setup_obs(&obs_flags)?;
    if profile.active() {
        mdl_obs::set_profiling(true);
        mdl_obs::set_mem_tracking(true);
    }
    Ok(Session {
        emitter,
        profile,
        json: obs_flags.format() == MetricsFormat::Json,
    })
}

/// Writes the profile outputs (`--profile-out` trace file, `--profile`
/// tree on stderr). Called on every exit path.
fn write_profile_outputs(session: &Session) -> Result<(), String> {
    if !session.profile.active() {
        return Ok(());
    }
    let trace = mdl_obs::take_trace();
    if let Some(path) = &session.profile.out {
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| format!("--profile-out: cannot write {path}: {e}"))?;
    }
    if session.profile.profile {
        let tree = trace.profile();
        let rendered = if session.json {
            tree.to_json()
        } else {
            tree.render_pretty()
        };
        eprintln!("{}", rendered.trim_end());
        if mdl_obs::mem_tracking() {
            let m = mdl_obs::mem_stats();
            if session.json {
                eprintln!(
                    "{{\"type\":\"mem\",\"allocated_bytes\":{},\"alloc_calls\":{},\"peak_bytes\":{}}}",
                    m.allocated_bytes, m.alloc_calls, m.peak_bytes
                );
            } else {
                eprintln!(
                    "heap: {} allocated over {} calls, peak {}",
                    mdl_obs::fmt_bytes(m.allocated_bytes),
                    m.alloc_calls,
                    mdl_obs::fmt_bytes(m.peak_bytes)
                );
            }
        }
    }
    Ok(())
}

/// The staged pipeline for this invocation: keyed by the raw model text,
/// persistent when a cache directory is configured.
fn pipeline_for(pf: &flags::PipelineFlags, input: &str) -> Result<mdl_core::Pipeline, CliError> {
    let key = mdl_core::model_source_key(input);
    Ok(match &pf.cache_dir {
        None => mdl_core::Pipeline::new(key),
        Some(dir) => mdl_core::Pipeline::with_store(
            key,
            mdl_store::Store::open(dir)
                .map_err(|e| format!("cache directory {}: {e}", dir.display()))?,
        ),
    })
}

fn run(args: &[String]) -> Result<String, CliError> {
    let (command, file) = match args {
        [c, f, ..] => (c.as_str(), f.as_str()),
        _ => return Err(CliError::Failed(usage())),
    };
    let flag_args = &args[2..];
    let kind = if flag_args.iter().any(|f| f == "--exact") {
        LumpKind::Exact
    } else {
        LumpKind::Ordinary
    };

    let pipeline_flags = flags::parse_pipeline_flags(
        flag_args,
        std::env::var(flags::CACHE_ENV_VAR).ok().as_deref(),
    )?;

    let input = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let parsed = parse_model(&input).map_err(|e| e.to_string())?;

    match command {
        "info" => commands::info(&parsed),
        "lump" => {
            let iterate = flag_args.iter().any(|f| f == "--iterate");
            let deadline = flags::flag_duration(flag_args, "--deadline")?;
            let threads = flags::flag_threads(flag_args)?.unwrap_or(0);
            let tolerance = flags::flag_tolerance(flag_args)?.unwrap_or_default();
            let pipeline = pipeline_for(&pipeline_flags, &input)?;
            commands::lump(
                &parsed, kind, tolerance, iterate, deadline, threads, &pipeline,
            )
        }
        "solve" => {
            let transient = flags::flag_f64_nonneg(flag_args, "--transient")?;
            let accumulated = flags::flag_f64_nonneg(flag_args, "--accumulated")?;
            let measure = match (transient, accumulated) {
                (Some(_), Some(_)) => {
                    return Err(CliError::Failed(
                        "choose one of --transient and --accumulated".into(),
                    ))
                }
                (Some(t), None) => Measure::Transient(t),
                (None, Some(t)) => Measure::Accumulated(t),
                (None, None) => Measure::Stationary,
            };
            let kernel = flags::parse_kernel_flags(flag_args)?;
            let resilience = flags::parse_resilience_flags(flag_args)?;
            let setup = commands::SolveSetup {
                pipeline: pipeline_for(&pipeline_flags, &input)?,
                checkpoint_every: pipeline_flags.checkpoint_every.map(|n| n as usize),
                resume: pipeline_flags.resume,
                tolerance: flags::flag_tolerance(flag_args)?.unwrap_or_default(),
            };
            if flag_args.iter().any(|f| f == "--bounds") {
                commands::solve_bounds(
                    &parsed,
                    kind,
                    measure,
                    200_000,
                    &kernel,
                    &resilience,
                    &setup,
                )
            } else {
                commands::solve(
                    &parsed,
                    kind,
                    measure,
                    200_000,
                    &kernel,
                    &resilience,
                    &setup,
                )
            }
        }
        "sweep" => {
            if kind == LumpKind::Exact {
                return Err(CliError::Failed(
                    "sweep solves the ordinary-lumped chain; --exact is not supported".into(),
                ));
            }
            let axes = flags::parse_sweep_axes(flag_args)?;
            let kernel = flags::parse_kernel_flags(flag_args)?;
            let resilience = flags::parse_resilience_flags(flag_args)?;
            let sweep_out = flags::value_of(flag_args, "--sweep-out")?;
            let pipeline = pipeline_for(&pipeline_flags, &input)?;
            commands::sweep(&parsed, &axes, &kernel, &resilience, &pipeline, sweep_out)
        }
        "simulate" => {
            let horizon = flags::flag_f64_positive(flag_args, "--horizon")?.unwrap_or(100.0);
            let reps = flags::flag_count(flag_args, "--reps")?.unwrap_or(50) as usize;
            let seed = flags::flag_u64(flag_args, "--seed")?.unwrap_or(0x5EED);
            let deadline = flags::flag_duration(flag_args, "--deadline")?;
            commands::simulate(&parsed, horizon, reps, seed, deadline)
        }
        other => Err(CliError::Failed(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

/// Writes the command output to stdout. A closed pipe (`mdlump-cli … |
/// head`) is the consumer's normal way to stop reading, not a failure,
/// so `BrokenPipe` exits cleanly instead of panicking like `print!`
/// would.
fn write_stdout(out: &str) -> ExitCode {
    use std::io::Write as _;
    let mut stdout = std::io::stdout().lock();
    match stdout
        .write_all(out.as_bytes())
        .and_then(|()| stdout.flush())
    {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cannot write output: {e}");
            ExitCode::from(mdl_cli::error::EXIT_FAILURE)
        }
    }
}

/// Turns the command outcome into an exit code, printing output to stdout
/// and errors to stderr, and flushing any observability emitters before
/// the process exits — buffered trace/metrics lines must not be lost on
/// the error path. Budget interruptions get their own exit code so
/// scripts can tell "ran out of time" apart from "failed".
fn finish(result: Result<String, CliError>) -> ExitCode {
    let code = match result {
        Ok(out) => write_stdout(&out),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    };
    mdl_obs::flush();
    code
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_args: &[String] = if args.len() >= 2 { &args[2..] } else { &[] };
    let session = match setup(flag_args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(mdl_cli::error::EXIT_FAILURE);
        }
    };
    let result = run(&args);
    let ok = result.is_ok();
    // Teardown runs on every exit path: a failed or interrupted run
    // still gets its final counter report, profile tree and trace file
    // — the telemetry of a run that blew its deadline is precisely the
    // evidence of where the budget went.
    if let Some(emitter) = &session.emitter {
        emit_report(emitter);
    }
    let profile_outcome = write_profile_outputs(&session);
    let code = finish(result);
    match profile_outcome {
        Ok(()) => code,
        Err(e) => {
            eprintln!("{e}");
            // A lost trace file fails an otherwise-successful run, but
            // never masks the command's own failure/interrupted code.
            if ok {
                ExitCode::from(mdl_cli::error::EXIT_FAILURE)
            } else {
                code
            }
        }
    }
}
