//! Random Kronecker models with **planted** per-level symmetries.
//!
//! The property-based tests and several benches need families of models
//! where the correct answer is known: a random quotient chain is generated
//! per level, then each quotient state is "unfolded" into a class of
//! duplicate states in a way that provably keeps the planted partition
//! (ordinarily or exactly) lumpable. The compositional lumping algorithm
//! must then find a partition **at least as coarse** as the planted one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mdl_core::LumpKind;
use mdl_md::{KroneckerExpr, SparseFactor};
use mdl_partition::Partition;

/// Shape of one level of a planted-symmetry model.
#[derive(Debug, Clone)]
pub struct LevelSpec {
    /// Sizes of the planted classes; the level has `Σ duplication` local
    /// states grouped into `duplication.len()` classes.
    pub duplication: Vec<usize>,
}

impl LevelSpec {
    /// A level of `classes` classes, each duplicated `copies` times.
    pub fn uniform(classes: usize, copies: usize) -> Self {
        LevelSpec {
            duplication: vec![copies; classes],
        }
    }

    /// Number of unfolded local states.
    pub fn states(&self) -> usize {
        self.duplication.iter().sum()
    }

    /// The planted partition over the unfolded local states.
    pub fn partition(&self) -> Partition {
        let mut classes = Vec::with_capacity(self.duplication.len());
        let mut next = 0;
        for &d in &self.duplication {
            classes.push((next..next + d).collect());
            next += d;
        }
        Partition::from_classes(classes)
    }
}

/// A generated model together with its planted per-level partitions.
#[derive(Debug, Clone)]
pub struct PlantedModel {
    /// The Kronecker expression over the unfolded state spaces.
    pub expr: KroneckerExpr,
    /// The planted (guaranteed-lumpable) partition per level.
    pub planted: Vec<Partition>,
}

/// Generates a random Kronecker model whose per-level state spaces carry a
/// planted symmetry that is **ordinarily** (`LumpKind::Ordinary`) or
/// **exactly** (`LumpKind::Exact`) lumpable by construction.
///
/// Each level gets `local_terms` purely local factors, and `sync_terms`
/// factors synchronized across all levels; every factor is the unfolding
/// of a random quotient matrix with class mass split uniformly over the
/// target class (ordinary) or source class (exact), which preserves the
/// respective aggregate-row/column condition.
///
/// # Panics
///
/// Panics if `specs` is empty or a spec has no classes.
pub fn planted_model(
    seed: u64,
    specs: &[LevelSpec],
    kind: LumpKind,
    local_terms: usize,
    sync_terms: usize,
) -> PlantedModel {
    assert!(!specs.is_empty(), "need at least one level");
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<usize> = specs.iter().map(LevelSpec::states).collect();
    let planted: Vec<Partition> = specs.iter().map(LevelSpec::partition).collect();
    let mut expr = KroneckerExpr::new(sizes.clone());

    for (l, spec) in specs.iter().enumerate() {
        for _ in 0..local_terms {
            let f = unfolded_factor(&mut rng, spec, kind);
            let mut factors: Vec<Option<SparseFactor>> = vec![None; specs.len()];
            factors[l] = Some(f);
            expr.add_term(rng.gen_range(0.5..2.0), factors);
        }
    }
    for _ in 0..sync_terms {
        let factors: Vec<Option<SparseFactor>> = specs
            .iter()
            .map(|spec| Some(unfolded_factor(&mut rng, spec, kind)))
            .collect();
        expr.add_term(rng.gen_range(0.5..2.0), factors);
    }

    PlantedModel { expr, planted }
}

/// Random quotient matrix over the classes, unfolded to the full local
/// state space so that the planted partition stays lumpable.
fn unfolded_factor(rng: &mut StdRng, spec: &LevelSpec, kind: LumpKind) -> SparseFactor {
    let k = spec.duplication.len();
    assert!(k > 0, "level must have classes");
    let n = spec.states();
    // Class start offsets.
    let mut start = Vec::with_capacity(k);
    let mut acc = 0;
    for &d in &spec.duplication {
        start.push(acc);
        acc += d;
    }

    // Random sparse quotient: each class pair present with probability ~0.4.
    let mut f = SparseFactor::new(n);
    for ci in 0..k {
        for cj in 0..k {
            if rng.gen_bool(0.6) {
                continue;
            }
            let w: f64 = rng.gen_range(0.25..4.0);
            let (di, dj) = (spec.duplication[ci], spec.duplication[cj]);
            // Unfold W_q(ci, cj): every source state in ci sends total w to
            // class cj. Ordinary lumpability needs constant row sums into
            // classes: split w uniformly over the targets. Exact needs
            // constant column sums from classes: split over the sources.
            match kind {
                LumpKind::Ordinary => {
                    let per_target = w / dj as f64;
                    for si in 0..di {
                        for sj in 0..dj {
                            f.push(start[ci] + si, start[cj] + sj, per_target);
                        }
                    }
                }
                LumpKind::Exact => {
                    let per_source = w / di as f64;
                    for si in 0..di {
                        for sj in 0..dj {
                            f.push(start[ci] + si, start[cj] + sj, per_source);
                        }
                    }
                }
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_core::{verify, Combiner, DecomposableVector, LumpKind, LumpRequest, MdMrp};
    use mdl_linalg::Tolerance;
    use mdl_md::MdMatrix;
    use mdl_mdd::Mdd;

    fn build_mrp(pm: &PlantedModel, kind: LumpKind) -> MdMrp {
        let sizes = pm.expr.sizes().to_vec();
        let md = pm.expr.to_md().unwrap();
        let reach = Mdd::full(sizes.clone()).unwrap();
        let matrix = MdMatrix::new(md, reach).unwrap();
        let reward = DecomposableVector::constant(&sizes, 1.0).unwrap();
        let count: usize = sizes.iter().product();
        let initial = DecomposableVector::uniform(&sizes, count as u64).unwrap();
        let _ = kind;
        let _ = Combiner::Product;
        MdMrp::new(matrix, reward, initial).unwrap()
    }

    #[test]
    fn ordinary_lump_finds_planted_symmetry() {
        for seed in 0..5 {
            let pm = planted_model(
                seed,
                &[LevelSpec::uniform(2, 2), LevelSpec::uniform(3, 2)],
                LumpKind::Ordinary,
                2,
                1,
            );
            let mrp = build_mrp(&pm, LumpKind::Ordinary);
            let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
            for (l, planted) in pm.planted.iter().enumerate() {
                assert!(
                    planted.is_refinement_of(&result.partitions[l]),
                    "seed {seed}: found partition must be at least as coarse at level {l}"
                );
            }
            verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
        }
    }

    #[test]
    fn exact_lump_finds_planted_symmetry() {
        for seed in 0..5 {
            let pm = planted_model(
                seed,
                &[LevelSpec::uniform(2, 3), LevelSpec::uniform(2, 2)],
                LumpKind::Exact,
                2,
                1,
            );
            let mrp = build_mrp(&pm, LumpKind::Exact);
            let result = LumpRequest::new(LumpKind::Exact).run(&mrp).unwrap();
            for (l, planted) in pm.planted.iter().enumerate() {
                assert!(
                    planted.is_refinement_of(&result.partitions[l]),
                    "seed {seed}: level {l}"
                );
            }
            verify::verify_exact(&mrp, &result, Tolerance::default()).unwrap();
        }
    }

    #[test]
    fn non_uniform_duplication_supported() {
        let spec = LevelSpec {
            duplication: vec![1, 3, 2],
        };
        assert_eq!(spec.states(), 6);
        let p = spec.partition();
        assert_eq!(p.num_classes(), 3);
        assert_eq!(p.members(1), &[1, 2, 3]);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = planted_model(7, &[LevelSpec::uniform(2, 2)], LumpKind::Ordinary, 2, 0);
        let b = planted_model(7, &[LevelSpec::uniform(2, 2)], LumpKind::Ordinary, 2, 0);
        assert_eq!(a.expr, b.expr);
    }
}
