//! Level 3 of the tandem model: the MSMQ (multi-server multi-queue)
//! polling subsystem (Fig. 4 of the paper, after [Ajmone Marsan et al.]).
//!
//! `S` identical servers cycle over `Q` queues arranged in a ring. A
//! walking server arrives at its target queue after an exponential walk
//! time; if the queue holds an unclaimed job the server starts serving it,
//! otherwise it walks on to the next queue. On service completion the job
//! leaves (to the hypercube input pool) and the server walks to the next
//! queue. Jobs from the MSMQ input pool are dispatched to the queues with
//! equal probability.
//!
//! The `S` interchangeable servers — and, with uniform dispatch, the ring
//! rotation of the queues — are the symmetries the compositional lumping
//! algorithm is expected to find at this level.

use std::collections::HashMap;

use mdl_md::SparseFactor;

/// Phase of one MSMQ server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServerPhase {
    /// Walking towards the queue.
    Walking,
    /// Serving a job at the queue.
    Serving,
}

/// One server: target/current queue and phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsmqServer {
    /// The queue the server is at (Serving) or walking to (Walking).
    pub queue: u8,
    /// Walking or serving.
    pub phase: ServerPhase,
}

/// One MSMQ state: queue contents and all server positions/phases.
///
/// Validity invariant: for each queue, the number of servers serving there
/// does not exceed the number of queued jobs (a serving server "claims"
/// one job, which stays counted in the queue until completion).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsmqState {
    /// Jobs in each queue (including claimed ones).
    pub queues: Vec<u8>,
    /// The servers, in identity order (the model keeps servers
    /// distinguishable; lumping discovers their interchangeability).
    pub servers: Vec<MsmqServer>,
}

/// The MSMQ component: state enumeration and event factors.
#[derive(Debug, Clone)]
pub struct MsmqSpace {
    queues: usize,
    servers: usize,
    jobs: usize,
    states: Vec<MsmqState>,
    index: HashMap<MsmqState, u32>,
}

impl MsmqSpace {
    /// Enumerates all valid states for `queues` queues, `servers` servers
    /// and at most `jobs` jobs in the subsystem.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations.
    pub fn new(queues: usize, servers: usize, jobs: usize) -> Self {
        assert!(
            queues >= 1 && servers >= 1 && jobs >= 1,
            "degenerate MSMQ configuration"
        );
        assert!(queues <= u8::MAX as usize && jobs <= u8::MAX as usize);

        let mut queue_configs: Vec<Vec<u8>> = Vec::new();
        enumerate_bounded(queues, jobs, &mut vec![0u8; queues], 0, &mut queue_configs);

        // All server tuples: (queue, phase) per server.
        let per_server: Vec<MsmqServer> = (0..queues as u8)
            .flat_map(|q| {
                [
                    MsmqServer {
                        queue: q,
                        phase: ServerPhase::Walking,
                    },
                    MsmqServer {
                        queue: q,
                        phase: ServerPhase::Serving,
                    },
                ]
            })
            .collect();
        let mut server_tuples: Vec<Vec<MsmqServer>> = vec![Vec::new()];
        for _ in 0..servers {
            server_tuples = server_tuples
                .into_iter()
                .flat_map(|t| {
                    per_server.iter().map(move |&s| {
                        let mut t = t.clone();
                        t.push(s);
                        t
                    })
                })
                .collect();
        }

        let mut states = Vec::new();
        for q in &queue_configs {
            for st in &server_tuples {
                let candidate = MsmqState {
                    queues: q.clone(),
                    servers: st.clone(),
                };
                if is_valid(&candidate, queues) {
                    states.push(candidate);
                }
            }
        }
        states.sort_unstable();
        let index = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        MsmqSpace {
            queues,
            servers,
            jobs,
            states,
            index,
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers
    }

    /// Number of enumerated (valid) states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when no states exist (never; API completeness).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// A state by index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state(&self, idx: u32) -> &MsmqState {
        &self.states[idx as usize]
    }

    /// Index of a state.
    pub fn index_of(&self, state: &MsmqState) -> Option<u32> {
        self.index.get(state).copied()
    }

    /// Initial state: queues empty, every server walking towards queue 0.
    pub fn initial(&self) -> u32 {
        let s = MsmqState {
            queues: vec![0; self.queues],
            servers: vec![
                MsmqServer {
                    queue: 0,
                    phase: ServerPhase::Walking
                };
                self.servers
            ],
        };
        self.index_of(&s).expect("initial state enumerated")
    }

    fn next_queue(&self, q: u8) -> u8 {
        ((q as usize + 1) % self.queues) as u8
    }

    fn serving_at(state: &MsmqState, q: u8) -> usize {
        state
            .servers
            .iter()
            .filter(|s| s.phase == ServerPhase::Serving && s.queue == q)
            .count()
    }

    /// Local walk dynamics with the walk rate folded in: a walking server
    /// arrives at its queue; with an unclaimed job present it starts
    /// serving, otherwise it walks on to the next queue.
    pub fn walk_factor(&self, walk_rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        for (i, s) in self.states.iter().enumerate() {
            for (j, srv) in s.servers.iter().enumerate() {
                if srv.phase != ServerPhase::Walking {
                    continue;
                }
                let q = srv.queue;
                let unclaimed = s.queues[q as usize] as usize > Self::serving_at(s, q);
                let mut t = s.clone();
                if unclaimed {
                    t.servers[j] = MsmqServer {
                        queue: q,
                        phase: ServerPhase::Serving,
                    };
                } else {
                    t.servers[j] = MsmqServer {
                        queue: self.next_queue(q),
                        phase: ServerPhase::Walking,
                    };
                }
                f.push(i, self.must_index(&t), walk_rate);
            }
        }
        f
    }

    /// Service-completion factor (synchronized with `hyper_pool + 1`):
    /// each serving server finishes at unit weight; the served job leaves
    /// its queue and the server walks to the next queue. The event carries
    /// the service rate.
    pub fn service_factor(&self) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        for (i, s) in self.states.iter().enumerate() {
            for (j, srv) in s.servers.iter().enumerate() {
                if srv.phase != ServerPhase::Serving {
                    continue;
                }
                let q = srv.queue;
                let mut t = s.clone();
                t.queues[q as usize] -= 1;
                t.servers[j] = MsmqServer {
                    queue: self.next_queue(q),
                    phase: ServerPhase::Walking,
                };
                f.push(i, self.must_index(&t), 1.0);
            }
        }
        f
    }

    /// Arrival factor (synchronized with `msmq_pool − 1`): a dispatched
    /// job joins each queue with equal probability. The event carries the
    /// dispatch rate. Rows where the subsystem is full (Σ queues = jobs)
    /// have no entries — globally unreachable in the closed system when
    /// the pool is non-empty.
    pub fn arrival_factor(&self) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        let p = 1.0 / self.queues as f64;
        for (i, s) in self.states.iter().enumerate() {
            let total: usize = s.queues.iter().map(|&q| q as usize).sum();
            if total >= self.jobs {
                continue;
            }
            for q in 0..self.queues {
                let mut t = s.clone();
                t.queues[q] += 1;
                f.push(i, self.must_index(&t), p);
            }
        }
        f
    }

    /// Per-state total queue length (queue-length reward).
    pub fn queue_len_values(&self) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| s.queues.iter().map(|&q| q as f64).sum())
            .collect()
    }

    fn must_index(&self, state: &MsmqState) -> usize {
        self.index_of(state)
            .expect("successor within enumerated space") as usize
    }
}

fn is_valid(state: &MsmqState, queues: usize) -> bool {
    (0..queues as u8).all(|q| MsmqSpace::serving_at(state, q) <= state.queues[q as usize] as usize)
}

/// Enumerates non-negative vectors of length `n` with sum ≤ `bound`.
fn enumerate_bounded(
    n: usize,
    bound: usize,
    current: &mut Vec<u8>,
    pos: usize,
    out: &mut Vec<Vec<u8>>,
) {
    if pos == n {
        out.push(current.clone());
        return;
    }
    let used: usize = current[..pos].iter().map(|&v| v as usize).sum();
    for v in 0..=(bound - used) as u8 {
        current[pos] = v;
        enumerate_bounded(n, bound, current, pos + 1, out);
    }
    current[pos] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_excludes_over_claimed_queues() {
        let m = MsmqSpace::new(4, 3, 1);
        // No state may have two servers serving the same single-job queue.
        for i in 0..m.len() as u32 {
            let s = m.state(i);
            for q in 0..4u8 {
                assert!(MsmqSpace::serving_at(s, q) <= s.queues[q as usize] as usize);
            }
        }
    }

    #[test]
    fn empty_system_servers_all_walk() {
        let m = MsmqSpace::new(4, 3, 1);
        // With zero jobs anywhere, no server can be serving.
        for i in 0..m.len() as u32 {
            let s = m.state(i);
            if s.queues.iter().all(|&q| q == 0) {
                assert!(s
                    .servers
                    .iter()
                    .all(|srv| srv.phase == ServerPhase::Walking));
            }
        }
    }

    #[test]
    fn walk_claims_available_job() {
        let m = MsmqSpace::new(4, 3, 2);
        let f = m.walk_factor(5.0).to_csr();
        // Find a state with a job at queue 0 and a server walking to 0.
        let s = MsmqState {
            queues: vec![1, 0, 0, 0],
            servers: vec![
                MsmqServer {
                    queue: 0,
                    phase: ServerPhase::Walking,
                },
                MsmqServer {
                    queue: 1,
                    phase: ServerPhase::Walking,
                },
                MsmqServer {
                    queue: 2,
                    phase: ServerPhase::Walking,
                },
            ],
        };
        let i = m.index_of(&s).unwrap();
        let succ: Vec<(usize, f64)> = f.row(i as usize).collect();
        assert_eq!(succ.len(), 3); // all three servers are walking
                                   // Server 0's arrival must start service (job unclaimed).
        let serving = succ.iter().any(|&(c, v)| {
            let t = m.state(c as u32);
            v == 5.0 && t.servers[0].phase == ServerPhase::Serving && t.servers[0].queue == 0
        });
        assert!(serving);
    }

    #[test]
    fn walk_skips_claimed_job() {
        let m = MsmqSpace::new(4, 2, 1);
        // One job at queue 0, server 0 already serving it, server 1 walking
        // to 0: server 1 must pass on to queue 1.
        let s = MsmqState {
            queues: vec![1, 0, 0, 0],
            servers: vec![
                MsmqServer {
                    queue: 0,
                    phase: ServerPhase::Serving,
                },
                MsmqServer {
                    queue: 0,
                    phase: ServerPhase::Walking,
                },
            ],
        };
        let i = m.index_of(&s).unwrap();
        let f = m.walk_factor(1.0).to_csr();
        let passes = f.row(i as usize).any(|(c, _)| {
            let t = m.state(c as u32);
            t.servers[1].queue == 1 && t.servers[1].phase == ServerPhase::Walking
        });
        assert!(passes);
        let claims = f.row(i as usize).any(|(c, _)| {
            let t = m.state(c as u32);
            t.servers[1].phase == ServerPhase::Serving
        });
        assert!(!claims);
    }

    #[test]
    fn service_releases_job_and_walks_on() {
        let m = MsmqSpace::new(4, 2, 1);
        let s = MsmqState {
            queues: vec![1, 0, 0, 0],
            servers: vec![
                MsmqServer {
                    queue: 0,
                    phase: ServerPhase::Serving,
                },
                MsmqServer {
                    queue: 2,
                    phase: ServerPhase::Walking,
                },
            ],
        };
        let i = m.index_of(&s).unwrap();
        let f = m.service_factor().to_csr();
        let succ: Vec<(usize, f64)> = f.row(i as usize).collect();
        assert_eq!(succ.len(), 1);
        let t = m.state(succ[0].0 as u32);
        assert_eq!(t.queues[0], 0);
        assert_eq!(
            t.servers[0],
            MsmqServer {
                queue: 1,
                phase: ServerPhase::Walking
            }
        );
    }

    #[test]
    fn arrivals_uniform_and_capacity_bounded() {
        let m = MsmqSpace::new(4, 1, 2);
        let f = m.arrival_factor().to_csr();
        for r in 0..m.len() {
            let total: usize = m.state(r as u32).queues.iter().map(|&q| q as usize).sum();
            let sum: f64 = f.row(r).map(|(_, v)| v).sum();
            if total >= 2 {
                assert_eq!(sum, 0.0);
            } else {
                assert!((sum - 1.0).abs() < 1e-12);
                for (_, v) in f.row(r) {
                    assert!((v - 0.25).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn initial_state_is_enumerated() {
        let m = MsmqSpace::new(4, 3, 3);
        let s = m.state(m.initial());
        assert!(s.queues.iter().all(|&q| q == 0));
        assert!(s
            .servers
            .iter()
            .all(|srv| srv.queue == 0 && srv.phase == ServerPhase::Walking));
    }

    #[test]
    fn queue_len_values_sum_queues() {
        let m = MsmqSpace::new(4, 1, 2);
        let v = m.queue_len_values();
        for i in 0..m.len() as u32 {
            let expect: f64 = m.state(i).queues.iter().map(|&q| q as f64).sum();
            assert_eq!(v[i as usize], expect);
        }
    }
}
