//! Level 1 of the tandem model: the two shared job pools.
//!
//! The paper composes the MSMQ and hypercube submodels by *sharing* their
//! input/output pools; in this event-synchronized reproduction the pools
//! are an explicit component whose state is `(msmq_pool, hyper_pool)` —
//! the jobs currently waiting to be dispatched into the MSMQ queues and
//! into the hypercube, respectively. The system is closed with `J` jobs,
//! so `msmq_pool + hyper_pool ≤ J` (the remaining jobs are inside the
//! subsystems).

use std::collections::HashMap;

use mdl_md::SparseFactor;

/// The pools component: enumeration of `(msmq_pool, hyper_pool)` states
/// and the four synchronization factors the subsystem events need.
#[derive(Debug, Clone)]
pub struct PoolSpace {
    jobs: usize,
    states: Vec<(u32, u32)>,
    index: HashMap<(u32, u32), u32>,
}

impl PoolSpace {
    /// Enumerates all pool states for a closed system with `jobs` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "a closed system needs at least one job");
        let mut states = Vec::new();
        for pm in 0..=jobs as u32 {
            for ph in 0..=(jobs as u32 - pm) {
                states.push((pm, ph));
            }
        }
        states.sort_unstable();
        let index = states
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        PoolSpace {
            jobs,
            states,
            index,
        }
    }

    /// Number of pool states: `(J+1)(J+2)/2`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if there are no states (never; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The `(msmq_pool, hyper_pool)` contents of a state.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state(&self, idx: u32) -> (u32, u32) {
        self.states[idx as usize]
    }

    /// Index of a pool configuration, if within bounds.
    pub fn index_of(&self, msmq_pool: u32, hyper_pool: u32) -> Option<u32> {
        self.index.get(&(msmq_pool, hyper_pool)).copied()
    }

    /// Initial state: all `J` jobs in the MSMQ input pool.
    pub fn initial(&self) -> u32 {
        self.index_of(self.jobs as u32, 0)
            .expect("(J, 0) enumerated")
    }

    fn shift(&self, dm: i32, dh: i32) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        for (i, &(pm, ph)) in self.states.iter().enumerate() {
            let npm = pm as i64 + dm as i64;
            let nph = ph as i64 + dh as i64;
            if npm < 0 || nph < 0 {
                continue;
            }
            if let Some(j) = self.index_of(npm as u32, nph as u32) {
                f.push(i, j as usize, 1.0);
            }
        }
        f
    }

    /// `msmq_pool − 1`: a job leaves the MSMQ input pool (dispatched into
    /// the MSMQ queues).
    pub fn take_msmq(&self) -> SparseFactor {
        self.shift(-1, 0)
    }

    /// `hyper_pool + 1`: an MSMQ service completion hands a job to the
    /// hypercube input pool.
    pub fn put_hyper(&self) -> SparseFactor {
        self.shift(0, 1)
    }

    /// `hyper_pool − 1`: a job leaves the hypercube input pool (dispatched
    /// to server A or A′).
    pub fn take_hyper(&self) -> SparseFactor {
        self.shift(0, -1)
    }

    /// `msmq_pool + 1`: a hypercube service completion hands a job back to
    /// the MSMQ input pool.
    pub fn put_msmq(&self) -> SparseFactor {
        self.shift(1, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_count() {
        for jobs in 1..=5 {
            let p = PoolSpace::new(jobs);
            assert_eq!(p.len(), (jobs + 1) * (jobs + 2) / 2);
        }
    }

    #[test]
    fn initial_holds_all_jobs() {
        let p = PoolSpace::new(3);
        assert_eq!(p.state(p.initial()), (3, 0));
    }

    #[test]
    fn shifts_respect_bounds() {
        let p = PoolSpace::new(2);
        // take_msmq has no row for pm = 0 states.
        let take = p.take_msmq();
        let zero_rows: Vec<u32> = (0..p.len() as u32).filter(|&i| p.state(i).0 == 0).collect();
        for (r, _, _) in take.iter() {
            assert!(!zero_rows.contains(&r));
        }
        // put_hyper is blocked when pm + ph = J.
        let put = p.put_hyper();
        for (r, c, _) in put.iter() {
            let (pm, ph) = p.state(r);
            assert!(pm + ph < 2);
            assert_eq!(p.state(c), (pm, ph + 1));
        }
    }

    #[test]
    fn shift_round_trip() {
        let p = PoolSpace::new(2);
        // take_hyper then put_hyper maps a state to itself (where defined).
        let take = p.take_hyper().to_csr();
        let put = p.put_hyper().to_csr();
        for (r, c, _) in take.iter() {
            assert_eq!(put.get(c, r), 1.0);
        }
    }
}
