//! Level 2 of the tandem model: the hypercube multiprocessor subsystem
//! (Fig. 5 of the paper).
//!
//! `2^dim` cube-connected servers, each with a job queue. Jobs enter
//! through a dispatcher that sends them to server `A` (vertex `0…0`) or
//! `A′` (the antipodal vertex `1…1`), favouring the one with fewer queued
//! jobs. A load-balancing rule moves a job from any server holding more
//! than one job above a neighbour towards lighter neighbours. Servers fail
//! (up to `max_down` concurrently — the system is unavailable at two down,
//! and further failures are not modelled) and are repaired by a single
//! facility choosing uniformly among the failed; a failed server drains
//! its queue one job at a time to a random up neighbour.
//!
//! The `A`/`A′` pair and the remaining `2^dim − 2` servers are two orbits
//! of the cube's automorphism group fixing `{A, A′}` — the symmetry the
//! compositional lumping algorithm is expected to discover at this level
//! (Section 5 of the paper).

use std::collections::HashMap;

use mdl_md::SparseFactor;

/// Structural and rate parameters of the hypercube subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypercubeConfig {
    /// Cube dimension; `2^dim` servers (the paper uses 3 → 8 servers).
    pub dim: usize,
    /// Total jobs in the closed system (queue capacity bound).
    pub jobs: usize,
    /// Maximum concurrently failed servers.
    pub max_down: usize,
    /// Per-server failure rate.
    pub failure: f64,
    /// Repair facility rate (uniform choice among failed servers).
    pub repair: f64,
    /// Load-balancing move rate.
    pub balance: f64,
    /// Failed-server job drain rate.
    pub transfer: f64,
    /// Dispatcher probability for the less-loaded of `A`/`A′`.
    pub dispatch_bias: f64,
}

/// One hypercube state: per-server queue lengths and up/down flags.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HypercubeState {
    /// Jobs queued at each server.
    pub queues: Vec<u8>,
    /// Operational flag of each server.
    pub up: Vec<bool>,
}

/// The hypercube component: state enumeration and event factors.
#[derive(Debug, Clone)]
pub struct HypercubeSpace {
    config: HypercubeConfig,
    servers: usize,
    states: Vec<HypercubeState>,
    index: HashMap<HypercubeState, u32>,
}

impl HypercubeSpace {
    /// Enumerates all states: queue vectors summing to at most `jobs`,
    /// crossed with up/down patterns having at most `max_down` failures.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (`dim == 0`, `jobs == 0`, or a
    /// `dispatch_bias` outside `[0, 1]`).
    pub fn new(config: HypercubeConfig) -> Self {
        assert!(config.dim >= 1, "need at least a 1-cube");
        assert!(config.jobs >= 1, "need at least one job");
        assert!(
            (0.0..=1.0).contains(&config.dispatch_bias),
            "dispatch_bias is a probability"
        );
        let servers = 1usize << config.dim;
        let mut queue_configs: Vec<Vec<u8>> = Vec::new();
        enumerate_bounded(
            servers,
            config.jobs,
            &mut vec![0u8; servers],
            0,
            &mut queue_configs,
        );

        let mut states = Vec::new();
        for mask in 0u32..(1 << servers) {
            let down = mask.count_ones() as usize;
            if down > config.max_down {
                continue;
            }
            let up: Vec<bool> = (0..servers).map(|i| mask & (1 << i) == 0).collect();
            for q in &queue_configs {
                states.push(HypercubeState {
                    queues: q.clone(),
                    up: up.clone(),
                });
            }
        }
        states.sort_unstable();
        let index = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        HypercubeSpace {
            config,
            servers,
            states,
            index,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HypercubeConfig {
        &self.config
    }

    /// Number of servers (`2^dim`).
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of enumerated states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when no states exist (never; API completeness).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// A state by index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state(&self, idx: u32) -> &HypercubeState {
        &self.states[idx as usize]
    }

    /// Index of a state.
    pub fn index_of(&self, state: &HypercubeState) -> Option<u32> {
        self.index.get(state).copied()
    }

    /// Initial state: all queues empty, all servers up.
    pub fn initial(&self) -> u32 {
        let s = HypercubeState {
            queues: vec![0; self.servers],
            up: vec![true; self.servers],
        };
        self.index_of(&s).expect("initial state enumerated")
    }

    /// Vertex `A` (the dispatcher target `0…0`).
    pub fn vertex_a(&self) -> usize {
        0
    }

    /// Vertex `A′` (antipodal to `A`).
    pub fn vertex_a_prime(&self) -> usize {
        self.servers - 1
    }

    /// The cube neighbours of server `i`.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.config.dim).map(move |b| i ^ (1 << b))
    }

    /// All level-local dynamics as one factor with rates folded in:
    /// failures, repairs, load balancing, and failed-server job drains.
    pub fn local_factor(&self) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        let c = &self.config;
        for (i, s) in self.states.iter().enumerate() {
            let down_count = s.up.iter().filter(|&&u| !u).count();

            // Failures: any up server, while fewer than max_down are down.
            if down_count < c.max_down {
                for srv in 0..self.servers {
                    if s.up[srv] {
                        let mut t = s.clone();
                        t.up[srv] = false;
                        f.push(i, self.must_index(&t), c.failure);
                    }
                }
            }
            // Repair: single facility, uniform among failed.
            if down_count > 0 {
                let each = c.repair / down_count as f64;
                for srv in 0..self.servers {
                    if !s.up[srv] {
                        let mut t = s.clone();
                        t.up[srv] = true;
                        f.push(i, self.must_index(&t), each);
                    }
                }
            }
            // Load balancing: an up server more than one job above a
            // neighbour pushes one job towards lighter up neighbours,
            // favouring the lightest (weights ∝ surplus − 1).
            for srv in 0..self.servers {
                if !s.up[srv] {
                    continue;
                }
                let eligible: Vec<(usize, f64)> = self
                    .neighbors(srv)
                    .filter(|&nb| s.up[nb] && s.queues[srv] >= s.queues[nb] + 2)
                    .map(|nb| (nb, (s.queues[srv] - s.queues[nb] - 1) as f64))
                    .collect();
                let total: f64 = eligible.iter().map(|&(_, w)| w).sum();
                for (nb, w) in eligible {
                    let mut t = s.clone();
                    t.queues[srv] -= 1;
                    t.queues[nb] += 1;
                    f.push(i, self.must_index(&t), c.balance * w / total);
                }
            }
            // Failed-server drain: one job at a time to a uniform up
            // neighbour.
            for srv in 0..self.servers {
                if s.up[srv] || s.queues[srv] == 0 {
                    continue;
                }
                let targets: Vec<usize> = self.neighbors(srv).filter(|&nb| s.up[nb]).collect();
                if targets.is_empty() {
                    continue;
                }
                let each = c.transfer / targets.len() as f64;
                for nb in targets {
                    let mut t = s.clone();
                    t.queues[srv] -= 1;
                    t.queues[nb] += 1;
                    f.push(i, self.must_index(&t), each);
                }
            }
        }
        f
    }

    /// Dispatcher factor (synchronized with `hyper_pool − 1`): a job goes
    /// to `A` or `A′`, favouring the less-loaded up candidate. Weights are
    /// probabilities; the event carries the dispatch rate.
    pub fn dispatch_factor(&self) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        let (a, ap) = (self.vertex_a(), self.vertex_a_prime());
        let bias = self.config.dispatch_bias;
        let cap = self.config.jobs as u8;
        for (i, s) in self.states.iter().enumerate() {
            let mut candidates: Vec<usize> = Vec::with_capacity(2);
            for &srv in &[a, ap] {
                if s.up[srv] && s.queues[srv] < cap {
                    candidates.push(srv);
                }
            }
            let probs: Vec<(usize, f64)> = match candidates.as_slice() {
                [] => continue, // dispatch blocked; job waits in the pool
                [only] => vec![(*only, 1.0)],
                [x, y] => {
                    use std::cmp::Ordering;
                    match s.queues[*x].cmp(&s.queues[*y]) {
                        Ordering::Less => vec![(*x, bias), (*y, 1.0 - bias)],
                        Ordering::Greater => vec![(*x, 1.0 - bias), (*y, bias)],
                        Ordering::Equal => vec![(*x, 0.5), (*y, 0.5)],
                    }
                }
                _ => unreachable!("at most two dispatch targets"),
            };
            for (srv, p) in probs {
                let mut t = s.clone();
                t.queues[srv] += 1;
                if let Some(j) = self.index_of(&t) {
                    f.push(i, j as usize, p);
                }
            }
        }
        f
    }

    /// Service factor (synchronized with `msmq_pool + 1`): every up server
    /// with a queued job completes one at unit weight; the event carries
    /// the per-server service rate.
    pub fn service_factor(&self) -> SparseFactor {
        let mut f = SparseFactor::new(self.len());
        for (i, s) in self.states.iter().enumerate() {
            for srv in 0..self.servers {
                if s.up[srv] && s.queues[srv] > 0 {
                    let mut t = s.clone();
                    t.queues[srv] -= 1;
                    f.push(i, self.must_index(&t), 1.0);
                }
            }
        }
        f
    }

    /// Per-state availability indicator: 1.0 when fewer than two servers
    /// are down (the paper's availability criterion).
    pub fn availability_values(&self) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| {
                let down = s.up.iter().filter(|&&u| !u).count();
                if down < 2 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Per-state count of busy servers (up with at least one job) — the
    /// throughput reward is `service_rate ×` this.
    pub fn busy_values(&self) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| {
                (0..self.servers)
                    .filter(|&i| s.up[i] && s.queues[i] > 0)
                    .count() as f64
            })
            .collect()
    }

    fn must_index(&self, state: &HypercubeState) -> usize {
        self.index_of(state)
            .expect("successor within enumerated space") as usize
    }
}

/// Enumerates non-negative vectors of length `n` with sum ≤ `bound`.
fn enumerate_bounded(
    n: usize,
    bound: usize,
    current: &mut Vec<u8>,
    pos: usize,
    out: &mut Vec<Vec<u8>>,
) {
    if pos == n {
        out.push(current.clone());
        return;
    }
    let used: usize = current[..pos].iter().map(|&v| v as usize).sum();
    for v in 0..=(bound - used) as u8 {
        current[pos] = v;
        enumerate_bounded(n, bound, current, pos + 1, out);
    }
    current[pos] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(jobs: usize) -> HypercubeConfig {
        HypercubeConfig {
            dim: 3,
            jobs,
            max_down: 2,
            failure: 0.05,
            repair: 0.5,
            balance: 3.0,
            transfer: 2.0,
            dispatch_bias: 0.7,
        }
    }

    fn binomial(n: usize, k: usize) -> usize {
        (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn state_count_matches_formula() {
        for jobs in 1..=3 {
            let h = HypercubeSpace::new(config(jobs));
            // Compositions with sum ≤ J over 8 slots × masks with ≤ 2 down.
            let queue_configs = binomial(jobs + 8, 8);
            let masks = 1 + 8 + 28;
            assert_eq!(h.len(), queue_configs * masks, "jobs = {jobs}");
        }
    }

    #[test]
    fn neighbors_are_cube_edges() {
        let h = HypercubeSpace::new(config(1));
        let n: Vec<usize> = h.neighbors(0).collect();
        assert_eq!(n, vec![1, 2, 4]);
        let n: Vec<usize> = h.neighbors(7).collect();
        assert_eq!(n, vec![6, 5, 3]);
    }

    #[test]
    fn a_and_a_prime_are_antipodal() {
        let h = HypercubeSpace::new(config(1));
        assert_eq!(h.vertex_a(), 0);
        assert_eq!(h.vertex_a_prime(), 7);
        assert!(h.neighbors(0).all(|n| n != 7));
    }

    #[test]
    fn failures_capped() {
        let h = HypercubeSpace::new(config(1));
        let local = h.local_factor();
        for (r, c, _) in local.iter() {
            let from = h.state(r);
            let to = h.state(c);
            let down_to = to.up.iter().filter(|&&u| !u).count();
            assert!(down_to <= 2);
            // Any single transition changes either one flag or moves one job.
            let flag_changes = from.up.iter().zip(&to.up).filter(|(a, b)| a != b).count();
            assert!(flag_changes <= 1);
        }
    }

    #[test]
    fn repair_rates_uniform_over_failed() {
        let h = HypercubeSpace::new(config(1));
        // State with servers 0 and 3 down, no jobs.
        let s = HypercubeState {
            queues: vec![0; 8],
            up: (0..8).map(|i| i != 0 && i != 3).collect(),
        };
        let i = h.index_of(&s).unwrap();
        let local = h.local_factor().to_csr();
        let mut repair_rates = Vec::new();
        for (c, v) in local.row(i as usize) {
            let t = h.state(c as u32);
            if t.up.iter().filter(|&&u| !u).count() == 1 {
                repair_rates.push(v);
            }
        }
        assert_eq!(repair_rates.len(), 2);
        for v in repair_rates {
            assert!((v - 0.25).abs() < 1e-12); // 0.5 / 2 failed
        }
    }

    #[test]
    fn dispatch_prefers_lighter_candidate() {
        let h = HypercubeSpace::new(config(2));
        // A has 1 job, A' empty: A' should get bias 0.7.
        let mut q = vec![0u8; 8];
        q[0] = 1;
        let s = HypercubeState {
            queues: q,
            up: vec![true; 8],
        };
        let i = h.index_of(&s).unwrap();
        let d = h.dispatch_factor().to_csr();
        let row: Vec<(usize, f64)> = d.row(i as usize).collect();
        assert_eq!(row.len(), 2);
        for (c, v) in row {
            let t = h.state(c as u32);
            if t.queues[7] == 1 {
                assert!((v - 0.7).abs() < 1e-12);
            } else {
                assert!((v - 0.3).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dispatch_rows_sum_to_one_when_enabled() {
        let h = HypercubeSpace::new(config(2));
        let d = h.dispatch_factor().to_csr();
        for r in 0..h.len() {
            let sum: f64 = d.row(r).map(|(_, v)| v).sum();
            assert!(
                sum == 0.0 || (sum - 1.0).abs() < 1e-12,
                "row {r} sums to {sum}"
            );
        }
    }

    #[test]
    fn balance_moves_towards_lighter() {
        let h = HypercubeSpace::new(config(3));
        // Server 0 has 3 jobs, neighbours empty: three eligible targets.
        let mut q = vec![0u8; 8];
        q[0] = 3;
        let s = HypercubeState {
            queues: q,
            up: vec![true; 8],
        };
        let i = h.index_of(&s).unwrap();
        let local = h.local_factor().to_csr();
        let mut balance_total = 0.0;
        for (c, v) in local.row(i as usize) {
            let t = h.state(c as u32);
            if t.up == s.up && t.queues[0] == 2 {
                balance_total += v;
            }
        }
        assert!(
            (balance_total - 3.0).abs() < 1e-12,
            "total balance rate = β"
        );
    }

    #[test]
    fn drain_only_from_failed_with_jobs() {
        let h = HypercubeSpace::new(config(1));
        // Server 1 down with 1 job.
        let mut q = vec![0u8; 8];
        q[1] = 1;
        let s = HypercubeState {
            queues: q,
            up: (0..8).map(|i| i != 1).collect(),
        };
        let i = h.index_of(&s).unwrap();
        let local = h.local_factor().to_csr();
        let mut drain = 0.0;
        for (c, v) in local.row(i as usize) {
            let t = h.state(c as u32);
            if t.up == s.up && t.queues[1] == 0 {
                drain += v;
            }
        }
        assert!((drain - 2.0).abs() < 1e-12, "drain total = τ");
    }

    #[test]
    fn availability_counts_down_servers() {
        let h = HypercubeSpace::new(config(1));
        let avail = h.availability_values();
        for (i, s) in (0..h.len() as u32).map(|i| (i, h.state(i))) {
            let down = s.up.iter().filter(|&&u| !u).count();
            assert_eq!(avail[i as usize], if down < 2 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn service_requires_up_and_job() {
        let h = HypercubeSpace::new(config(1));
        let svc = h.service_factor();
        for (r, c, v) in svc.iter() {
            assert_eq!(v, 1.0);
            let from = h.state(r);
            let to = h.state(c);
            let moved: Vec<usize> = (0..8).filter(|&i| from.queues[i] != to.queues[i]).collect();
            assert_eq!(moved.len(), 1);
            assert!(from.up[moved[0]]);
            assert_eq!(from.queues[moved[0]], to.queues[moved[0]] + 1);
        }
    }
}
