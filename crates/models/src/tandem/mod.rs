//! The paper's Section 5 evaluation model: a closed tandem multi-processor
//! system with load balancing and failure/repair.
//!
//! Jobs circulate through two subsystems connected by shared pools:
//!
//! ```text
//!   MSMQ input pool ──► MSMQ (4 queues, 3 polling servers)
//!         ▲                            │ service
//!         │ service                    ▼
//!   hypercube (8 servers) ◄── hypercube input pool
//! ```
//!
//! The matrix diagram has three levels, matching the paper's place
//! partitioning: (1) the shared pools, (2) the hypercube submodel, (3) the
//! MSMQ submodel. The symmetry sources the paper names — the three MSMQ
//! servers, the `A`/`A′` dispatcher pair, and the six remaining hypercube
//! servers — are preserved, so the compositional lumping algorithm has the
//! same structure to discover. See `DESIGN.md` §3 for the substitutions
//! with respect to the paper's Möbius model.

mod hypercube;
mod msmq;
mod pools;

pub use hypercube::{HypercubeConfig, HypercubeSpace, HypercubeState};
pub use msmq::{MsmqServer, MsmqSpace, MsmqState, ServerPhase};
pub use pools::PoolSpace;

use mdl_core::{Combiner, DecomposableVector, MdMrp};

use crate::model::{ComposedModel, ModelError};

/// All rate constants of the tandem model. The structural results of
/// Table 1 (state-space sizes, reductions) depend only on the topology and
/// `J`; the rates matter for the numerical-solution experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TandemRates {
    /// MSMQ server walk rate between queues (ω).
    pub msmq_walk: f64,
    /// MSMQ per-server service rate (μ_m).
    pub msmq_service: f64,
    /// Dispatch rate from the MSMQ input pool into the queues (δ).
    pub msmq_dispatch: f64,
    /// Dispatch rate from the hypercube input pool to `A`/`A′` (d).
    pub hyper_dispatch: f64,
    /// Hypercube per-server service rate (μ_h).
    pub hyper_service: f64,
    /// Per-server failure rate (φ).
    pub failure: f64,
    /// Repair facility rate (ρ).
    pub repair: f64,
    /// Load-balancing move rate (β).
    pub balance: f64,
    /// Failed-server drain rate (τ).
    pub transfer: f64,
    /// Dispatcher probability for the less-loaded of `A`/`A′`.
    pub dispatch_bias: f64,
}

impl Default for TandemRates {
    fn default() -> Self {
        TandemRates {
            msmq_walk: 5.0,
            msmq_service: 1.0,
            msmq_dispatch: 10.0,
            hyper_dispatch: 8.0,
            hyper_service: 0.8,
            failure: 0.05,
            repair: 0.5,
            balance: 3.0,
            transfer: 2.0,
            dispatch_bias: 0.7,
        }
    }
}

/// Structural parameters of the tandem model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TandemConfig {
    /// Number of jobs `J` in the closed system (the paper sweeps 1–3).
    pub jobs: usize,
    /// MSMQ queues (paper: 4).
    pub msmq_queues: usize,
    /// MSMQ servers (paper: 3).
    pub msmq_servers: usize,
    /// Hypercube dimension (paper: 3 → 8 servers).
    pub cube_dim: usize,
    /// Maximum concurrently failed hypercube servers.
    pub max_down: usize,
    /// Rate constants.
    pub rates: TandemRates,
}

impl Default for TandemConfig {
    fn default() -> Self {
        TandemConfig {
            jobs: 1,
            msmq_queues: 4,
            msmq_servers: 3,
            cube_dim: 3,
            max_down: 2,
            rates: TandemRates::default(),
        }
    }
}

/// Which rate-reward structure the MRP carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TandemReward {
    /// 1 when fewer than two hypercube servers are down (the paper's
    /// availability criterion). Product-combined indicator.
    #[default]
    Availability,
    /// Hypercube throughput: `μ_h ×` number of busy up servers.
    /// Sum-combined.
    Throughput,
    /// Total MSMQ queue length. Sum-combined.
    MsmqQueueLength,
    /// Constant 1 (structure-only experiments: imposes no lumping
    /// constraints).
    Constant,
}

/// The assembled tandem model: component state spaces plus the composed
/// event-synchronized model.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct TandemModel {
    config: TandemConfig,
    pools: PoolSpace,
    hyper: HypercubeSpace,
    msmq: MsmqSpace,
    composed: ComposedModel,
}

impl TandemModel {
    /// Builds the component state spaces and wires the six events.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero jobs/queues/servers).
    pub fn new(config: TandemConfig) -> Self {
        let pools = PoolSpace::new(config.jobs);
        let hyper = HypercubeSpace::new(HypercubeConfig {
            dim: config.cube_dim,
            jobs: config.jobs,
            max_down: config.max_down,
            failure: config.rates.failure,
            repair: config.rates.repair,
            balance: config.rates.balance,
            transfer: config.rates.transfer,
            dispatch_bias: config.rates.dispatch_bias,
        });
        let msmq = MsmqSpace::new(config.msmq_queues, config.msmq_servers, config.jobs);

        let mut composed = ComposedModel::new();
        composed.add_component("pools", pools.len(), pools.initial());
        composed.add_component("hypercube", hyper.len(), hyper.initial());
        composed.add_component("msmq", msmq.len(), msmq.initial());

        let r = &config.rates;
        // Jobs dispatched from the MSMQ input pool into the queues.
        composed
            .add_event(
                "msmq_dispatch",
                r.msmq_dispatch,
                vec![Some(pools.take_msmq()), None, Some(msmq.arrival_factor())],
            )
            .expect("valid event");
        // MSMQ service completion: job moves to the hypercube input pool.
        composed
            .add_event(
                "msmq_service",
                r.msmq_service,
                vec![Some(pools.put_hyper()), None, Some(msmq.service_factor())],
            )
            .expect("valid event");
        // Hypercube dispatcher: pool job to A or A′.
        composed
            .add_event(
                "hyper_dispatch",
                r.hyper_dispatch,
                vec![
                    Some(pools.take_hyper()),
                    Some(hyper.dispatch_factor()),
                    None,
                ],
            )
            .expect("valid event");
        // Hypercube service completion: job returns to the MSMQ input pool.
        composed
            .add_event(
                "hyper_service",
                r.hyper_service,
                vec![Some(pools.put_msmq()), Some(hyper.service_factor()), None],
            )
            .expect("valid event");
        // Purely local dynamics (rates folded into the factors).
        composed
            .add_event(
                "hyper_local",
                1.0,
                vec![None, Some(hyper.local_factor()), None],
            )
            .expect("valid event");
        composed
            .add_event(
                "msmq_walk",
                1.0,
                vec![None, None, Some(msmq.walk_factor(r.msmq_walk))],
            )
            .expect("valid event");

        TandemModel {
            config,
            pools,
            hyper,
            msmq,
            composed,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TandemConfig {
        &self.config
    }

    /// The pools component (level 1).
    pub fn pools(&self) -> &PoolSpace {
        &self.pools
    }

    /// The hypercube component (level 2).
    pub fn hypercube(&self) -> &HypercubeSpace {
        &self.hyper
    }

    /// The MSMQ component (level 3).
    pub fn msmq(&self) -> &MsmqSpace {
        &self.msmq
    }

    /// The underlying composed model.
    pub fn composed(&self) -> &ComposedModel {
        &self.composed
    }

    /// Per-level local state-space sizes `(|S₁|, |S₂|, |S₃|)`.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.composed.sizes()
    }

    /// The decomposable reward vector for a reward structure.
    ///
    /// # Errors
    ///
    /// Propagates vector-construction errors (cannot occur for the
    /// built-in structures).
    pub fn reward(&self, reward: TandemReward) -> Result<DecomposableVector, ModelError> {
        let sizes = self.level_sizes();
        let v = match reward {
            TandemReward::Availability => DecomposableVector::new(
                vec![
                    vec![1.0; sizes[0]],
                    self.hyper.availability_values(),
                    vec![1.0; sizes[2]],
                ],
                Combiner::Product,
            )?,
            TandemReward::Throughput => {
                let mu = self.config.rates.hyper_service;
                DecomposableVector::new(
                    vec![
                        vec![0.0; sizes[0]],
                        self.hyper.busy_values().iter().map(|&b| mu * b).collect(),
                        vec![0.0; sizes[2]],
                    ],
                    Combiner::Sum,
                )?
            }
            TandemReward::MsmqQueueLength => DecomposableVector::new(
                vec![
                    vec![0.0; sizes[0]],
                    vec![0.0; sizes[1]],
                    self.msmq.queue_len_values(),
                ],
                Combiner::Sum,
            )?,
            TandemReward::Constant => DecomposableVector::constant(&sizes, 1.0)?,
        };
        Ok(v)
    }

    /// Builds the symbolic MRP with the availability reward.
    ///
    /// # Errors
    ///
    /// Propagates state-space generation and assembly errors.
    pub fn build_md_mrp(&self) -> Result<MdMrp, ModelError> {
        self.build_md_mrp_with_reward(TandemReward::Availability)
    }

    /// Builds the symbolic MRP with an explicit reward structure.
    ///
    /// # Errors
    ///
    /// Propagates state-space generation and assembly errors.
    pub fn build_md_mrp_with_reward(&self, reward: TandemReward) -> Result<MdMrp, ModelError> {
        let r = self.reward(reward)?;
        self.composed.build_md_mrp(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_core::{LumpKind, LumpRequest};

    fn small() -> TandemModel {
        TandemModel::new(TandemConfig {
            jobs: 1,
            ..TandemConfig::default()
        })
    }

    #[test]
    fn level_sizes_match_components() {
        let m = small();
        let sizes = m.level_sizes();
        assert_eq!(sizes[0], m.pools().len());
        assert_eq!(sizes[1], m.hypercube().len());
        assert_eq!(sizes[2], m.msmq().len());
    }

    #[test]
    fn mrp_builds_and_conserves_jobs() {
        let m = small();
        let mrp = m.build_md_mrp().unwrap();
        assert!(mrp.num_states() > 0);
        // Every reachable state holds exactly J jobs.
        let j = m.config().jobs as u32;
        mrp.matrix().reach().for_each_tuple(|t, _| {
            let (pm, ph) = m.pools().state(t[0]);
            let hyper_jobs: u32 = m
                .hypercube()
                .state(t[1])
                .queues
                .iter()
                .map(|&q| q as u32)
                .sum();
            let msmq_jobs: u32 = m.msmq().state(t[2]).queues.iter().map(|&q| q as u32).sum();
            assert_eq!(pm + ph + hyper_jobs + msmq_jobs, j);
        });
    }

    #[test]
    fn chain_is_irreducible_enough_to_solve() {
        use mdl_ctmc::SolverOptions;
        let m = small();
        let mrp = m.build_md_mrp().unwrap();
        let availability = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        assert!(
            availability > 0.5 && availability <= 1.0,
            "availability {availability}"
        );
    }

    #[test]
    fn compositional_lump_finds_symmetries() {
        let m = small();
        let mrp = m.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // The MSMQ level must shrink (3 interchangeable servers, rotatable
        // queues) and the hypercube level must shrink (A/A′ and the
        // six-server orbit).
        let msmq_stats = &result.stats.per_level[2];
        assert!(
            msmq_stats.lumped_size < msmq_stats.original_size,
            "MSMQ level must lump: {msmq_stats:?}"
        );
        let hyper_stats = &result.stats.per_level[1];
        assert!(
            hyper_stats.lumped_size < hyper_stats.original_size,
            "hypercube level must lump: {hyper_stats:?}"
        );
        assert!(result.stats.reduction_factor() > 4.0);
    }

    #[test]
    fn lumping_preserves_availability() {
        use mdl_ctmc::SolverOptions;
        let m = small();
        let mrp = m.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let full = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        let lumped = result
            .mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        // Both solves stop at the iterate-difference tolerance; on this
        // stiff chain that leaves ~1e-6 of residual in the measure.
        assert!((full - lumped).abs() < 1e-4, "{full} vs {lumped}");
    }

    #[test]
    fn reward_structures_materialize() {
        let m = small();
        for reward in [
            TandemReward::Availability,
            TandemReward::Throughput,
            TandemReward::MsmqQueueLength,
            TandemReward::Constant,
        ] {
            let mrp = m.build_md_mrp_with_reward(reward).unwrap();
            let v = mrp.reward_vector();
            assert_eq!(v.len(), mrp.num_states());
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
