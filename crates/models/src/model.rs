//! The event-synchronized compositional formalism.

use std::collections::HashMap;
use std::fmt;

use mdl_core::{CoreError, DecomposableVector, MdMrp};
use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdl_mdd::Mdd;

/// One component of a composed model — one level of the generated matrix
/// diagram.
#[derive(Debug, Clone)]
pub struct Component {
    /// Human-readable name.
    pub name: String,
    /// Number of local states.
    pub states: usize,
    /// Local state at time 0.
    pub initial: u32,
}

/// One timed event: a rate and, per level, an optional sparse local matrix
/// (probability/indicator weights; `None` = the level is untouched).
///
/// The event contributes the Kronecker term `rate · ⊗_i W_i` to the
/// composed state-transition rate matrix.
#[derive(Debug, Clone)]
pub struct Event {
    /// Human-readable name.
    pub name: String,
    /// Base rate `λ_e`.
    pub rate: f64,
    /// One factor slot per component.
    pub factors: Vec<Option<SparseFactor>>,
}

/// Errors from model construction and state-space generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// An event's factor list or factor sizes do not match the components.
    Malformed {
        /// Description of the mismatch.
        detail: String,
    },
    /// State-space exploration exceeded the configured state bound.
    TooManyStates {
        /// The configured bound that was exceeded.
        bound: usize,
    },
    /// Errors from the symbolic layers.
    Core(CoreError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Malformed { detail } => write!(f, "malformed model: {detail}"),
            ModelError::TooManyStates { bound } => {
                write!(
                    f,
                    "reachable state space exceeds the bound of {bound} states"
                )
            }
            ModelError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ModelError {
    fn from(e: CoreError) -> Self {
        ModelError::Core(e)
    }
}

impl From<mdl_md::MdError> for ModelError {
    fn from(e: mdl_md::MdError) -> Self {
        ModelError::Core(CoreError::Md(e))
    }
}

/// A compositional Markov model: components (one per MD level) plus
/// events. See the [crate-level docs](crate).
#[derive(Debug, Clone, Default)]
pub struct ComposedModel {
    components: Vec<Component>,
    events: Vec<Event>,
    /// Safety bound for explicit reachability exploration.
    max_states: usize,
}

impl ComposedModel {
    /// Creates an empty model with the default state bound (50 million).
    pub fn new() -> Self {
        ComposedModel {
            components: Vec::new(),
            events: Vec::new(),
            max_states: 50_000_000,
        }
    }

    /// Overrides the reachability state bound.
    pub fn with_max_states(mut self, bound: usize) -> Self {
        self.max_states = bound;
        self
    }

    /// Adds a component (a level); returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `states == 0` or `initial` is out of range.
    pub fn add_component(&mut self, name: impl Into<String>, states: usize, initial: u32) -> usize {
        assert!(states > 0, "component must have states");
        assert!((initial as usize) < states, "initial state out of range");
        self.components.push(Component {
            name: name.into(),
            states,
            initial,
        });
        self.components.len() - 1
    }

    /// Adds an event.
    ///
    /// # Errors
    ///
    /// [`ModelError::Malformed`] on arity or size mismatches, or a
    /// non-finite/negative rate.
    pub fn add_event(
        &mut self,
        name: impl Into<String>,
        rate: f64,
        factors: Vec<Option<SparseFactor>>,
    ) -> Result<(), ModelError> {
        let name = name.into();
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ModelError::Malformed {
                detail: format!("event {name}: bad rate {rate}"),
            });
        }
        if factors.len() != self.components.len() {
            return Err(ModelError::Malformed {
                detail: format!(
                    "event {name}: {} factor slots for {} components",
                    factors.len(),
                    self.components.len()
                ),
            });
        }
        for (l, f) in factors.iter().enumerate() {
            if let Some(f) = f {
                if f.size() != self.components[l].states {
                    return Err(ModelError::Malformed {
                        detail: format!(
                            "event {name}: factor size {} at level {l}, component has {}",
                            f.size(),
                            self.components[l].states
                        ),
                    });
                }
                // Weights multiply the event rate; a NaN or negative one
                // silently poisons the generator, so reject it here where
                // the event and component are still nameable.
                if let Some((row, col, w)) =
                    f.iter().find(|&(_, _, w)| !(w.is_finite() && w >= 0.0))
                {
                    return Err(ModelError::Malformed {
                        detail: format!(
                            "event {name}: invalid weight {w} at ({row}, {col}) in component {}",
                            self.components[l].name
                        ),
                    });
                }
            }
        }
        self.events.push(Event {
            name,
            rate,
            factors,
        });
        Ok(())
    }

    /// Re-rates the named event in place — the parameter-sweep primitive.
    ///
    /// Rates must stay positive (they are validated exactly like
    /// [`ComposedModel::add_event`]), which keeps the reachable state
    /// space rate-invariant: a reachability MDD computed before the
    /// re-rate is still exact afterwards, so sweeps compute it once and
    /// rebuild each point via
    /// [`ComposedModel::build_md_mrp_with_reach`].
    ///
    /// # Errors
    ///
    /// [`ModelError::Malformed`] when no event has that name or the rate
    /// is non-finite or non-positive.
    pub fn set_event_rate(&mut self, name: &str, rate: f64) -> Result<(), ModelError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ModelError::Malformed {
                detail: format!("event {name}: bad rate {rate}"),
            });
        }
        match self.events.iter_mut().find(|e| e.name == name) {
            Some(event) => {
                event.rate = rate;
                Ok(())
            }
            None => Err(ModelError::Malformed {
                detail: format!("no event named {name}"),
            }),
        }
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Local state-space sizes per level.
    pub fn sizes(&self) -> Vec<usize> {
        self.components.iter().map(|c| c.states).collect()
    }

    /// The global initial state.
    pub fn initial_state(&self) -> Vec<u32> {
        self.components.iter().map(|c| c.initial).collect()
    }

    /// The composed rate matrix as a Kronecker expression, with term
    /// aggregation applied (events identical at all-but-one level are
    /// merged — this is what keeps the MD node counts per level small).
    pub fn kronecker(&self) -> KroneckerExpr {
        let mut expr = KroneckerExpr::new(self.sizes());
        for e in &self.events {
            expr.add_term(e.rate, e.factors.clone());
        }
        expr.aggregate()
    }

    /// Explicit reachability exploration from the initial state, returning
    /// the reachable set as an MDD (the role of the symbolic state-space
    /// generator in the paper's toolchain).
    ///
    /// # Errors
    ///
    /// [`ModelError::TooManyStates`] if the bound is exceeded.
    pub fn reachable(&self) -> Result<Mdd, ModelError> {
        let sizes = self.sizes();
        let num_levels = sizes.len();

        // Per event and level: factor rows grouped for O(1) successor lookup.
        type RowMap = HashMap<u32, Vec<u32>>;
        let event_rows: Vec<Vec<Option<RowMap>>> = self
            .events
            .iter()
            .map(|e| {
                e.factors
                    .iter()
                    .map(|f| {
                        f.as_ref().map(|f| {
                            let mut rows: RowMap = HashMap::new();
                            for (r, c, v) in f.iter() {
                                if v != 0.0 {
                                    rows.entry(r).or_default().push(c);
                                }
                            }
                            rows
                        })
                    })
                    .collect()
            })
            .collect();

        // Mixed-radix packing for the visited set.
        let mut radix = vec![1u128; num_levels];
        for l in (0..num_levels.saturating_sub(1)).rev() {
            radix[l] = radix[l + 1] * sizes[l + 1] as u128;
        }
        let pack = |s: &[u32]| -> u128 { s.iter().zip(&radix).map(|(&v, &r)| v as u128 * r).sum() };

        let initial = self.initial_state();
        let mut visited: HashMap<u128, ()> = HashMap::new();
        visited.insert(pack(&initial), ());
        let mut frontier: Vec<Vec<u32>> = vec![initial];
        let mut all: Vec<Vec<u32>> = vec![frontier[0].clone()];

        let mut options: Vec<Vec<u32>> = vec![Vec::new(); num_levels];
        while let Some(state) = frontier.pop() {
            for rows in &event_rows {
                // Per-level successor options; an empty list disables the event.
                let mut enabled = true;
                for (l, rm) in rows.iter().enumerate() {
                    options[l].clear();
                    match rm {
                        None => options[l].push(state[l]),
                        Some(rm) => match rm.get(&state[l]) {
                            Some(cols) => options[l].extend_from_slice(cols),
                            None => {
                                enabled = false;
                                break;
                            }
                        },
                    }
                }
                if !enabled {
                    continue;
                }
                // Cross product of per-level options.
                let mut next = vec![0u32; num_levels];
                let mut idx = vec![0usize; num_levels];
                'outer: loop {
                    for l in 0..num_levels {
                        next[l] = options[l][idx[l]];
                    }
                    let key = pack(&next);
                    if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(key) {
                        e.insert(());
                        if visited.len() > self.max_states {
                            return Err(ModelError::TooManyStates {
                                bound: self.max_states,
                            });
                        }
                        frontier.push(next.clone());
                        all.push(next.clone());
                    }
                    // Advance the mixed-radix option counter.
                    for l in (0..num_levels).rev() {
                        idx[l] += 1;
                        if idx[l] < options[l].len() {
                            continue 'outer;
                        }
                        idx[l] = 0;
                    }
                    break;
                }
            }
        }

        all.sort_unstable();
        all.dedup();
        Ok(Mdd::from_sorted_unique_tuples(sizes, &all))
    }

    /// Builds the symbolic MRP: matrix diagram from the aggregated
    /// Kronecker expression, MDD of reachable states, the given
    /// decomposable reward, and a point-mass initial distribution on the
    /// model's initial state.
    ///
    /// # Errors
    ///
    /// Propagates state-space and symbolic-layer errors.
    pub fn build_md_mrp(&self, reward: DecomposableVector) -> Result<MdMrp, ModelError> {
        let initial = DecomposableVector::point_mass(&self.sizes(), &self.initial_state())?;
        self.build_md_mrp_with_initial(reward, initial)
    }

    /// [`ComposedModel::build_md_mrp`] with an explicit (product-form)
    /// initial distribution instead of the point mass on the components'
    /// initial states — e.g. a class-uniform distribution for exact
    /// lumping.
    ///
    /// # Errors
    ///
    /// Propagates state-space and symbolic-layer errors (including
    /// validation that the distribution sums to 1 over reachable states).
    pub fn build_md_mrp_with_initial(
        &self,
        reward: DecomposableVector,
        initial: DecomposableVector,
    ) -> Result<MdMrp, ModelError> {
        let md = self.kronecker().to_md()?;
        let reach = self.reachable()?;
        let matrix = MdMatrix::new(md, reach)?;
        Ok(MdMrp::new(matrix, reward, initial)?)
    }

    /// [`ComposedModel::build_md_mrp`] with a precomputed reachability
    /// MDD instead of a fresh exploration. For sweeps: reachability is
    /// rate-invariant (rates are validated positive), so one
    /// [`ComposedModel::reachable`] result serves every re-rated variant
    /// of the model — exploration is usually the dominant build cost.
    ///
    /// The MDD's validity is the caller's obligation; structural
    /// mismatches (wrong level sizes) still error in the symbolic layer.
    ///
    /// # Errors
    ///
    /// Propagates symbolic-layer errors.
    pub fn build_md_mrp_with_reach(
        &self,
        reward: DecomposableVector,
        reach: Mdd,
    ) -> Result<MdMrp, ModelError> {
        let initial = DecomposableVector::point_mass(&self.sizes(), &self.initial_state())?;
        let md = self.kronecker().to_md()?;
        let matrix = MdMatrix::new(md, reach)?;
        Ok(MdMrp::new(matrix, reward, initial)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::RateMatrix;

    /// Two 2-state components with one synchronized toggle and one local
    /// event each.
    fn toy() -> ComposedModel {
        let mut m = ComposedModel::new();
        let a = m.add_component("a", 2, 0);
        let b = m.add_component("b", 2, 0);
        assert_eq!((a, b), (0, 1));
        let mut up = SparseFactor::new(2);
        up.push(0, 1, 1.0);
        let mut down = SparseFactor::new(2);
        down.push(1, 0, 1.0);
        // Synchronized: both move up together.
        m.add_event("sync_up", 2.0, vec![Some(up.clone()), Some(up)])
            .unwrap();
        // Local resets.
        m.add_event("a_down", 1.0, vec![Some(down.clone()), None])
            .unwrap();
        m.add_event("b_down", 1.5, vec![None, Some(down)]).unwrap();
        m
    }

    #[test]
    fn reachability_explores_all() {
        let m = toy();
        let reach = m.reachable().unwrap();
        // From (0,0): sync to (1,1); resets give (0,1) and (1,0).
        assert_eq!(reach.count(), 4);
    }

    #[test]
    fn kronecker_matches_reachable_dynamics() {
        let m = toy();
        let mrp = m
            .build_md_mrp(mdl_core::DecomposableVector::constant(&[2, 2], 1.0).unwrap())
            .unwrap();
        let flat = mrp.matrix().flatten();
        let reach = mrp.matrix().reach();
        // (0,0) -> (1,1) at rate 2.0.
        let from = reach.index_of(&[0, 0]).unwrap() as usize;
        let to = reach.index_of(&[1, 1]).unwrap() as usize;
        assert_eq!(flat.get(from, to), 2.0);
        // (1,1) -> (0,1) at 1.0 and (1,0) at 1.5.
        let s11 = reach.index_of(&[1, 1]).unwrap() as usize;
        assert_eq!(
            flat.get(s11, reach.index_of(&[0, 1]).unwrap() as usize),
            1.0
        );
        assert_eq!(
            flat.get(s11, reach.index_of(&[1, 0]).unwrap() as usize),
            1.5
        );
    }

    #[test]
    fn re_rated_model_reuses_reachability() {
        let mut m = toy();
        assert!(m.set_event_rate("no_such_event", 1.0).is_err());
        assert!(m.set_event_rate("sync_up", 0.0).is_err());
        assert!(m.set_event_rate("sync_up", f64::NAN).is_err());

        // Reach computed at the original rates stays exact after a
        // re-rate, and the rebuilt matrix is bit-identical to a from-
        // scratch build of the re-rated model.
        let reach = m.reachable().unwrap();
        m.set_event_rate("sync_up", 5.0).unwrap();
        let reward = mdl_core::DecomposableVector::constant(&[2, 2], 1.0).unwrap();
        let with_reach = m.build_md_mrp_with_reach(reward.clone(), reach).unwrap();
        let fresh = m.build_md_mrp(reward).unwrap();
        assert_eq!(
            with_reach
                .matrix()
                .flatten()
                .max_abs_diff(&fresh.matrix().flatten()),
            0.0
        );
        let reach = with_reach.matrix().reach();
        let from = reach.index_of(&[0, 0]).unwrap() as usize;
        let to = reach.index_of(&[1, 1]).unwrap() as usize;
        assert_eq!(with_reach.matrix().flatten().get(from, to), 5.0);
    }

    #[test]
    fn disabled_events_block_states() {
        let mut m = ComposedModel::new();
        m.add_component("only", 3, 0);
        let mut step = SparseFactor::new(3);
        step.push(0, 1, 1.0); // no way past state 1
        m.add_event("step", 1.0, vec![Some(step)]).unwrap();
        let reach = m.reachable().unwrap();
        assert_eq!(reach.count(), 2);
        assert!(!reach.contains(&[2]));
    }

    #[test]
    fn state_bound_enforced() {
        let mut m = ComposedModel::new().with_max_states(2);
        m.add_component("big", 10, 0);
        let mut step = SparseFactor::new(10);
        for s in 0..9 {
            step.push(s, s + 1, 1.0);
        }
        m.add_event("step", 1.0, vec![Some(step)]).unwrap();
        assert!(matches!(
            m.reachable(),
            Err(ModelError::TooManyStates { .. })
        ));
    }

    #[test]
    fn malformed_events_rejected() {
        let mut m = ComposedModel::new();
        m.add_component("a", 2, 0);
        assert!(m.add_event("no_rate", 0.0, vec![None]).is_err());
        assert!(m.add_event("bad_arity", 1.0, vec![None, None]).is_err());
        let wrong = SparseFactor::new(3);
        assert!(m.add_event("bad_size", 1.0, vec![Some(wrong)]).is_err());
    }

    #[test]
    fn invalid_factor_weights_rejected_with_context() {
        // Non-finite weights already panic in SparseFactor::push, so the
        // reachable invalid case is a negative weight.
        let mut m = ComposedModel::new();
        m.add_component("pump", 2, 0);
        let mut f = SparseFactor::new(2);
        f.push(0, 1, -0.5);
        let err = m.add_event("fail", 1.0, vec![Some(f)]).unwrap_err();
        let ModelError::Malformed { detail } = &err else {
            panic!("expected Malformed, got {err:?}");
        };
        assert!(detail.contains("fail"), "{detail}");
        assert!(detail.contains("pump"), "{detail}");
        assert!(detail.contains("-0.5"), "{detail}");
        // NaN and infinities in the rate itself are already rejected.
        let mut m = ComposedModel::new();
        m.add_component("pump", 2, 0);
        assert!(m.add_event("nan_rate", f64::NAN, vec![None]).is_err());
        assert!(m.add_event("inf_rate", f64::INFINITY, vec![None]).is_err());
    }

    #[test]
    fn branching_events_explore_all_branches() {
        let mut m = ComposedModel::new();
        m.add_component("c", 4, 0);
        let mut branch = SparseFactor::new(4);
        branch.push(0, 1, 0.3);
        branch.push(0, 2, 0.3);
        branch.push(0, 3, 0.4);
        m.add_event("branch", 1.0, vec![Some(branch)]).unwrap();
        let reach = m.reachable().unwrap();
        assert_eq!(reach.count(), 4);
    }

    #[test]
    fn row_sums_are_total_exit_rates() {
        let m = toy();
        let mrp = m
            .build_md_mrp(mdl_core::DecomposableVector::constant(&[2, 2], 1.0).unwrap())
            .unwrap();
        let sums = mrp.matrix().row_sums();
        let reach = mrp.matrix().reach();
        // State (0,0): only sync_up enabled -> 2.0.
        assert_eq!(sums[reach.index_of(&[0, 0]).unwrap() as usize], 2.0);
        // State (1,1): both resets -> 2.5.
        assert_eq!(sums[reach.index_of(&[1, 1]).unwrap() as usize], 2.5);
    }
}
