//! A deep-MD stress model: a controller plus `G` identical machine banks,
//! one MD level per bank (`G + 1` levels in total).
//!
//! Each bank is a bitmask of `M` machines (failures mode-dependent, shared
//! repair facility per bank), so every bank level carries the full `2^M →
//! M + 1` within-level symmetry. The banks themselves are also mutually
//! interchangeable — a *cross-level* symmetry that level-local lumping
//! cannot exploit (the complementary model-level technique of the paper's
//! reference \[10\] would), which makes this model a precise probe of
//! where the paper's approach does and does not help:
//!
//! * unlumped states: `2 · 2^(G·M)`;
//! * compositionally lumped: `2 · (M+1)^G` (each level collapses);
//! * true optimum (with bank interchange): `2 · C(M+G, G)`-ish, smaller
//!   still.
//!
//! It is also the only model in the workspace with more than three MD
//! levels, exercising the level-generic paths of the whole stack.

use mdl_core::{Combiner, DecomposableVector, MdMrp};
use mdl_md::SparseFactor;

use crate::model::{ComposedModel, ModelError};

/// Parameters of the multi-bank model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiBankConfig {
    /// Number of banks `G` (one MD level each).
    pub banks: usize,
    /// Machines per bank `M` (each bank level has `2^M` states).
    pub machines_per_bank: usize,
    /// Per-machine failure rate in normal mode.
    pub failure: f64,
    /// Repair rate per bank (uniform over the bank's failed machines).
    pub repair: f64,
    /// Controller mode-switch rate.
    pub mode_switch: f64,
    /// Failure multiplier in degraded mode.
    pub degraded_factor: f64,
}

impl Default for MultiBankConfig {
    fn default() -> Self {
        MultiBankConfig {
            banks: 3,
            machines_per_bank: 3,
            failure: 0.05,
            repair: 0.8,
            mode_switch: 0.1,
            degraded_factor: 3.0,
        }
    }
}

/// The assembled multi-bank model.
#[derive(Debug, Clone)]
pub struct MultiBankModel {
    config: MultiBankConfig,
    composed: ComposedModel,
}

impl MultiBankModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (`banks == 0`,
    /// `machines_per_bank == 0`, or banks of more than 12 machines).
    pub fn new(config: MultiBankConfig) -> Self {
        assert!(config.banks >= 1, "need at least one bank");
        assert!(
            (1..=12).contains(&config.machines_per_bank),
            "bank levels are 2^M states"
        );
        let m = config.machines_per_bank;
        let n = 1usize << m;
        let levels = config.banks + 1;

        let mut composed = ComposedModel::new();
        composed.add_component("controller", 2, 0);
        for g in 0..config.banks {
            composed.add_component(format!("bank{g}"), n, 0);
        }

        let mut toggle = SparseFactor::new(2);
        toggle.push(0, 1, 1.0);
        toggle.push(1, 0, 1.0);
        let mut factors: Vec<Option<SparseFactor>> = vec![None; levels];
        factors[0] = Some(toggle);
        composed
            .add_event("mode_switch", config.mode_switch, factors)
            .expect("valid event");

        let mut fail = SparseFactor::new(n);
        let mut repair = SparseFactor::new(n);
        for mask in 0..n {
            let failed = mask.count_ones() as f64;
            for u in 0..m {
                if mask & (1 << u) == 0 {
                    fail.push(mask, mask | (1 << u), 1.0);
                } else {
                    repair.push(mask, mask & !(1 << u), 1.0 / failed);
                }
            }
        }
        let mut normal_gate = SparseFactor::new(2);
        normal_gate.push(0, 0, 1.0);
        let mut degraded_gate = SparseFactor::new(2);
        degraded_gate.push(1, 1, 1.0);

        for g in 0..config.banks {
            let level = g + 1;
            let mut f = vec![None; levels];
            f[0] = Some(normal_gate.clone());
            f[level] = Some(fail.clone());
            composed
                .add_event(format!("bank{g}_fail_normal"), config.failure, f)
                .expect("valid event");
            let mut f = vec![None; levels];
            f[0] = Some(degraded_gate.clone());
            f[level] = Some(fail.clone());
            composed
                .add_event(
                    format!("bank{g}_fail_degraded"),
                    config.failure * config.degraded_factor,
                    f,
                )
                .expect("valid event");
            let mut f = vec![None; levels];
            f[level] = Some(repair.clone());
            composed
                .add_event(format!("bank{g}_repair"), config.repair, f)
                .expect("valid event");
        }

        MultiBankModel { config, composed }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiBankConfig {
        &self.config
    }

    /// The underlying composed model.
    pub fn composed(&self) -> &ComposedModel {
        &self.composed
    }

    /// Builds the symbolic MRP; the reward is the total number of up
    /// machines across all banks (sum-combined).
    ///
    /// # Errors
    ///
    /// Propagates assembly errors.
    pub fn build_md_mrp(&self) -> Result<MdMrp, ModelError> {
        let m = self.config.machines_per_bank;
        let n = 1usize << m;
        let up_counts: Vec<f64> = (0..n)
            .map(|mask| (m as u32 - (mask as u32).count_ones()) as f64)
            .collect();
        let mut tables = vec![vec![0.0, 0.0]];
        for _ in 0..self.config.banks {
            tables.push(up_counts.clone());
        }
        let reward = DecomposableVector::new(tables, Combiner::Sum)?;
        self.composed.build_md_mrp(reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_core::{verify, LumpKind, LumpRequest};
    use mdl_linalg::Tolerance;

    #[test]
    fn five_level_md_lumps_every_bank() {
        let model = MultiBankModel::new(MultiBankConfig {
            banks: 4,
            machines_per_bank: 3,
            ..MultiBankConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        assert_eq!(mrp.matrix().md().num_levels(), 5);
        assert_eq!(mrp.num_states(), 2 * 8usize.pow(4));
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        for level in 1..=4 {
            assert_eq!(result.partitions[level].num_classes(), 4, "level {level}");
        }
        assert_eq!(result.stats.lumped_states, 2 * 4u64.pow(4));
        verify::verify_ordinary(&mrp, &result, Tolerance::default()).unwrap();
    }

    #[test]
    fn cross_level_bank_symmetry_is_left_on_the_table() {
        // The paper's documented trade-off, measured: flat optimal lumping
        // additionally merges states that permute the identical banks.
        use mdl_statelump::{ordinary_partition, LumpOptions};
        let model = MultiBankModel::new(MultiBankConfig {
            banks: 2,
            machines_per_bank: 2,
            ..MultiBankConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let comp = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert_eq!(comp.stats.lumped_states, 2 * 9);
        let optimal = ordinary_partition(
            &mrp.matrix().flatten(),
            &mrp.reward_vector(),
            &LumpOptions::default(),
        );
        // Bank interchange: (a, b) ≈ (b, a) merges the off-diagonal count
        // pairs: 2 · (3·3 − 3)/2 = 6 fewer classes.
        assert_eq!(optimal.num_classes(), 2 * 6);
    }

    #[test]
    fn measures_preserved_on_deep_lump() {
        use mdl_ctmc::SolverOptions;
        let model = MultiBankModel::new(MultiBankConfig::default());
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let full = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        let lumped = result
            .mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        assert!((full - lumped).abs() < 1e-7, "{full} vs {lumped}");
        let max = (model.config().banks * model.config().machines_per_bank) as f64;
        assert!(full > 0.0 && full < max);
    }

    #[test]
    fn single_bank_reduces_to_shared_repair_shape() {
        let model = MultiBankModel::new(MultiBankConfig {
            banks: 1,
            machines_per_bank: 5,
            ..MultiBankConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert_eq!(result.stats.lumped_states, 2 * 6);
    }
}
