//! Discrete-event simulation of composed models — an *independent*
//! validation axis for the numerical stack: the simulator never touches
//! matrix diagrams, MDDs or solvers, only the model's events, so agreement
//! between simulated and numerically computed measures cross-checks the
//! entire symbolic pipeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mdl_core::DecomposableVector;

use crate::model::ComposedModel;

/// Options for a simulation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// RNG seed (experiments are reproducible).
    pub seed: u64,
    /// Number of independent replications (transient/accumulated) or
    /// batches (stationary).
    pub replications: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0x5EED,
            replications: 1000,
        }
    }
}

/// A Monte Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEstimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Replications used.
    pub replications: usize,
}

impl SimEstimate {
    fn from_samples(samples: &[f64]) -> SimEstimate {
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n.max(2) - 1) as f64;
        SimEstimate {
            mean,
            std_error: (var / n as f64).sqrt(),
            replications: n,
        }
    }
}

impl ComposedModel {
    /// All enabled transitions of `state` as `(successor, rate)` pairs —
    /// the semantics the simulator executes (also handy for debugging
    /// models).
    pub fn transitions(&self, state: &[u32]) -> Vec<(Vec<u32>, f64)> {
        assert_eq!(state.len(), self.sizes().len(), "state arity");
        let mut out = Vec::new();
        for event in self.events() {
            // Per-level (target, weight) options.
            let mut options: Vec<Vec<(u32, f64)>> = Vec::with_capacity(state.len());
            let mut enabled = true;
            for (l, factor) in event.factors.iter().enumerate() {
                match factor {
                    None => options.push(vec![(state[l], 1.0)]),
                    Some(f) => {
                        let row: Vec<(u32, f64)> = f
                            .iter()
                            .filter(|&(r, _, v)| r == state[l] && v != 0.0)
                            .map(|(_, c, v)| (c, v))
                            .collect();
                        if row.is_empty() {
                            enabled = false;
                            break;
                        }
                        options.push(row);
                    }
                }
            }
            if !enabled {
                continue;
            }
            // Cross product.
            let mut idx = vec![0usize; options.len()];
            'outer: loop {
                let mut succ = Vec::with_capacity(options.len());
                let mut weight = event.rate;
                for (l, &i) in idx.iter().enumerate() {
                    let (target, w) = options[l][i];
                    succ.push(target);
                    weight *= w;
                }
                if weight != 0.0 {
                    out.push((succ, weight));
                }
                for l in (0..options.len()).rev() {
                    idx[l] += 1;
                    if idx[l] < options[l].len() {
                        continue 'outer;
                    }
                    idx[l] = 0;
                }
                break;
            }
        }
        out
    }

    /// Simulates one trajectory from the initial state up to `horizon`,
    /// returning `(reward at horizon, reward integrated over [0, horizon])`.
    fn simulate_one(
        &self,
        reward: &DecomposableVector,
        horizon: f64,
        rng: &mut StdRng,
    ) -> (f64, f64) {
        let mut state = self.initial_state();
        let mut time = 0.0;
        let mut integral = 0.0;
        loop {
            let r = reward.evaluate(&state);
            let transitions = self.transitions(&state);
            let total: f64 = transitions.iter().map(|&(_, w)| w).sum();
            if total <= 0.0 {
                // Absorbing: reward accrues to the horizon.
                integral += r * (horizon - time);
                return (r, integral);
            }
            let sojourn = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / total;
            if time + sojourn >= horizon {
                integral += r * (horizon - time);
                return (r, integral);
            }
            integral += r * sojourn;
            time += sojourn;
            // Choose the next state proportionally to rate.
            let mut pick = rng.gen::<f64>() * total;
            let mut chosen = transitions.len() - 1;
            for (i, (_, w)) in transitions.iter().enumerate() {
                pick -= w;
                if pick <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            state = transitions[chosen].0.clone();
        }
    }

    /// Monte Carlo estimate of the expected **instantaneous** reward at
    /// time `horizon` (compare with transient uniformization).
    pub fn simulate_transient_reward(
        &self,
        reward: &DecomposableVector,
        horizon: f64,
        options: &SimOptions,
    ) -> SimEstimate {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let samples: Vec<f64> = (0..options.replications.max(1))
            .map(|_| self.simulate_one(reward, horizon, &mut rng).0)
            .collect();
        SimEstimate::from_samples(&samples)
    }

    /// Monte Carlo estimate of the expected **accumulated** reward over
    /// `[0, horizon]` (compare with `mdl_ctmc::accumulated_reward`).
    pub fn simulate_accumulated_reward(
        &self,
        reward: &DecomposableVector,
        horizon: f64,
        options: &SimOptions,
    ) -> SimEstimate {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let samples: Vec<f64> = (0..options.replications.max(1))
            .map(|_| self.simulate_one(reward, horizon, &mut rng).1)
            .collect();
        SimEstimate::from_samples(&samples)
    }

    /// Long-run time-average reward from one long trajectory split into
    /// batches (after discarding the first batch as warm-up) — compare
    /// with the stationary solvers.
    pub fn simulate_stationary_reward(
        &self,
        reward: &DecomposableVector,
        batch_length: f64,
        options: &SimOptions,
    ) -> SimEstimate {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let batches = options.replications.max(2);
        let mut state = self.initial_state();
        let mut samples = Vec::with_capacity(batches);
        for batch in 0..=batches {
            let mut integral = 0.0;
            let mut time = 0.0;
            while time < batch_length {
                let r = reward.evaluate(&state);
                let transitions = self.transitions(&state);
                let total: f64 = transitions.iter().map(|&(_, w)| w).sum();
                if total <= 0.0 {
                    integral += r * (batch_length - time);
                    break;
                }
                let sojourn = (-rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / total)
                    .min(batch_length - time);
                integral += r * sojourn;
                time += sojourn;
                if time < batch_length {
                    let mut pick = rng.gen::<f64>() * total;
                    let mut chosen = transitions.len() - 1;
                    for (i, (_, w)) in transitions.iter().enumerate() {
                        pick -= w;
                        if pick <= 0.0 {
                            chosen = i;
                            break;
                        }
                    }
                    state = transitions[chosen].0.clone();
                }
            }
            if batch > 0 {
                samples.push(integral / batch_length); // batch 0 = warm-up
            }
        }
        SimEstimate::from_samples(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_core::Combiner;
    use mdl_ctmc::{SolverOptions, TransientOptions};
    use mdl_md::SparseFactor;

    /// Two-state chain 0 -> 1 at rate 2, 1 -> 0 at rate 1.
    fn two_state() -> (ComposedModel, DecomposableVector) {
        let mut m = ComposedModel::new();
        m.add_component("c", 2, 0);
        let mut up = SparseFactor::new(2);
        up.push(0, 1, 1.0);
        let mut down = SparseFactor::new(2);
        down.push(1, 0, 1.0);
        m.add_event("up", 2.0, vec![Some(up)]).unwrap();
        m.add_event("down", 1.0, vec![Some(down)]).unwrap();
        let reward = DecomposableVector::new(vec![vec![0.0, 1.0]], Combiner::Sum).unwrap();
        (m, reward)
    }

    #[test]
    fn transitions_enumerate_competing_events() {
        let (m, _) = two_state();
        let t0 = m.transitions(&[0]);
        assert_eq!(t0, vec![(vec![1], 2.0)]);
        let t1 = m.transitions(&[1]);
        assert_eq!(t1, vec![(vec![0], 1.0)]);
    }

    #[test]
    fn transient_estimate_matches_analytic() {
        let (m, reward) = two_state();
        let t = 0.8;
        // p₁(t) = 2/3 (1 − e^{−3t})
        let expected = 2.0 / 3.0 * (1.0 - (-3.0f64 * t).exp());
        let est = m.simulate_transient_reward(
            &reward,
            t,
            &SimOptions {
                seed: 42,
                replications: 4000,
            },
        );
        assert!(
            (est.mean - expected).abs() < 4.0 * est.std_error + 0.01,
            "{} vs {expected} (se {})",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn accumulated_estimate_matches_numerical() {
        let (m, reward) = two_state();
        let t = 2.0;
        let mrp = m.build_md_mrp(reward.clone()).unwrap();
        let numerical = mrp
            .expected_accumulated_reward(t, &TransientOptions::default())
            .unwrap();
        let est = m.simulate_accumulated_reward(
            &reward,
            t,
            &SimOptions {
                seed: 7,
                replications: 4000,
            },
        );
        assert!(
            (est.mean - numerical).abs() < 4.0 * est.std_error + 0.02,
            "{} vs {numerical} (se {})",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn stationary_estimate_matches_solver() {
        let (m, reward) = two_state();
        let mrp = m.build_md_mrp(reward.clone()).unwrap();
        let numerical = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        let est = m.simulate_stationary_reward(
            &reward,
            50.0,
            &SimOptions {
                seed: 3,
                replications: 40,
            },
        );
        assert!(
            (est.mean - numerical).abs() < 4.0 * est.std_error + 0.02,
            "{} vs {numerical} (se {})",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn simulation_validates_lumped_tandem_availability() {
        use crate::tandem::{TandemConfig, TandemModel, TandemReward};
        use mdl_core::{LumpKind, LumpRequest};
        let model = TandemModel::new(TandemConfig {
            jobs: 1,
            ..TandemConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let lumped = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let numerical = lumped
            .mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        let reward = model.reward(TandemReward::Availability).unwrap();
        let est = model.composed().simulate_stationary_reward(
            &reward,
            200.0,
            &SimOptions {
                seed: 11,
                replications: 30,
            },
        );
        assert!(
            (est.mean - numerical).abs() < 4.0 * est.std_error + 0.02,
            "simulated {} vs numerical {numerical} (se {})",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn absorbing_states_handled() {
        let mut m = ComposedModel::new();
        m.add_component("c", 2, 0);
        let mut go = SparseFactor::new(2);
        go.push(0, 1, 1.0);
        m.add_event("go", 5.0, vec![Some(go)]).unwrap();
        let reward = DecomposableVector::new(vec![vec![0.0, 1.0]], Combiner::Sum).unwrap();
        let est = m.simulate_transient_reward(
            &reward,
            10.0,
            &SimOptions {
                seed: 1,
                replications: 100,
            },
        );
        // After t = 10 the chain is almost surely absorbed in state 1.
        assert!(est.mean > 0.99);
    }
}
