//! A machine-repair showcase model: `M` identical machines sharing one
//! repair facility, under a two-mode controller.
//!
//! Level 1 is a controller that alternates between `Normal` and `Degraded`
//! modes (machines fail twice as fast in degraded mode); level 2 is the
//! vector of `M` machine up/down flags (`2^M` local states). Because the
//! machines are fully interchangeable, the compositional lumping algorithm
//! collapses level 2 to the `M + 1` down-counts — an exponential-to-linear
//! reduction, the cleanest possible demonstration of what level-local
//! lumping buys.

use mdl_core::{Combiner, DecomposableVector, MdMrp};
use mdl_md::SparseFactor;

use crate::model::{ComposedModel, ModelError};

/// Parameters of the shared-repair model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedRepairConfig {
    /// Number of machines `M` (level 2 has `2^M` states).
    pub machines: usize,
    /// Per-machine failure rate in normal mode.
    pub failure: f64,
    /// Repair facility rate (uniform choice among failed machines).
    pub repair: f64,
    /// Controller mode-switch rate (both directions).
    pub mode_switch: f64,
    /// Failure-rate multiplier in degraded mode.
    pub degraded_factor: f64,
    /// Relative per-machine spread of the failure weights: machine `i`
    /// fails with factor weight `1 + failure_spread · i`. Zero (the
    /// default) keeps the machines exactly interchangeable; a small
    /// positive spread makes the model *tolerance*-lumpable only — the
    /// configuration certified `--bounds` solves exist for.
    pub failure_spread: f64,
}

impl Default for SharedRepairConfig {
    fn default() -> Self {
        SharedRepairConfig {
            machines: 6,
            failure: 0.1,
            repair: 1.0,
            mode_switch: 0.02,
            degraded_factor: 2.0,
            failure_spread: 0.0,
        }
    }
}

/// The assembled shared-repair model.
#[derive(Debug, Clone)]
pub struct SharedRepairModel {
    config: SharedRepairConfig,
    composed: ComposedModel,
}

impl SharedRepairModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0` or `machines > 20` (the level is `2^M`).
    pub fn new(config: SharedRepairConfig) -> Self {
        assert!(config.machines >= 1, "need at least one machine");
        assert!(config.machines <= 20, "2^M level would be enormous");
        let m = config.machines;
        let n = 1usize << m;

        let mut composed = ComposedModel::new();
        composed.add_component("controller", 2, 0);
        composed.add_component("machines", n, 0); // bitmask; 0 = all up

        // Controller mode switches (local).
        let mut toggle = SparseFactor::new(2);
        toggle.push(0, 1, 1.0);
        toggle.push(1, 0, 1.0);
        composed
            .add_event("mode_switch", config.mode_switch, vec![Some(toggle), None])
            .expect("valid event");

        // Failures, gated by controller mode (two synchronized terms).
        let mut normal_gate = SparseFactor::new(2);
        normal_gate.push(0, 0, 1.0);
        let mut degraded_gate = SparseFactor::new(2);
        degraded_gate.push(1, 1, 1.0);
        let mut fail = SparseFactor::new(n);
        for mask in 0..n {
            for i in 0..m {
                if mask & (1 << i) == 0 {
                    let weight = 1.0 + config.failure_spread * i as f64;
                    fail.push(mask, mask | (1 << i), weight);
                }
            }
        }
        composed
            .add_event(
                "fail_normal",
                config.failure,
                vec![Some(normal_gate), Some(fail.clone())],
            )
            .expect("valid event");
        composed
            .add_event(
                "fail_degraded",
                config.failure * config.degraded_factor,
                vec![Some(degraded_gate), Some(fail)],
            )
            .expect("valid event");

        // Shared repair facility: uniform among failed (local at level 2).
        let mut repair = SparseFactor::new(n);
        for mask in 1..n {
            let failed = mask.count_ones() as f64;
            for i in 0..m {
                if mask & (1 << i) != 0 {
                    repair.push(mask, mask & !(1 << i), config.repair / failed);
                }
            }
        }
        composed
            .add_event("repair", 1.0, vec![None, Some(repair)])
            .expect("valid event");

        SharedRepairModel { config, composed }
    }

    /// The configuration.
    pub fn config(&self) -> &SharedRepairConfig {
        &self.config
    }

    /// The underlying composed model.
    pub fn composed(&self) -> &ComposedModel {
        &self.composed
    }

    /// Builds the symbolic MRP. The reward is the number of **up**
    /// machines (sum-combined).
    ///
    /// # Errors
    ///
    /// Propagates assembly errors.
    pub fn build_md_mrp(&self) -> Result<MdMrp, ModelError> {
        let m = self.config.machines;
        let n = 1usize << m;
        let up_counts: Vec<f64> = (0..n)
            .map(|mask| (m as u32 - (mask as u32).count_ones()) as f64)
            .collect();
        let reward = DecomposableVector::new(vec![vec![0.0, 0.0], up_counts], Combiner::Sum)?;
        self.composed.build_md_mrp(reward)
    }

    /// The partition of level 2 by down-count — the symmetry the lumping
    /// algorithm is expected to find (or better).
    pub fn down_count_partition(&self) -> mdl_partition::Partition {
        let n = 1usize << self.config.machines;
        mdl_partition::Partition::from_key_fn(n, |mask| (mask as u32).count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_core::{LumpKind, LumpRequest};

    #[test]
    fn exponential_level_collapses_to_counts() {
        let model = SharedRepairModel::new(SharedRepairConfig {
            machines: 5,
            ..SharedRepairConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        assert_eq!(mrp.num_states(), 2 * 32);
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // 2^5 = 32 machine states -> 6 down-counts.
        assert_eq!(result.partitions[1].num_classes(), 6);
        assert_eq!(result.stats.lumped_states, 12);
        // And the found partition is exactly the down-count partition.
        let mut expected = model.down_count_partition();
        expected.canonicalize();
        assert_eq!(result.partitions[1], expected);
    }

    #[test]
    fn lumping_preserves_mean_up_machines() {
        use mdl_ctmc::SolverOptions;
        let model = SharedRepairModel::new(SharedRepairConfig {
            machines: 4,
            ..SharedRepairConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let full = mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        let lumped = result
            .mrp
            .expected_stationary_reward(&SolverOptions::default())
            .unwrap();
        assert!((full - lumped).abs() < 1e-7);
        // Sanity: between 0 and M machines up on average, close to M for
        // these rates.
        assert!(full > 3.0 && full < 4.0);
    }

    #[test]
    fn degraded_mode_lowers_uptime() {
        use mdl_ctmc::SolverOptions;
        let mk = |factor| {
            let model = SharedRepairModel::new(SharedRepairConfig {
                machines: 4,
                degraded_factor: factor,
                ..SharedRepairConfig::default()
            });
            let mrp = model.build_md_mrp().unwrap();
            mrp.expected_stationary_reward(&SolverOptions::default())
                .unwrap()
        };
        assert!(mk(8.0) < mk(1.0));
    }

    #[test]
    fn failure_spread_breaks_exact_lumping_but_not_tolerance_lumping() {
        let model = SharedRepairModel::new(SharedRepairConfig {
            machines: 4,
            failure_spread: 1e-4,
            ..SharedRepairConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        // Exactly, the machines are now distinguishable: no reduction.
        let exact = LumpRequest::new(LumpKind::Ordinary)
            .tolerance(mdl_linalg::Tolerance::Exact)
            .run(&mrp)
            .unwrap();
        assert_eq!(exact.partitions[1].num_classes(), 16);
        // At two decimals the spread is absorbed and the down-count
        // partition reappears, with the absorbed deviation on record.
        let tol = LumpRequest::new(LumpKind::Ordinary)
            .tolerance(mdl_linalg::Tolerance::Decimals(2))
            .run(&mrp)
            .unwrap();
        assert_eq!(tol.partitions[1].num_classes(), 5);
        assert!(tol.stats.max_rate_deviation > 0.0);
    }

    #[test]
    fn controller_level_does_not_lump() {
        let model = SharedRepairModel::new(SharedRepairConfig {
            machines: 3,
            ..SharedRepairConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // Normal and degraded modes behave differently: no level-1 lumping.
        assert_eq!(result.partitions[0].num_classes(), 2);
    }
}
