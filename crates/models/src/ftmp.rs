//! A fault-tolerant multiprocessor (FTMP) dependability model, after the
//! classic UltraSAN/Möbius benchmark family.
//!
//! Three MD levels:
//!
//! 1. a shared **recovery controller** cycling through
//!    `Normal → Recovering → Normal` (repairs only progress while the
//!    controller is in recovery mode);
//! 2. a bank of `p` identical **processors** (bitmask level — each up or
//!    down), of which `p_need` must be up;
//! 3. a bank of `m` identical **memory modules** (bitmask level), of which
//!    `m_need` must be up.
//!
//! The system is operational when both quorums hold. Both banks are fully
//! symmetric, so compositional lumping collapses each `2^k` bitmask level
//! to `k + 1` up-counts — and because failure rates differ per class, the
//! symmetry lives strictly *within* each level, the regime the paper's
//! algorithm targets.

use mdl_core::{Combiner, DecomposableVector, MdMrp};
use mdl_md::SparseFactor;
use mdl_partition::Partition;

use crate::model::{ComposedModel, ModelError};

/// Parameters of the FTMP model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtmpConfig {
    /// Number of processors (level 2 has `2^processors` states).
    pub processors: usize,
    /// Processors required for the quorum.
    pub processors_needed: usize,
    /// Number of memory modules (level 3 has `2^memories` states).
    pub memories: usize,
    /// Memory modules required for the quorum.
    pub memories_needed: usize,
    /// Per-processor failure rate.
    pub proc_failure: f64,
    /// Per-memory failure rate.
    pub mem_failure: f64,
    /// Repair rate per failed unit while the controller is recovering.
    pub repair: f64,
    /// Controller `Normal → Recovering` rate.
    pub recovery_start: f64,
    /// Controller `Recovering → Normal` rate.
    pub recovery_end: f64,
}

impl Default for FtmpConfig {
    fn default() -> Self {
        FtmpConfig {
            processors: 4,
            processors_needed: 2,
            memories: 3,
            memories_needed: 2,
            proc_failure: 0.02,
            mem_failure: 0.01,
            repair: 1.0,
            recovery_start: 0.5,
            recovery_end: 2.0,
        }
    }
}

/// The assembled FTMP model.
#[derive(Debug, Clone)]
pub struct FtmpModel {
    config: FtmpConfig,
    composed: ComposedModel,
}

/// Bitmask fail factor: every up unit fails at unit weight.
fn fail_factor(units: usize) -> SparseFactor {
    let n = 1usize << units;
    let mut f = SparseFactor::new(n);
    for mask in 0..n {
        for u in 0..units {
            if mask & (1 << u) == 0 {
                f.push(mask, mask | (1 << u), 1.0);
            }
        }
    }
    f
}

/// Bitmask repair factor: every failed unit repairs at unit weight.
fn repair_factor(units: usize) -> SparseFactor {
    let n = 1usize << units;
    let mut f = SparseFactor::new(n);
    for mask in 0..n {
        for u in 0..units {
            if mask & (1 << u) != 0 {
                f.push(mask, mask & !(1 << u), 1.0);
            }
        }
    }
    f
}

impl FtmpModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (no units, quorum larger than
    /// the bank, or banks above 16 units).
    pub fn new(config: FtmpConfig) -> Self {
        assert!(config.processors >= 1 && config.processors <= 16);
        assert!(config.memories >= 1 && config.memories <= 16);
        assert!(config.processors_needed <= config.processors);
        assert!(config.memories_needed <= config.memories);

        let np = 1usize << config.processors;
        let nm = 1usize << config.memories;
        let mut composed = ComposedModel::new();
        composed.add_component("controller", 2, 0);
        composed.add_component("processors", np, 0);
        composed.add_component("memories", nm, 0);

        // Controller cycle (local).
        let mut start = SparseFactor::new(2);
        start.push(0, 1, 1.0);
        composed
            .add_event(
                "recovery_start",
                config.recovery_start,
                vec![Some(start), None, None],
            )
            .expect("valid event");
        let mut end = SparseFactor::new(2);
        end.push(1, 0, 1.0);
        composed
            .add_event(
                "recovery_end",
                config.recovery_end,
                vec![Some(end), None, None],
            )
            .expect("valid event");

        // Failures are mode-independent (local per bank).
        composed
            .add_event(
                "proc_fail",
                config.proc_failure,
                vec![None, Some(fail_factor(config.processors)), None],
            )
            .expect("valid event");
        composed
            .add_event(
                "mem_fail",
                config.mem_failure,
                vec![None, None, Some(fail_factor(config.memories))],
            )
            .expect("valid event");

        // Repairs progress only in recovery mode (gated sync events).
        let mut recovering = SparseFactor::new(2);
        recovering.push(1, 1, 1.0);
        composed
            .add_event(
                "proc_repair",
                config.repair,
                vec![
                    Some(recovering.clone()),
                    Some(repair_factor(config.processors)),
                    None,
                ],
            )
            .expect("valid event");
        composed
            .add_event(
                "mem_repair",
                config.repair,
                vec![Some(recovering), None, Some(repair_factor(config.memories))],
            )
            .expect("valid event");

        FtmpModel { config, composed }
    }

    /// The configuration.
    pub fn config(&self) -> &FtmpConfig {
        &self.config
    }

    /// The underlying composed model.
    pub fn composed(&self) -> &ComposedModel {
        &self.composed
    }

    /// Quorum indicator table for a bank of `units` with `needed` required.
    fn quorum_values(units: usize, needed: usize) -> Vec<f64> {
        (0..1usize << units)
            .map(|mask| {
                let up = units - (mask as u32).count_ones() as usize;
                if up >= needed {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Builds the symbolic MRP with the **system-operational** reward: 1
    /// when both quorums hold (product of indicators).
    ///
    /// # Errors
    ///
    /// Propagates assembly errors.
    pub fn build_md_mrp(&self) -> Result<MdMrp, ModelError> {
        let reward = DecomposableVector::new(
            vec![
                vec![1.0, 1.0],
                Self::quorum_values(self.config.processors, self.config.processors_needed),
                Self::quorum_values(self.config.memories, self.config.memories_needed),
            ],
            Combiner::Product,
        )?;
        self.composed.build_md_mrp(reward)
    }

    /// The up-count partitions the lumping algorithm is expected to find
    /// for the two banks (levels 2 and 3, 0-based 1 and 2).
    pub fn expected_bank_partitions(&self) -> (Partition, Partition) {
        let by_count = |units: usize| {
            Partition::from_key_fn(1usize << units, |mask| (mask as u32).count_ones())
        };
        (
            by_count(self.config.processors),
            by_count(self.config.memories),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_core::{LumpKind, LumpRequest};
    use mdl_ctmc::{SolverOptions, TransientOptions};

    #[test]
    fn both_banks_collapse_to_counts() {
        let model = FtmpModel::new(FtmpConfig::default());
        let mrp = model.build_md_mrp().unwrap();
        assert_eq!(mrp.num_states(), 2 * 16 * 8);
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        // Processors: 2^4 -> 5; memories: 2^3 -> 4; controller: 2.
        assert_eq!(result.partitions[1].num_classes(), 5);
        assert_eq!(result.partitions[2].num_classes(), 4);
        assert_eq!(result.stats.lumped_states, 2 * 5 * 4);

        let (pp, pm) = model.expected_bank_partitions();
        let mut pp = pp;
        let mut pm = pm;
        pp.canonicalize();
        pm.canonicalize();
        assert_eq!(result.partitions[1], pp);
        assert_eq!(result.partitions[2], pm);
    }

    #[test]
    fn quorum_reward_respects_symmetry() {
        // The quorum indicator depends only on up-counts, so it never
        // blocks the bank lumping — but a per-unit reward would.
        let model = FtmpModel::new(FtmpConfig {
            processors: 3,
            processors_needed: 2,
            ..FtmpConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        assert_eq!(result.partitions[1].num_classes(), 4);
    }

    #[test]
    fn availability_measures_agree_after_lumping() {
        let model = FtmpModel::new(FtmpConfig::default());
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let opts = SolverOptions::default();
        let full = mrp.expected_stationary_reward(&opts).unwrap();
        let lumped = result.mrp.expected_stationary_reward(&opts).unwrap();
        assert!((full - lumped).abs() < 1e-7, "{full} vs {lumped}");
        assert!(full > 0.8 && full < 1.0, "operational probability {full}");
    }

    #[test]
    fn mission_reliability_shrinks_with_horizon() {
        // Expected operational time over [0, t] divided by t decreases
        // with t (failures accumulate faster than repairs early on).
        let model = FtmpModel::new(FtmpConfig::default());
        let mrp = model.build_md_mrp().unwrap();
        let result = LumpRequest::new(LumpKind::Ordinary).run(&mrp).unwrap();
        let opts = TransientOptions::default();
        let short = result.mrp.expected_accumulated_reward(1.0, &opts).unwrap() / 1.0;
        let long = result.mrp.expected_accumulated_reward(50.0, &opts).unwrap() / 50.0;
        assert!(short > long, "{short} vs {long}");
    }

    #[test]
    fn repairs_gated_on_recovery_mode() {
        // In Normal mode (controller state 0) there must be no repair
        // transition: check the flat matrix.
        let model = FtmpModel::new(FtmpConfig {
            processors: 2,
            processors_needed: 1,
            memories: 1,
            memories_needed: 1,
            ..FtmpConfig::default()
        });
        let mrp = model.build_md_mrp().unwrap();
        let flat = mrp.matrix().flatten();
        let reach = mrp.matrix().reach();
        reach.for_each_tuple(|t, idx| {
            if t[0] != 0 {
                return; // only check Normal mode
            }
            reach.for_each_tuple(|t2, idx2| {
                if t2[0] == 0 && (t2[1] < t[1] || t2[2] < t[2]) {
                    // A strict decrease of a failure mask within Normal
                    // mode would be a repair.
                    let fewer_failed = (t2[1].count_ones() < t[1].count_ones())
                        || (t2[2].count_ones() < t[2].count_ones());
                    if fewer_failed {
                        assert_eq!(
                            flat.get(idx as usize, idx2 as usize),
                            0.0,
                            "repair in Normal mode: {t:?} -> {t2:?}"
                        );
                    }
                }
            });
        });
    }
}
