//! Compositional Markov models for the `mdlump` workspace.
//!
//! This crate is the stand-in for the Möbius modeling environment the paper
//! used (see `DESIGN.md` §3 for the substitution argument). It provides:
//!
//! * [`ComposedModel`] — a small event-synchronized
//!   compositional formalism: one component per MD level, events with a
//!   rate and one sparse factor per touched level. The composed
//!   state-transition rate matrix is `R = Σ_e λ_e ⊗_i W_i^e`, generated as
//!   a matrix diagram; the reachable state space is explored explicitly and
//!   stored as an MDD (playing the role of the symbolic state-space
//!   generator);
//! * [`tandem`] — the paper's Section 5 evaluation model: a closed tandem
//!   multi-processor system with a 3-server/4-queue MSMQ polling subsystem
//!   and an 8-node hypercube subsystem with dispatching, load balancing,
//!   failures and repair;
//! * [`ftmp`] — a fault-tolerant multiprocessor dependability model with
//!   two redundant banks (processors, memories) and a recovery controller;
//! * [`multi_bank`] — a deep-MD stress model (`G + 1` levels) with both
//!   within-level and cross-level symmetries, probing exactly what
//!   level-local lumping can and cannot exploit;
//! * [`shared_repair`] — a machine-repair showcase model whose
//!   within-level symmetry makes compositional lumping collapse `2^M`
//!   failure configurations to `M + 1` counts;
//! * [`random`] — random Kronecker models with *planted* per-level
//!   symmetries, used by the property-based tests and benches to check
//!   that the lumping algorithm recovers (at least) the planted partition;
//! * [`sim`] — a discrete-event Monte Carlo simulator over the same model
//!   semantics, as an independent cross-check of the numerical stack.
//!
//! # Example
//!
//! ```
//! use mdl_models::tandem::{TandemConfig, TandemModel};
//!
//! let model = TandemModel::new(TandemConfig { jobs: 1, ..TandemConfig::default() });
//! let mrp = model.build_md_mrp()?;
//! assert!(mrp.num_states() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ftmp;
pub mod model;
pub mod multi_bank;
pub mod random;
pub mod shared_repair;
pub mod sim;
pub mod tandem;

pub use model::{Component, ComposedModel, Event, ModelError};
