//! Property-based tests for the CTMC solvers on random ergodic chains.

use proptest::prelude::*;

use mdl_ctmc::{
    accumulated_reward, stationary_gauss_seidel, stationary_jacobi, stationary_power,
    stationary_sor, transient_uniformization, AttemptOutcome, CtmcError, Mrp, ResilientOptions,
    SolverOptions, TransientOptions,
};
use mdl_linalg::{vec_ops, CooMatrix, CsrMatrix, RateMatrix};

/// A random chain made ergodic by overlaying a ring (every state can reach
/// every other), with dyadic rates so sums are exact.
fn ergodic_chain(n: usize) -> impl Strategy<Value = CsrMatrix> {
    let extra = prop::collection::vec(
        (0..n, 0..n, prop::sample::select(vec![0.25, 0.5, 1.0, 2.0])),
        0..3 * n,
    );
    extra.prop_map(move |entries| {
        let mut coo = CooMatrix::new(n, n);
        for s in 0..n {
            coo.push(s, (s + 1) % n, 0.5);
        }
        for (r, c, v) in entries {
            if r != c {
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The always-convergent stationary solvers agree on random ergodic
    /// chains; SOR (whose over-relaxed sweep may legitimately fail to
    /// converge on strongly cyclic chains) agrees whenever it converges.
    #[test]
    fn stationary_solvers_agree(r in ergodic_chain(8)) {
        let _g = mdl_obs::testing::guard();
        let opts = SolverOptions { tolerance: 1e-12, ..SolverOptions::default() };
        let p = stationary_power(&r, &opts).unwrap().probabilities;
        let j = stationary_jacobi(&r, &opts).unwrap().probabilities;
        let g = stationary_gauss_seidel(&r, &opts).unwrap().probabilities;
        prop_assert!(vec_ops::max_abs_diff(&p, &j) < 1e-8);
        prop_assert!(vec_ops::max_abs_diff(&p, &g) < 1e-8);
        let sor_opts = SolverOptions {
            tolerance: 1e-12,
            max_iterations: 20_000,
            ..SolverOptions::default()
        };
        match stationary_sor(&r, 1.2, &sor_opts) {
            Ok(sol) => {
                prop_assert!(vec_ops::max_abs_diff(&p, &sol.probabilities) < 1e-8)
            }
            Err(mdl_ctmc::CtmcError::NotConverged { .. }) => {
                // Over-relaxation has no convergence guarantee here; the
                // solver reported it honestly (residual-based check).
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// The stationary vector actually satisfies π Q = 0.
    #[test]
    fn stationary_vector_is_a_fixed_point(r in ergodic_chain(7)) {
        let _g = mdl_obs::testing::guard();
        let opts = SolverOptions { tolerance: 1e-13, ..SolverOptions::default() };
        let pi = stationary_power(&r, &opts).unwrap().probabilities;
        let d = r.row_sums_vec();
        let mut flow = vec![0.0; 7];
        r.acc_vec_mat(&pi, &mut flow); // (πR)(j)
        for s in 0..7 {
            flow[s] -= pi[s] * d[s]; // (πQ)(j)
        }
        prop_assert!(vec_ops::max_abs(&flow) < 1e-9, "residual {flow:?}");
    }

    /// Transient distributions stay distributions and converge to the
    /// stationary one.
    #[test]
    fn transient_is_stochastic_and_converges(r in ergodic_chain(6)) {
        let _g = mdl_obs::testing::guard();
        let topts = TransientOptions::default();
        for &t in &[0.1, 1.0, 10.0] {
            let sol = transient_uniformization(&r, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0], t, &topts)
                .unwrap();
            let sum: f64 = sol.probabilities.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-10);
            prop_assert!(sol.probabilities.iter().all(|&p| p >= -1e-15));
        }
        let late = transient_uniformization(&r, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 500.0, &topts)
            .unwrap();
        let stat = stationary_power(&r, &SolverOptions::default()).unwrap();
        prop_assert!(
            vec_ops::max_abs_diff(&late.probabilities, &stat.probabilities) < 1e-6
        );
    }

    /// Chapman–Kolmogorov: evolving for s then t equals evolving for s+t.
    #[test]
    fn transient_semigroup_property(r in ergodic_chain(5), s in 0.1f64..2.0, t in 0.1f64..2.0) {
        let _g = mdl_obs::testing::guard();
        let topts = TransientOptions::default();
        let initial = [0.2, 0.2, 0.2, 0.2, 0.2];
        let direct =
            transient_uniformization(&r, &initial, s + t, &topts).unwrap().probabilities;
        let first = transient_uniformization(&r, &initial, s, &topts).unwrap().probabilities;
        let second = transient_uniformization(&r, &first, t, &topts).unwrap().probabilities;
        prop_assert!(vec_ops::max_abs_diff(&direct, &second) < 1e-8);
    }

    /// Accumulated reward is additive over adjacent intervals... which for
    /// time-homogeneous chains means: acc(0, s+t) = acc(0, s) + acc over
    /// [s, s+t] started from π(s).
    #[test]
    fn accumulated_reward_is_interval_additive(r in ergodic_chain(5), s in 0.1f64..2.0, t in 0.1f64..2.0) {
        let _g = mdl_obs::testing::guard();
        let topts = TransientOptions::default();
        let initial = [1.0, 0.0, 0.0, 0.0, 0.0];
        let reward = [1.0, 0.0, 2.0, 0.0, 0.5];
        let whole = accumulated_reward(&r, &initial, &reward, s + t, &topts).unwrap();
        let first = accumulated_reward(&r, &initial, &reward, s, &topts).unwrap();
        let at_s = transient_uniformization(&r, &initial, s, &topts).unwrap().probabilities;
        let rest = accumulated_reward(&r, &at_s, &reward, t, &topts).unwrap();
        prop_assert!((whole - (first + rest)).abs() < 1e-7, "{whole} vs {first} + {rest}");
    }

    /// Accumulated reward is monotone in `t` for non-negative rewards and
    /// bounded by `t · max r`.
    #[test]
    fn accumulated_reward_bounds(r in ergodic_chain(6), t in 0.1f64..5.0) {
        let _g = mdl_obs::testing::guard();
        let topts = TransientOptions::default();
        let initial = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let reward = [0.0, 1.0, 2.0, 0.0, 1.0, 3.0];
        let a = accumulated_reward(&r, &initial, &reward, t, &topts).unwrap();
        let b = accumulated_reward(&r, &initial, &reward, t * 1.5, &topts).unwrap();
        prop_assert!(a >= -1e-12);
        prop_assert!(b >= a - 1e-10);
        prop_assert!(a <= t * 3.0 + 1e-9);
    }

    /// `solve_resilient` never hands back a non-finite probability
    /// vector, and the run report is consistent with the returned result:
    /// converged report iff `Ok`, with the last attempt carrying the
    /// converged outcome. (Guarded: the solvers consult the process-global
    /// failpoint registry.)
    #[test]
    fn resilient_solve_is_finite_and_report_consistent(r in ergodic_chain(7)) {
        let _g = mdl_obs::testing::guard();
        let n = r.nrows();
        let mrp = Mrp::new(r, vec![1.0; n], vec![1.0 / n as f64; n]).unwrap();
        let (result, report) = mrp.solve_resilient(&ResilientOptions::default());
        prop_assert!(!report.attempts.is_empty());
        match result {
            Ok(sol) => {
                prop_assert!(sol.probabilities.iter().all(|p| p.is_finite() && *p >= 0.0));
                let sum: f64 = sol.probabilities.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
                prop_assert!(report.converged());
                prop_assert_eq!(
                    report.attempts.last().unwrap().outcome,
                    AttemptOutcome::Converged
                );
            }
            Err(_) => {
                prop_assert!(!report.converged());
                prop_assert!(report
                    .attempts
                    .iter()
                    .all(|a| a.outcome != AttemptOutcome::Converged));
            }
        }
    }

    /// A NaN injected into the iterate at hit `k` is caught by the
    /// divergence guard as `Diverged` at exactly iteration `k`, for any
    /// `k`, on any chain.
    #[test]
    fn injected_nan_is_diverged_at_exact_iteration(r in ergodic_chain(8), k in 2usize..=6) {
        let _g = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("solver.iterate", &format!("nan@{k}")).unwrap();
        let err = stationary_power(
            &r,
            &SolverOptions { tolerance: 1e-15, ..SolverOptions::default() },
        )
        .unwrap_err();
        mdl_obs::failpoint::clear();
        prop_assert!(
            matches!(err, CtmcError::Diverged { iteration, .. } if iteration == k),
            "got {err:?}, wanted Diverged at {k}"
        );
    }

    /// A divergence injected into the first ladder rung makes
    /// `solve_resilient` fall back and still converge, recording both
    /// attempts.
    #[test]
    fn resilient_ladder_recovers_from_injected_divergence(r in ergodic_chain(6)) {
        let _g = mdl_obs::testing::guard();
        let n = r.nrows();
        let reference = stationary_power(&r, &SolverOptions::default()).unwrap();
        let mrp = Mrp::new(r, vec![1.0; n], vec![1.0 / n as f64; n]).unwrap();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("solver.iterate", "nan@1").unwrap();
        let (result, report) = mrp.solve_resilient(&ResilientOptions::default());
        mdl_obs::failpoint::clear();
        let sol = result.unwrap();
        prop_assert_eq!(report.attempts.len(), 2);
        prop_assert_eq!(report.attempts[0].outcome, AttemptOutcome::Diverged);
        prop_assert!(report.converged());
        prop_assert!(
            vec_ops::max_abs_diff(&sol.probabilities, &reference.probabilities) < 1e-7
        );
    }
}
