//! Environment-driven failpoint suite, run twice by CI: once with
//! `MDL_FAILPOINTS=solver.iterate=nan@3` and once with the variable
//! unset. The same test asserts the matching behaviour in each mode, so
//! both the injection path and the no-op fast path stay covered.
//!
//! Kept to a single test: hit counters are process-global, so a second
//! test in this binary would race the one-shot `@3` injection.

use mdl_ctmc::{stationary_power, CtmcError, Mrp, ResilientOptions, SolverOptions};
use mdl_linalg::{CooMatrix, CsrMatrix};

/// A small ergodic birth–death chain.
fn chain(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for s in 0..n - 1 {
        coo.push(s, s + 1, 2.0);
        coo.push(s + 1, s, 3.0);
    }
    coo.to_csr()
}

#[test]
fn suite_matches_environment() {
    let _g = mdl_obs::testing::guard();
    mdl_obs::failpoint::init_from_env();
    let configured = std::env::var(mdl_obs::failpoint::ENV_VAR)
        .map(|v| !v.trim().is_empty())
        .unwrap_or(false);
    let r = chain(10);
    let opts = SolverOptions {
        tolerance: 1e-15,
        ..SolverOptions::default()
    };

    if configured {
        // CI sets `solver.iterate=nan@3`: the third iterate is poisoned
        // and the divergence guard reports it at exactly that iteration.
        let err = stationary_power(&r, &opts).unwrap_err();
        assert!(
            matches!(err, CtmcError::Diverged { iteration: 3, .. }),
            "under {}={:?} expected Diverged at 3, got {err:?}",
            mdl_obs::failpoint::ENV_VAR,
            std::env::var(mdl_obs::failpoint::ENV_VAR).ok(),
        );
        // The one-shot injection is now exhausted; later solves run clean.
    }

    // With no failpoints (or the one-shot already spent) everything
    // converges, including through the resilient ladder.
    let n = r.nrows();
    let mrp = Mrp::new(r, vec![1.0; n], vec![1.0 / n as f64; n]).unwrap();
    let (result, report) = mrp.solve_resilient(&ResilientOptions::default());
    let sol = result.expect("clean solve converges");
    assert!(report.converged());
    assert!(sol.probabilities.iter().all(|p| p.is_finite()));
}
