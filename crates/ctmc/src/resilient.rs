//! Fallback-ladder solving: try an ordered list of solver
//! configurations, record every attempt, and degrade gracefully.
//!
//! The north-star deployment answers measure queries under a deadline:
//! a solve must terminate within budget and fall back to a
//! slower-but-safer method rather than hang or return garbage. The
//! ladder retries on the three *recoverable* failure shapes —
//! [`NotConverged`](CtmcError::NotConverged) (slow),
//! [`Diverged`](CtmcError::Diverged) (garbage caught by the guards) and
//! [`Interrupted`](CtmcError::Interrupted) (budget) — and aborts on
//! anything structural (absorbing states, shape mismatches), which no
//! amount of retrying fixes.
//!
//! Every attempt lands in a [`RunReport`] whether or not the ladder
//! ultimately succeeds, so operators can see exactly which rungs ran,
//! why they failed and what the winning configuration cost.

use std::time::Instant;

use crate::solver::{Solution, SolverOptions, StationaryMethod};
use crate::CtmcError;

/// How one ladder attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The solver converged; the returned solution came from this rung.
    Converged,
    /// The solver ran out of iterations or stagnated.
    NotConverged,
    /// The iterate went non-finite.
    Diverged,
    /// A budget limit interrupted the attempt.
    Interrupted,
    /// A structural error (not retryable); the ladder stopped here.
    Failed,
}

impl AttemptOutcome {
    /// Lower-case label used in reports and obs events.
    pub fn label(self) -> &'static str {
        match self {
            AttemptOutcome::Converged => "converged",
            AttemptOutcome::NotConverged => "not-converged",
            AttemptOutcome::Diverged => "diverged",
            AttemptOutcome::Interrupted => "interrupted",
            AttemptOutcome::Failed => "failed",
        }
    }
}

impl std::fmt::Display for AttemptOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded ladder attempt.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Solver method label (`power`, `jacobi`, …).
    pub method: &'static str,
    /// Kernel label for MD solves (`compiled`, `walk`, `flat-csr`),
    /// `None` for flat solves.
    pub kernel: Option<&'static str>,
    /// Iterations the attempt performed before finishing or failing.
    pub iterations: usize,
    /// Residual when the attempt ended (NaN when none was computed).
    pub residual: f64,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// The rendered error for non-converged attempts.
    pub error: Option<String>,
    /// Wall-clock time of the attempt.
    pub elapsed: std::time::Duration,
}

impl AttemptRecord {
    fn render(&self, index: usize) -> String {
        let config = match self.kernel {
            Some(k) => format!("{}/{}", self.method, k),
            None => self.method.to_string(),
        };
        let mut line = format!(
            "  {}. {:<18} {:<13} iters={:<8} residual={:<10.3e} elapsed={:?}",
            index + 1,
            config,
            self.outcome.label(),
            self.iterations,
            self.residual,
            self.elapsed,
        );
        if let Some(e) = &self.error {
            line.push_str(&format!("\n     {e}"));
        }
        line
    }
}

/// Every attempt a resilient solve made, in order.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The attempts, in execution order. Non-empty after any resilient
    /// solve.
    pub attempts: Vec<AttemptRecord>,
}

impl RunReport {
    /// Whether the final attempt converged (i.e. the solve succeeded).
    pub fn converged(&self) -> bool {
        matches!(
            self.attempts.last(),
            Some(a) if a.outcome == AttemptOutcome::Converged
        )
    }

    /// Number of fallbacks taken (attempts beyond the first).
    pub fn fallbacks(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Renders the report for humans, one attempt per line.
    pub fn render(&self) -> String {
        let mut out = String::from("solve attempts:\n");
        for (i, a) in self.attempts.iter().enumerate() {
            out.push_str(&a.render(i));
            out.push('\n');
        }
        out
    }
}

/// Classifies errors for ladder control flow. Implemented for
/// [`CtmcError`] here and for `mdl-core`'s error type there, so the same
/// [`solve_ladder`] driver serves flat and matrix-diagram solves.
pub trait ResilientError: std::fmt::Display {
    /// The attempt outcome this error represents.
    fn outcome(&self) -> AttemptOutcome;

    /// Whether the next rung should be tried. Structural errors are
    /// final; slow/garbage/budget errors are worth a retry.
    fn retryable(&self) -> bool {
        matches!(
            self.outcome(),
            AttemptOutcome::NotConverged | AttemptOutcome::Diverged | AttemptOutcome::Interrupted
        )
    }

    /// `(iterations, residual)` the failing attempt reached, if the
    /// error carries them.
    fn progress(&self) -> Option<(usize, f64)> {
        None
    }
}

impl ResilientError for CtmcError {
    fn outcome(&self) -> AttemptOutcome {
        match self {
            CtmcError::NotConverged { .. } => AttemptOutcome::NotConverged,
            CtmcError::Diverged { .. } => AttemptOutcome::Diverged,
            CtmcError::Interrupted { .. } => AttemptOutcome::Interrupted,
            _ => AttemptOutcome::Failed,
        }
    }

    fn progress(&self) -> Option<(usize, f64)> {
        match self {
            CtmcError::NotConverged {
                iterations,
                residual,
            } => Some((*iterations, *residual)),
            CtmcError::Diverged {
                iteration,
                residual,
            } => Some((*iteration, *residual)),
            CtmcError::Interrupted { progress, .. } => {
                Some((progress.iterations, progress.residual))
            }
            _ => None,
        }
    }
}

/// Ladder of stationary methods for a flat
/// [`Mrp`](crate::Mrp) solve, tried in order by
/// [`Mrp::solve_resilient`](crate::Mrp::solve_resilient).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOptions {
    /// Methods to attempt, in order. Must be non-empty.
    pub ladder: Vec<StationaryMethod>,
    /// Base solver options; the `method` field is overridden per rung.
    pub options: SolverOptions,
}

impl Default for ResilientOptions {
    /// Jacobi first (usually fewer iterations), power as the fallback
    /// (guaranteed convergence on finite irreducible chains).
    fn default() -> Self {
        ResilientOptions {
            ladder: vec![StationaryMethod::Jacobi, StationaryMethod::Power],
            options: SolverOptions::default(),
        }
    }
}

/// The label of a stationary method, as used in reports and events.
pub(crate) fn method_label(method: StationaryMethod) -> &'static str {
    match method {
        StationaryMethod::Power => "power",
        StationaryMethod::Jacobi => "jacobi",
    }
}

/// Drives a fallback ladder: runs `attempt` on each rung in order until
/// one succeeds or a non-retryable error appears, recording every
/// attempt (and emitting `solve.attempt`/`solve.fallback` obs events).
/// Returns the first success or the *last* error, together with the
/// full report.
///
/// # Panics
///
/// Panics if `rungs` is empty.
pub fn solve_ladder<A, E: ResilientError>(
    rungs: &[A],
    label: impl Fn(&A) -> (&'static str, Option<&'static str>),
    mut attempt: impl FnMut(&A) -> std::result::Result<Solution, E>,
) -> (std::result::Result<Solution, E>, RunReport) {
    assert!(
        !rungs.is_empty(),
        "the fallback ladder needs at least one rung"
    );
    let mut report = RunReport::default();
    let mut last_err: Option<E> = None;
    for (i, rung) in rungs.iter().enumerate() {
        let (method, kernel) = label(rung);
        if i > 0 {
            mdl_obs::counter("solve.fallbacks").inc();
            mdl_obs::point("solve.fallback", || {
                vec![
                    ("method", mdl_obs::Value::from(method)),
                    ("kernel", mdl_obs::Value::from(kernel.unwrap_or("-"))),
                    ("attempt", mdl_obs::Value::from(i + 1)),
                ]
            });
        }
        let t0 = Instant::now();
        let result = attempt(rung);
        let elapsed = t0.elapsed();
        let record = match &result {
            Ok(sol) => AttemptRecord {
                method,
                kernel,
                iterations: sol.stats.iterations,
                residual: sol.stats.residual,
                outcome: AttemptOutcome::Converged,
                error: None,
                elapsed,
            },
            Err(e) => {
                let (iterations, residual) = e.progress().unwrap_or((0, f64::NAN));
                AttemptRecord {
                    method,
                    kernel,
                    iterations,
                    residual,
                    outcome: e.outcome(),
                    error: Some(e.to_string()),
                    elapsed,
                }
            }
        };
        mdl_obs::point("solve.attempt", || {
            vec![
                ("method", mdl_obs::Value::from(method)),
                ("kernel", mdl_obs::Value::from(kernel.unwrap_or("-"))),
                ("outcome", mdl_obs::Value::from(record.outcome.label())),
                ("iterations", mdl_obs::Value::from(record.iterations)),
            ]
        });
        report.attempts.push(record);
        match result {
            Ok(sol) => return (Ok(sol), report),
            Err(e) => {
                let stop = !e.retryable();
                last_err = Some(e);
                if stop {
                    break;
                }
            }
        }
    }
    (
        Err(last_err.expect("ladder ran at least one attempt")),
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveStats;

    fn sol(iterations: usize) -> Solution {
        Solution {
            probabilities: vec![1.0],
            stats: SolveStats {
                iterations,
                residual: 0.0,
                elapsed: std::time::Duration::ZERO,
            },
        }
    }

    #[test]
    fn first_success_short_circuits() {
        let rungs = [StationaryMethod::Jacobi, StationaryMethod::Power];
        let (result, report) = solve_ladder(
            &rungs,
            |m| (method_label(*m), None),
            |_| Ok::<_, CtmcError>(sol(5)),
        );
        assert!(result.is_ok());
        assert_eq!(report.attempts.len(), 1);
        assert!(report.converged());
        assert_eq!(report.fallbacks(), 0);
    }

    #[test]
    fn retryable_errors_walk_the_ladder() {
        let rungs = [StationaryMethod::Jacobi, StationaryMethod::Power];
        let mut calls = 0;
        let (result, report) = solve_ladder(
            &rungs,
            |m| (method_label(*m), None),
            |_| {
                calls += 1;
                if calls == 1 {
                    Err(CtmcError::Diverged {
                        iteration: 100,
                        residual: f64::NAN,
                    })
                } else {
                    Ok(sol(42))
                }
            },
        );
        assert!(result.is_ok());
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::Diverged);
        assert_eq!(report.attempts[0].iterations, 100);
        assert_eq!(report.attempts[1].outcome, AttemptOutcome::Converged);
        assert_eq!(report.attempts[1].iterations, 42);
        assert!(report.converged());
        assert_eq!(report.fallbacks(), 1);
    }

    #[test]
    fn structural_errors_stop_the_ladder() {
        let rungs = [StationaryMethod::Jacobi, StationaryMethod::Power];
        let mut calls = 0;
        let (result, report) = solve_ladder(
            &rungs,
            |m| (method_label(*m), None),
            |_| {
                calls += 1;
                Err::<Solution, _>(CtmcError::AbsorbingState { state: 3 })
            },
        );
        assert!(matches!(
            result,
            Err(CtmcError::AbsorbingState { state: 3 })
        ));
        assert_eq!(calls, 1, "no retry on structural errors");
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::Failed);
        assert!(!report.converged());
    }

    #[test]
    fn exhausted_ladder_returns_last_error() {
        let rungs = [StationaryMethod::Jacobi, StationaryMethod::Power];
        let (result, report) = solve_ladder(
            &rungs,
            |m| (method_label(*m), None),
            |m| {
                Err::<Solution, _>(CtmcError::NotConverged {
                    iterations: match m {
                        StationaryMethod::Jacobi => 10,
                        StationaryMethod::Power => 20,
                    },
                    residual: 0.5,
                })
            },
        );
        assert!(matches!(
            result,
            Err(CtmcError::NotConverged { iterations: 20, .. })
        ));
        assert_eq!(report.attempts.len(), 2);
        assert!(!report.converged());
    }

    #[test]
    fn report_renders_every_attempt() {
        let rungs = [StationaryMethod::Jacobi, StationaryMethod::Power];
        let mut calls = 0;
        let (_, report) = solve_ladder(
            &rungs,
            |m| (method_label(*m), Some("compiled")),
            |_| {
                calls += 1;
                if calls == 1 {
                    Err(CtmcError::Diverged {
                        iteration: 7,
                        residual: f64::NAN,
                    })
                } else {
                    Ok(sol(3))
                }
            },
        );
        let text = report.render();
        assert!(text.contains("jacobi/compiled"), "{text}");
        assert!(text.contains("diverged"), "{text}");
        assert!(text.contains("converged"), "{text}");
        assert!(text.contains("iteration 7"), "{text}"); // the error line
    }
}
