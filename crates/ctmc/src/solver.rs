use mdl_linalg::{vec_ops, CsrMatrix, RateMatrix};

use crate::{CtmcError, Result};

/// Which stationary iteration [`Mrp::stationary`](crate::Mrp::stationary)
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StationaryMethod {
    /// Power iteration on the uniformized chain `P = I + Q/Λ`.
    /// Robust (guaranteed convergence for finite irreducible chains) and
    /// needs only `y += x·R`, so it runs over matrix diagrams unchanged.
    #[default]
    Power,
    /// Jacobi-style iteration `π ← (π·R) D⁻¹` with `D = rs(R)`.
    /// Often converges in fewer iterations than power; also runs over
    /// matrix diagrams.
    Jacobi,
}

/// The [`CheckpointSink`] callback: `(iterations_completed, residual,
/// iterate)`.
pub type StationarySinkFn = dyn Fn(usize, f64, &[f64]) + Send + Sync;

/// Periodic snapshot hook for long stationary solves.
///
/// The sink receives `(iterations, residual, iterate)` every
/// [`every`](CheckpointSink::every) iterations, and once more with the
/// partial iterate when the compute budget interrupts the solve — so an
/// interrupted run always leaves a fresh snapshot, however large the
/// period. The iterate is normalized (`Σ = 1`) and can warm-start a later
/// run via [`SolverOptions::warm_start`]; power and Jacobi converge to
/// the same fixed point from any positive start, so a resumed solve
/// agrees with an uninterrupted one to within the solver tolerance.
#[derive(Clone)]
pub struct CheckpointSink {
    /// Snapshot period in iterations (values `< 1` are treated as `1`).
    pub every: usize,
    /// The callback: `(iterations_completed, residual, iterate)`.
    pub sink: std::sync::Arc<StationarySinkFn>,
}

impl std::fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSink")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

impl PartialEq for CheckpointSink {
    fn eq(&self, other: &Self) -> bool {
        self.every == other.every && std::sync::Arc::ptr_eq(&self.sink, &other.sink)
    }
}

/// Options shared by the stationary solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Iteration method.
    pub method: StationaryMethod,
    /// Convergence threshold on the ∞-norm of successive iterates.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Report a convergence check (the `solve.check` observability point
    /// event) every this many iterations. The iterate-difference solvers
    /// (power, Jacobi, Gauss–Seidel) fuse the residual into the
    /// normalization pass and therefore test convergence **every**
    /// iteration at no extra traversal cost — `stats.iterations` is always
    /// the true iteration count. Only [`stationary_sor`], whose equation
    /// residual `‖πQ‖∞` costs an extra sparse product, restricts its
    /// convergence checks to multiples of this value. Values `< 1` are
    /// treated as `1`.
    pub check_every: usize,
    /// Damping factor `ω ∈ (0, 1]` for the Jacobi iteration:
    /// `π ← (1−ω)·π + ω·(π·R)D⁻¹`. Damping (`ω < 1`) breaks the
    /// period-2 oscillation Jacobi exhibits on bipartite transition
    /// structures (e.g. birth–death chains) without moving the fixed point.
    pub jacobi_damping: f64,
    /// Compute budget (wall-clock deadline, cancellation). Checked
    /// amortized from the iteration loop; on failure the solver returns
    /// [`CtmcError::Interrupted`] carrying the partial iterate. The
    /// default is unlimited.
    pub budget: mdl_obs::Budget,
    /// Stagnation window: if the residual fails to improve by at least
    /// 0.1% (relative, vs the best seen) for this many consecutive
    /// iterations — or shows a sustained period-2 oscillation — the
    /// Jacobi solver tightens its damping (halving `ω`, up to three
    /// times) and the other solvers give up early with
    /// [`CtmcError::NotConverged`] instead of burning the rest of the
    /// iteration budget. `0` disables the guard.
    pub stagnation_window: usize,
    /// Initial iterate. `None` starts from the uniform distribution;
    /// `Some(v)` starts from `v` (validated: right length, finite,
    /// non-negative, positive sum) after L1 normalization. Used to resume
    /// an interrupted solve from a [`CheckpointSink`] snapshot. The warm
    /// start does not enter any cache key: it changes where the iteration
    /// starts, not which fixed point it converges to.
    pub warm_start: Option<Vec<f64>>,
    /// Periodic snapshot hook; `None` disables checkpointing.
    pub checkpoint: Option<CheckpointSink>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            method: StationaryMethod::Power,
            tolerance: 1e-10,
            max_iterations: 200_000,
            check_every: 1,
            jacobi_damping: 0.75,
            budget: mdl_obs::Budget::unlimited(),
            stagnation_window: 1000,
            warm_start: None,
            checkpoint: None,
        }
    }
}

/// The starting iterate: a validated, L1-normalized warm start if one was
/// supplied, the uniform distribution otherwise.
fn initial_iterate(n: usize, options: &SolverOptions) -> Result<Vec<f64>> {
    let Some(start) = &options.warm_start else {
        return Ok(vec![1.0 / n as f64; n]);
    };
    if start.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "warm start",
            got: start.len(),
            expected: n,
        });
    }
    let mut pi = start.clone();
    let mut sum = 0.0;
    for (s, &v) in pi.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(CtmcError::InvalidValue {
                what: "warm start",
                index: s,
                value: v,
            });
        }
        sum += v;
    }
    if sum <= 0.0 || !sum.is_finite() {
        return Err(CtmcError::InvalidValue {
            what: "warm start sum",
            index: 0,
            value: sum,
        });
    }
    for v in pi.iter_mut() {
        *v /= sum;
    }
    Ok(pi)
}

/// Feeds one periodic snapshot to the checkpoint sink (if configured and
/// due at this iteration). `force` bypasses the period — used on budget
/// interrupts so the final snapshot is never stale.
#[inline]
fn maybe_checkpoint(options: &SolverOptions, it: usize, residual: f64, pi: &[f64], force: bool) {
    if let Some(ck) = &options.checkpoint {
        if force || (it > 0 && it % ck.every.max(1) == 0) {
            (ck.sink)(it, residual, pi);
            mdl_obs::counter("solve.checkpoint").inc();
        }
    }
}

/// How many consecutive period-2 observations the stagnation guard
/// requires before flagging an oscillation.
const OSCILLATION_RUN: usize = 64;

/// The relative improvement the stagnation guard demands within each
/// window (0.1% better than the best residual seen so far).
const STAGNATION_IMPROVEMENT: f64 = 1e-3;

/// How often the Jacobi solver may halve its damping in response to
/// detected stagnation before giving up.
const MAX_DAMPING_TIGHTENINGS: u32 = 3;

/// Detects two failure shapes in a residual sequence: *stagnation* (no
/// relative improvement over the best seen for a whole window) and
/// *period-2 oscillation* (`r_t ≈ r_{t−2}` with no improvement, the
/// signature of an iterate bouncing between two points — on bipartite
/// structures the residual is then locked constant or alternating).
///
/// Both bars are far below any genuinely converging iteration: geometric
/// convergence improves the best residual every few iterations, and its
/// residual ratio over two steps stays well clear of the `1e-9` equality
/// tolerance used for the oscillation test.
struct StagnationGuard {
    window: usize,
    best: f64,
    since_best: usize,
    prev: f64,
    prev2: f64,
    osc_run: usize,
}

impl StagnationGuard {
    fn new(window: usize) -> Self {
        StagnationGuard {
            window,
            best: f64::INFINITY,
            since_best: 0,
            prev: f64::NAN,
            prev2: f64::NAN,
            osc_run: 0,
        }
    }

    fn reset(&mut self) {
        *self = StagnationGuard::new(self.window);
    }

    /// Feeds one residual; returns `true` when the sequence has
    /// stagnated or oscillates.
    fn observe(&mut self, residual: f64) -> bool {
        if self.window == 0 {
            return false;
        }
        let improving = residual < self.best * (1.0 - STAGNATION_IMPROVEMENT);
        if improving {
            self.best = residual;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        let near = |a: f64, b: f64| (a - b).abs() <= 1e-9 * f64::max(a.abs(), b.abs());
        let oscillating = !improving && self.prev2.is_finite() && near(residual, self.prev2);
        self.osc_run = if oscillating { self.osc_run + 1 } else { 0 };
        self.prev2 = self.prev;
        self.prev = residual;
        self.since_best >= self.window || self.osc_run >= OSCILLATION_RUN
    }
}

/// The `solver.iterate` failpoint: `nan` poisons the freshly computed
/// iterate (caught by the divergence guard in the same iteration), `err`
/// aborts immediately as an injected divergence.
#[inline]
fn inject_iterate(next: &mut [f64], iteration: usize) -> Result<()> {
    match mdl_obs::failpoint::hit("solver.iterate") {
        None => Ok(()),
        Some(mdl_obs::failpoint::Injection::Nan) => {
            if let Some(x) = next.first_mut() {
                *x = f64::NAN;
            }
            Ok(())
        }
        Some(mdl_obs::failpoint::Injection::Err) => Err(CtmcError::Diverged {
            iteration,
            residual: f64::NAN,
        }),
    }
}

/// Work counters and final residual of a solver run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final ∞-norm difference between successive iterates.
    pub residual: f64,
    /// Wall-clock time of the solve.
    pub elapsed: std::time::Duration,
}

/// A probability vector together with the work it took to compute it.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The probability distribution over states.
    pub probabilities: Vec<f64>,
    /// Solver work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// Expected instantaneous reward `Σ_s π(s)·r(s)`.
    ///
    /// # Errors
    ///
    /// [`CtmcError::LengthMismatch`] if `reward` has a different length
    /// than the solution vector.
    pub fn try_expected_reward(&self, reward: &[f64]) -> Result<f64> {
        if reward.len() != self.probabilities.len() {
            return Err(CtmcError::LengthMismatch {
                what: "reward vector",
                got: reward.len(),
                expected: self.probabilities.len(),
            });
        }
        Ok(vec_ops::dot(&self.probabilities, reward))
    }

    /// Expected instantaneous reward `Σ_s π(s)·r(s)`.
    ///
    /// # Panics
    ///
    /// Panics if `reward` has a different length than the solution vector.
    #[deprecated(note = "use try_expected_reward, which reports a LengthMismatch \
                         instead of panicking on a bad reward vector")]
    pub fn expected_reward(&self, reward: &[f64]) -> f64 {
        vec_ops::dot(&self.probabilities, reward)
    }
}

/// Per-solve observability: a span named after the method (timing feeds
/// [`SolveStats::elapsed`], so stats stay correct with obs disabled), a
/// `solve.check` point event per convergence check (visible under
/// tracing), and the shared `solve.iterations` counter.
struct SolveObs {
    span: mdl_obs::Span,
    method: &'static str,
}

impl SolveObs {
    fn new(span_name: &'static str, method: &'static str, n: usize) -> Self {
        SolveObs {
            span: mdl_obs::span(span_name).with("n", n),
            method,
        }
    }

    /// Reports one convergence check (cheap no-op unless tracing is on).
    fn check(&self, iteration: usize, residual: f64) {
        mdl_obs::point("solve.check", || {
            vec![
                ("method", mdl_obs::Value::from(self.method)),
                ("iteration", mdl_obs::Value::from(iteration)),
                ("residual", mdl_obs::Value::from(residual)),
            ]
        });
    }

    /// Closes the span and builds the run's [`SolveStats`].
    fn done(mut self, iterations: usize, residual: f64, converged: bool) -> SolveStats {
        mdl_obs::counter("solve.iterations").add(iterations as u64);
        self.span.record("iterations", iterations);
        self.span.record("residual", residual);
        self.span.record("converged", converged);
        SolveStats {
            iterations,
            residual,
            elapsed: self.span.finish(),
        }
    }
}

fn exit_rates<M: RateMatrix>(rates: &M) -> Result<Vec<f64>> {
    let d = rates.row_sums();
    for (s, &v) in d.iter().enumerate() {
        if v <= 0.0 {
            return Err(CtmcError::AbsorbingState { state: s });
        }
        if !v.is_finite() {
            return Err(CtmcError::InvalidValue {
                what: "exit rates",
                index: s,
                value: v,
            });
        }
    }
    Ok(d)
}

/// Stationary distribution by power iteration on the uniformized DTMC
/// `P = I + Q/Λ` with `Λ = 1.02 · max_s R(s, S)`.
///
/// Needs only the `y += x·R` product, so it runs over any [`RateMatrix`]
/// including matrix diagrams.
///
/// # Errors
///
/// [`CtmcError::AbsorbingState`] for states without outgoing rate;
/// [`CtmcError::NotConverged`] when the iteration budget is exhausted.
pub fn stationary_power<M: RateMatrix>(rates: &M, options: &SolverOptions) -> Result<Solution> {
    let d = exit_rates(rates)?;
    stationary_power_with_exit_rates(rates, &d, options)
}

/// [`stationary_power`] with an explicitly supplied diagonal: the generator
/// is taken to be `Q = R − diag(exit)` instead of `R − rs(R)`.
///
/// This is required by **exact** lumping, whose Theorem-2 quotient matrix
/// `R̂(ĩ, j̃) = R(C_i, j)` does *not* carry the original exit rates in its
/// row sums — they are supplied separately (they are constant per class by
/// the exact lumpability conditions). The computed fixed point is the
/// normalized dominant left eigenvector of `I + Q/Λ`; for a proper
/// generator this is the stationary distribution, and for an exact-lumped
/// quotient it is the per-state solution vector `ν̂` (see
/// `mdl-core::exact`).
///
/// # Errors
///
/// As for [`stationary_power`], plus a length check on `exit`.
pub fn stationary_power_with_exit_rates<M: RateMatrix>(
    rates: &M,
    exit: &[f64],
    options: &SolverOptions,
) -> Result<Solution> {
    let n = rates.num_states();
    if exit.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "exit rates",
            got: exit.len(),
            expected: n,
        });
    }
    let obs = SolveObs::new("solve.power", "power", n);
    let d = exit;
    let lambda = 1.02 * d.iter().cloned().fold(0.0, f64::max);
    let check_every = options.check_every.max(1);

    let mut ticker = options.budget.ticker(32);
    let mut guard = StagnationGuard::new(options.stagnation_window);
    let mut pi = initial_iterate(n, options)?;
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=options.max_iterations {
        if let Err(reason) = ticker.tick() {
            let _ = obs.done(it - 1, residual, false);
            maybe_checkpoint(options, it - 1, residual, &pi, true);
            return Err(CtmcError::interrupted(
                "solve.power",
                it - 1,
                residual,
                pi,
                reason,
            ));
        }
        // next = pi + (pi·R − pi∘d) / Λ  =  pi·P
        vec_ops::fill(&mut next, 0.0);
        rates.acc_vec_mat(&pi, &mut next);
        for s in 0..n {
            next[s] = pi[s] + (next[s] - pi[s] * d[s]) / lambda;
        }
        inject_iterate(&mut next, it)?;
        // Fused normalize + residual: convergence is tested every
        // iteration, so the reported count is the true one. The L1 sum
        // doubles as the divergence sentinel (f64::max can mask a NaN
        // lane in the residual; the sum cannot stay finite).
        let (diff, sum) = vec_ops::normalize_l1_max_diff_guarded(&mut next, &pi);
        residual = diff;
        if !sum.is_finite() {
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::Diverged {
                iteration: it,
                residual,
            });
        }
        std::mem::swap(&mut pi, &mut next);
        if residual < options.tolerance {
            obs.check(it, residual);
            return Ok(Solution {
                probabilities: pi,
                stats: obs.done(it, residual, true),
            });
        }
        maybe_checkpoint(options, it, residual, &pi, false);
        if guard.observe(residual) {
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::NotConverged {
                iterations: it,
                residual,
            });
        }
        if it % check_every == 0 {
            obs.check(it, residual);
        }
    }
    let _ = obs.done(options.max_iterations, residual, false);
    Err(CtmcError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

/// Stationary distribution by the Jacobi-style iteration
/// `π ← (π·R) D⁻¹` with `D = diag(rs(R))`.
///
/// The fixed point satisfies `π R = π D`, i.e. `π Q = 0`. Like the power
/// method it needs only `y += x·R` and runs over matrix diagrams.
///
/// # Errors
///
/// Same as [`stationary_power`].
pub fn stationary_jacobi<M: RateMatrix>(rates: &M, options: &SolverOptions) -> Result<Solution> {
    let n = rates.num_states();
    let d = exit_rates(rates)?;
    let obs = SolveObs::new("solve.jacobi", "jacobi", n);

    let mut omega = options.jacobi_damping;
    assert!(
        omega > 0.0 && omega <= 1.0,
        "jacobi_damping must be in (0, 1]"
    );
    let check_every = options.check_every.max(1);
    let mut ticker = options.budget.ticker(32);
    let mut guard = StagnationGuard::new(options.stagnation_window);
    let mut tightenings = 0u32;
    let mut pi = initial_iterate(n, options)?;
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=options.max_iterations {
        if let Err(reason) = ticker.tick() {
            let _ = obs.done(it - 1, residual, false);
            maybe_checkpoint(options, it - 1, residual, &pi, true);
            return Err(CtmcError::interrupted(
                "solve.jacobi",
                it - 1,
                residual,
                pi,
                reason,
            ));
        }
        vec_ops::fill(&mut next, 0.0);
        rates.acc_vec_mat(&pi, &mut next);
        for s in 0..n {
            next[s] = (1.0 - omega) * pi[s] + omega * next[s] / d[s];
        }
        inject_iterate(&mut next, it)?;
        let (diff, sum) = vec_ops::normalize_l1_max_diff_guarded(&mut next, &pi);
        residual = diff;
        if !sum.is_finite() {
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::Diverged {
                iteration: it,
                residual,
            });
        }
        std::mem::swap(&mut pi, &mut next);
        if residual < options.tolerance {
            obs.check(it, residual);
            return Ok(Solution {
                probabilities: pi,
                stats: obs.done(it, residual, true),
            });
        }
        maybe_checkpoint(options, it, residual, &pi, false);
        if guard.observe(residual) {
            // Stagnation or oscillation: tighten the damping before
            // giving up — a smaller ω breaks period-2 cycling without
            // moving the fixed point.
            if tightenings < MAX_DAMPING_TIGHTENINGS {
                tightenings += 1;
                omega *= 0.5;
                guard.reset();
                mdl_obs::counter("solve.guard.tighten").inc();
                mdl_obs::point("solve.guard", || {
                    vec![
                        ("method", mdl_obs::Value::from("jacobi")),
                        ("iteration", mdl_obs::Value::from(it)),
                        ("omega", mdl_obs::Value::from(omega)),
                        ("residual", mdl_obs::Value::from(residual)),
                    ]
                });
                continue;
            }
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::NotConverged {
                iterations: it,
                residual,
            });
        }
        if it % check_every == 0 {
            obs.check(it, residual);
        }
    }
    let _ = obs.done(options.max_iterations, residual, false);
    Err(CtmcError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

/// Stationary distribution by Gauss–Seidel sweeps, for flat CSR matrices.
///
/// Solves `π Q = 0` columnwise, using updated values within a sweep:
/// `π(j) ← Σ_{i≠j} π(i)·R(i,j) / R(j, S)`. Requires column access, hence
/// the flat-matrix restriction (this is the classical reference solver the
/// matrix-diagram solvers are validated against).
///
/// # Errors
///
/// Same as [`stationary_power`].
pub fn stationary_gauss_seidel(rates: &CsrMatrix, options: &SolverOptions) -> Result<Solution> {
    let n = rates.num_states();
    let d = exit_rates(rates)?;
    let obs = SolveObs::new("solve.gauss_seidel", "gauss_seidel", n);
    let columns = rates.transpose(); // row r of `columns` = column r of `rates`
    let check_every = options.check_every.max(1);

    let mut ticker = options.budget.ticker(32);
    let mut guard = StagnationGuard::new(options.stagnation_window);
    let mut pi = initial_iterate(n, options)?;
    let mut prev = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=options.max_iterations {
        if let Err(reason) = ticker.tick() {
            let _ = obs.done(it - 1, residual, false);
            maybe_checkpoint(options, it - 1, residual, &pi, true);
            return Err(CtmcError::interrupted(
                "solve.gauss_seidel",
                it - 1,
                residual,
                pi,
                reason,
            ));
        }
        prev.copy_from_slice(&pi);
        for j in 0..n {
            let mut acc = 0.0;
            for (i, v) in columns.row(j) {
                if i != j {
                    acc += pi[i] * v;
                }
            }
            // Self-loops in R cancel between R and rs(R) in Q; the diagonal
            // divisor is the *exit* rate net of the self-loop.
            let self_loop = rates.get(j, j);
            let denom = d[j] - self_loop;
            if denom <= 0.0 {
                return Err(CtmcError::AbsorbingState { state: j });
            }
            pi[j] = acc / denom;
        }
        inject_iterate(&mut pi, it)?;
        let (diff, sum) = vec_ops::normalize_l1_max_diff_guarded(&mut pi, &prev);
        residual = diff;
        if !sum.is_finite() {
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::Diverged {
                iteration: it,
                residual,
            });
        }
        if residual < options.tolerance {
            obs.check(it, residual);
            return Ok(Solution {
                probabilities: pi,
                stats: obs.done(it, residual, true),
            });
        }
        maybe_checkpoint(options, it, residual, &pi, false);
        if guard.observe(residual) {
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::NotConverged {
                iterations: it,
                residual,
            });
        }
        if it % check_every == 0 {
            obs.check(it, residual);
        }
    }
    let _ = obs.done(options.max_iterations, residual, false);
    Err(CtmcError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

/// Stationary distribution by successive over-relaxation (SOR): a
/// Gauss–Seidel sweep blended with the previous iterate by the relaxation
/// factor `omega` (`omega = 1` is exactly Gauss–Seidel; `1 < omega < 2`
/// typically accelerates convergence on diffusive chains). Flat CSR only.
///
/// Over-relaxed sweeps can oscillate slowly on strongly cyclic chains,
/// fooling an iterate-difference stopping rule; SOR therefore converges on
/// the **true equation residual** `‖π Q‖∞ < tolerance` (one extra sparse
/// pass per check).
///
/// # Errors
///
/// As for [`stationary_gauss_seidel`].
///
/// # Panics
///
/// Panics unless `0 < omega < 2`.
pub fn stationary_sor(rates: &CsrMatrix, omega: f64, options: &SolverOptions) -> Result<Solution> {
    assert!(omega > 0.0 && omega < 2.0, "SOR requires 0 < omega < 2");
    let n = rates.num_states();
    let d = exit_rates(rates)?;
    let obs = SolveObs::new("solve.sor", "sor", n);
    let columns = rates.transpose();
    let check_every = options.check_every.max(1);

    let mut ticker = options.budget.ticker(32);
    let mut guard = StagnationGuard::new(options.stagnation_window);
    let mut pi = initial_iterate(n, options)?;
    let mut flow = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=options.max_iterations {
        if let Err(reason) = ticker.tick() {
            let _ = obs.done(it - 1, residual, false);
            maybe_checkpoint(options, it - 1, residual, &pi, true);
            return Err(CtmcError::interrupted(
                "solve.sor",
                it - 1,
                residual,
                pi,
                reason,
            ));
        }
        for j in 0..n {
            let mut acc = 0.0;
            for (i, v) in columns.row(j) {
                if i != j {
                    acc += pi[i] * v;
                }
            }
            let self_loop = rates.get(j, j);
            let denom = d[j] - self_loop;
            if denom <= 0.0 {
                return Err(CtmcError::AbsorbingState { state: j });
            }
            let gs = acc / denom;
            pi[j] = (1.0 - omega) * pi[j] + omega * gs;
        }
        inject_iterate(&mut pi, it)?;
        let sum = vec_ops::normalize_l1(&mut pi);
        if !sum.is_finite() {
            let _ = obs.done(it, residual, false);
            return Err(CtmcError::Diverged {
                iteration: it,
                residual: f64::NAN,
            });
        }
        if it % check_every == 0 {
            // ‖π Q‖∞ = max_j |(π R)(j) − π(j)·d(j)|.
            vec_ops::fill(&mut flow, 0.0);
            rates.acc_vec_mat(&pi, &mut flow);
            for j in 0..n {
                flow[j] -= pi[j] * d[j];
            }
            residual = vec_ops::max_abs(&flow);
            obs.check(it, residual);
            if residual < options.tolerance {
                return Ok(Solution {
                    probabilities: pi,
                    stats: obs.done(it, residual, true),
                });
            }
            maybe_checkpoint(options, it, residual, &pi, false);
            // The guard sees one sample per *check*, so its window counts
            // checks here — still a fixed multiple of real iterations.
            if guard.observe(residual) {
                let _ = obs.done(it, residual, false);
                return Err(CtmcError::NotConverged {
                    iterations: it,
                    residual,
                });
            }
        }
    }
    let _ = obs.done(options.max_iterations, residual, false);
    Err(CtmcError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::CooMatrix;

    fn birth_death(up: f64, down: f64, n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for s in 0..n - 1 {
            coo.push(s, s + 1, up);
            coo.push(s + 1, s, down);
        }
        coo.to_csr()
    }

    fn analytic_birth_death(up: f64, down: f64, n: usize) -> Vec<f64> {
        let rho = up / down;
        let mut pi: Vec<f64> = (0..n).map(|k| rho.powi(k as i32)).collect();
        let sum: f64 = pi.iter().sum();
        for p in pi.iter_mut() {
            *p /= sum;
        }
        pi
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert!(
            vec_ops::max_abs_diff(a, b) < tol,
            "vectors differ: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn power_matches_analytic() {
        let r = birth_death(2.0, 3.0, 5);
        let sol = stationary_power(&r, &SolverOptions::default()).unwrap();
        assert_close(&sol.probabilities, &analytic_birth_death(2.0, 3.0, 5), 1e-7);
    }

    #[test]
    fn jacobi_matches_analytic() {
        let r = birth_death(1.0, 2.0, 6);
        let opts = SolverOptions {
            method: StationaryMethod::Jacobi,
            ..Default::default()
        };
        let sol = stationary_jacobi(&r, &opts).unwrap();
        assert_close(&sol.probabilities, &analytic_birth_death(1.0, 2.0, 6), 1e-7);
    }

    #[test]
    fn gauss_seidel_matches_analytic() {
        let r = birth_death(2.5, 1.5, 4);
        let sol = stationary_gauss_seidel(&r, &SolverOptions::default()).unwrap();
        assert_close(&sol.probabilities, &analytic_birth_death(2.5, 1.5, 4), 1e-7);
    }

    #[test]
    fn methods_agree_on_random_chain() {
        // Fully-connected 4-state chain with assorted rates.
        let mut coo = CooMatrix::new(4, 4);
        let rates = [
            (0, 1, 1.0),
            (0, 2, 0.5),
            (1, 3, 2.0),
            (2, 0, 0.3),
            (2, 3, 0.7),
            (3, 0, 1.1),
            (1, 0, 0.2),
        ];
        for (i, j, v) in rates {
            coo.push(i, j, v);
        }
        let r = coo.to_csr();
        let p = stationary_power(&r, &SolverOptions::default())
            .unwrap()
            .probabilities;
        let j = stationary_jacobi(&r, &SolverOptions::default())
            .unwrap()
            .probabilities;
        let g = stationary_gauss_seidel(&r, &SolverOptions::default())
            .unwrap()
            .probabilities;
        assert_close(&p, &j, 1e-7);
        assert_close(&p, &g, 1e-7);
    }

    #[test]
    fn sor_matches_analytic_and_beats_gs_on_iterations() {
        let r = birth_death(1.0, 2.0, 30);
        let expected = analytic_birth_death(1.0, 2.0, 30);
        let opts = SolverOptions {
            tolerance: 1e-12,
            ..Default::default()
        };
        let gs = stationary_gauss_seidel(&r, &opts).unwrap();
        let sor = stationary_sor(&r, 1.5, &opts).unwrap();
        assert_close(&sor.probabilities, &expected, 1e-9);
        assert!(
            sor.stats.iterations <= gs.stats.iterations,
            "SOR {} vs GS {}",
            sor.stats.iterations,
            gs.stats.iterations
        );
    }

    #[test]
    fn sor_with_omega_one_is_gauss_seidel() {
        let r = birth_death(2.0, 3.0, 6);
        // Same sweeps (the stopping criteria differ: SOR checks ‖πQ‖∞),
        // same fixed point.
        let a = stationary_sor(&r, 1.0, &SolverOptions::default()).unwrap();
        let b = stationary_gauss_seidel(&r, &SolverOptions::default()).unwrap();
        assert_close(&a.probabilities, &b.probabilities, 1e-9);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn sor_rejects_bad_relaxation() {
        let r = birth_death(1.0, 1.0, 3);
        let _ = stationary_sor(&r, 2.5, &SolverOptions::default());
    }

    #[test]
    fn absorbing_state_detected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0); // state 1 has no exit
        let err = stationary_power(&coo.to_csr(), &SolverOptions::default()).unwrap_err();
        assert!(matches!(err, CtmcError::AbsorbingState { state: 1 }));
    }

    #[test]
    fn iteration_budget_respected() {
        let r = birth_death(1.0, 4.0, 50);
        let opts = SolverOptions {
            max_iterations: 2,
            ..Default::default()
        };
        let err = stationary_power(&r, &opts).unwrap_err();
        assert!(matches!(err, CtmcError::NotConverged { iterations: 2, .. }));
    }

    #[test]
    fn self_loops_do_not_change_stationary() {
        // Adding self-loops to R changes rs(R) and R equally; Q and π are
        // unchanged.
        let base = birth_death(2.0, 3.0, 4);
        let mut with_loops = base.to_coo();
        for s in 0..4 {
            with_loops.push(s, s, 5.0);
        }
        let with_loops = with_loops.to_csr();
        let a = stationary_power(&base, &SolverOptions::default())
            .unwrap()
            .probabilities;
        let b = stationary_power(&with_loops, &SolverOptions::default())
            .unwrap()
            .probabilities;
        assert_close(&a, &b, 1e-7);
        let g = stationary_gauss_seidel(&with_loops, &SolverOptions::default())
            .unwrap()
            .probabilities;
        assert_close(&a, &g, 1e-7);
    }

    #[test]
    fn solution_expected_reward() {
        let sol = Solution {
            probabilities: vec![0.25, 0.75],
            stats: SolveStats {
                iterations: 1,
                residual: 0.0,
                elapsed: std::time::Duration::ZERO,
            },
        };
        assert_eq!(sol.try_expected_reward(&[4.0, 0.0]).unwrap(), 1.0);
        // The deprecated panicking path stays behaviorally identical.
        #[allow(deprecated)]
        let legacy = sol.expected_reward(&[4.0, 0.0]);
        assert_eq!(legacy, 1.0);
        assert!(matches!(
            sol.try_expected_reward(&[1.0]),
            Err(CtmcError::LengthMismatch {
                what: "reward vector",
                got: 1,
                expected: 2,
            })
        ));
    }

    #[test]
    fn check_every_gt_one_reports_true_iteration_count() {
        // The iterate-difference solvers fuse the residual into the
        // normalization pass, so check_every must not change when
        // convergence is detected: the reported iteration count equals the
        // every-iteration baseline exactly, not the next multiple of 7.
        let r = birth_death(2.0, 3.0, 6);
        let expected = analytic_birth_death(2.0, 3.0, 6);
        type Solver = fn(&CsrMatrix, &SolverOptions) -> Result<Solution>;
        let solvers: [(&str, Solver); 3] = [
            ("power", stationary_power::<CsrMatrix>),
            ("jacobi", stationary_jacobi::<CsrMatrix>),
            ("gauss_seidel", stationary_gauss_seidel),
        ];
        for (name, solve) in solvers {
            let base = SolverOptions {
                tolerance: 1e-10,
                ..Default::default()
            };
            let dense = solve(&r, &base).unwrap();
            let sparse = solve(
                &r,
                &SolverOptions {
                    check_every: 7,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(
                sparse.stats.iterations, dense.stats.iterations,
                "{name}: check_every must not inflate the iteration count"
            );
            assert!(
                dense.stats.iterations % 7 != 0,
                "{name}: baseline accidentally lands on a multiple of 7, \
                 weakening the test"
            );
            assert!(
                sparse.stats.residual < 1e-10,
                "{name}: residual {} is the converged one",
                sparse.stats.residual
            );
            assert_eq!(sparse.probabilities, dense.probabilities, "{name}");
            assert_close(&sparse.probabilities, &expected, 1e-7);
        }
    }

    #[test]
    fn sor_check_every_still_checks_on_multiples() {
        // SOR's equation residual ‖πQ‖∞ costs an extra sparse product, so
        // it keeps the throttled check: convergence is detected on the
        // first multiple of check_every at or after the baseline count.
        let r = birth_death(2.0, 3.0, 6);
        let base = SolverOptions {
            tolerance: 1e-10,
            ..Default::default()
        };
        let dense = stationary_sor(&r, 1.2, &base).unwrap();
        let sparse = stationary_sor(
            &r,
            1.2,
            &SolverOptions {
                check_every: 7,
                ..base
            },
        )
        .unwrap();
        assert_eq!(sparse.stats.iterations % 7, 0);
        assert!(sparse.stats.iterations >= dense.stats.iterations);
        assert!(sparse.stats.iterations < dense.stats.iterations + 7);
        assert!(sparse.stats.residual < 1e-10);
    }

    #[test]
    fn check_every_zero_is_treated_as_one() {
        let r = birth_death(2.0, 3.0, 6);
        let opts = SolverOptions {
            check_every: 0,
            ..Default::default()
        };
        let baseline = stationary_power(&r, &SolverOptions::default()).unwrap();
        let sol = stationary_power(&r, &opts).unwrap();
        assert_eq!(sol.stats.iterations, baseline.stats.iterations);
        let sor = stationary_sor(&r, 1.2, &opts).unwrap();
        assert!(sor.stats.residual < opts.tolerance);
    }

    #[test]
    fn jacobi_damping_converges_on_birth_death() {
        // The undamped (ω = 1) Jacobi iteration follows the embedded jump
        // chain, which is periodic on a birth–death chain; damping mixes
        // in the previous iterate and restores convergence. Any ω ∈ (0, 1)
        // must reach the analytic fixed point.
        let r = birth_death(1.5, 2.5, 8);
        let expected = analytic_birth_death(1.5, 2.5, 8);
        for omega in [0.3, 0.6, 0.9] {
            let opts = SolverOptions {
                jacobi_damping: omega,
                tolerance: 1e-12,
                ..Default::default()
            };
            let sol = stationary_jacobi(&r, &opts).unwrap();
            assert_close(&sol.probabilities, &expected, 1e-8);
            assert!(sol.stats.residual < 1e-12, "omega={omega}");
        }
    }

    #[test]
    fn expired_deadline_interrupts_with_partial_iterate() {
        let r = birth_death(1.0, 2.0, 8);
        let opts = SolverOptions {
            budget: mdl_obs::Budget::unlimited().deadline_in(std::time::Duration::ZERO),
            ..Default::default()
        };
        let err = stationary_power(&r, &opts).unwrap_err();
        match err {
            CtmcError::Interrupted { phase, progress } => {
                assert_eq!(phase, "solve.power");
                assert_eq!(progress.iterations, 0);
                assert_eq!(progress.partial.len(), 8);
                assert!(matches!(
                    progress.reason,
                    mdl_obs::BudgetExceeded::Deadline { .. }
                ));
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // The other solvers honor the same budget.
        let jac = stationary_jacobi(&r, &opts).unwrap_err();
        assert!(matches!(
            jac,
            CtmcError::Interrupted {
                phase: "solve.jacobi",
                ..
            }
        ));
        let gs = stationary_gauss_seidel(&r, &opts).unwrap_err();
        assert!(matches!(
            gs,
            CtmcError::Interrupted {
                phase: "solve.gauss_seidel",
                ..
            }
        ));
        let sor = stationary_sor(&r, 1.2, &opts).unwrap_err();
        assert!(matches!(
            sor,
            CtmcError::Interrupted {
                phase: "solve.sor",
                ..
            }
        ));
    }

    #[test]
    fn cancellation_interrupts_mid_solve() {
        let token = mdl_obs::CancelToken::new();
        token.cancel();
        let r = birth_death(2.0, 3.0, 5);
        let opts = SolverOptions {
            budget: mdl_obs::Budget::unlimited().cancelled_by(&token),
            ..Default::default()
        };
        let err = stationary_power(&r, &opts).unwrap_err();
        assert!(matches!(
            err,
            CtmcError::Interrupted { progress, .. }
                if progress.reason == mdl_obs::BudgetExceeded::Cancelled
        ));
    }

    #[test]
    fn injected_nan_is_caught_as_diverged_at_exact_iteration() {
        let _g = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("solver.iterate", "nan@5").unwrap();
        let r = birth_death(2.0, 3.0, 12);
        let err = stationary_power(
            &r,
            &SolverOptions {
                tolerance: 1e-15,
                ..Default::default()
            },
        )
        .unwrap_err();
        mdl_obs::failpoint::clear();
        assert!(
            matches!(err, CtmcError::Diverged { iteration: 5, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn injected_err_aborts_immediately() {
        let _g = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("solver.iterate", "err@2").unwrap();
        let r = birth_death(2.0, 3.0, 6);
        let err = stationary_jacobi(
            &r,
            &SolverOptions {
                tolerance: 1e-15,
                ..Default::default()
            },
        )
        .unwrap_err();
        mdl_obs::failpoint::clear();
        assert!(matches!(err, CtmcError::Diverged { iteration: 2, .. }));
    }

    #[test]
    fn undamped_jacobi_auto_tightens_and_converges() {
        // ω = 1 Jacobi follows the embedded jump chain, which is periodic
        // on a birth–death chain: the residual locks constant. Instead of
        // burning 200k iterations into NotConverged (the old behavior),
        // the oscillation guard now halves ω and the iteration converges.
        let r = birth_death(1.5, 2.5, 8);
        let expected = analytic_birth_death(1.5, 2.5, 8);
        let sol = stationary_jacobi(
            &r,
            &SolverOptions {
                jacobi_damping: 1.0,
                tolerance: 1e-12,
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(&sol.probabilities, &expected, 1e-8);
        assert!(
            sol.stats.iterations < 5_000,
            "guard should rescue ω=1 quickly, took {}",
            sol.stats.iterations
        );
    }

    #[test]
    fn stagnation_guard_disabled_with_zero_window() {
        // With the guard off, ω = 1 Jacobi oscillates to the iteration cap.
        let r = birth_death(1.5, 2.5, 8);
        let err = stationary_jacobi(
            &r,
            &SolverOptions {
                jacobi_damping: 1.0,
                stagnation_window: 0,
                max_iterations: 500,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CtmcError::NotConverged {
                iterations: 500,
                ..
            }
        ));
    }

    #[test]
    fn stagnation_guard_stops_hopeless_power_iteration_early() {
        // An unreachable tolerance: the residual bottoms out at rounding
        // noise, and the guard ends the run well before max_iterations.
        let r = birth_death(2.0, 3.0, 6);
        let err = stationary_power(
            &r,
            &SolverOptions {
                tolerance: 0.0,
                stagnation_window: 200,
                ..Default::default()
            },
        )
        .unwrap_err();
        match err {
            CtmcError::NotConverged { iterations, .. } => {
                assert!(iterations < 200_000, "early stop, got {iterations}")
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn solver_emits_span_and_check_events() {
        use mdl_obs::{EventKind, Value};
        let _g = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_tracing(true);
        let sub = std::sync::Arc::new(mdl_obs::MemorySubscriber::new());
        mdl_obs::add_subscriber(sub.clone());

        // 13 states: unique in this module, so the span below is ours even
        // if a concurrently running test also solves with obs enabled.
        let r = birth_death(2.0, 3.0, 13);
        let sol = stationary_power(
            &r,
            &SolverOptions {
                check_every: 3,
                ..Default::default()
            },
        )
        .unwrap();

        mdl_obs::clear_subscribers();
        mdl_obs::set_enabled(false);
        let events = sub.take();
        let span = events
            .iter()
            .find(|e| {
                e.kind == EventKind::SpanEnd
                    && e.name == "solve.power"
                    && e.fields.contains(&("n", Value::U64(13)))
            })
            .expect("solve.power span emitted");
        assert!(span.nanos.is_some(), "span carries a duration");
        assert!(span
            .fields
            .contains(&("iterations", Value::U64(sol.stats.iterations as u64))));
        assert!(span.fields.contains(&("converged", Value::Bool(true))));
        // The last residual check was emitted as a point event.
        assert!(events.iter().any(|e| {
            e.kind == EventKind::Point
                && e.name == "solve.check"
                && e.fields
                    .contains(&("iteration", Value::U64(sol.stats.iterations as u64)))
        }));
    }

    #[test]
    fn warm_start_near_fixed_point_converges_fast() {
        let r = birth_death(1.0, 2.0, 20);
        let cold = stationary_power(&r, &SolverOptions::default()).unwrap();
        let warm = stationary_power(
            &r,
            &SolverOptions {
                warm_start: Some(cold.probabilities.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            warm.stats.iterations < cold.stats.iterations / 2,
            "warm {} vs cold {}",
            warm.stats.iterations,
            cold.stats.iterations
        );
        assert_close(&warm.probabilities, &cold.probabilities, 1e-9);
    }

    #[test]
    fn warm_start_is_normalized_not_trusted() {
        // An unnormalized warm start must be scaled to a distribution, so
        // the fixed point reached is identical to the cold solve's.
        let r = birth_death(2.0, 3.0, 5);
        let cold = stationary_power(&r, &SolverOptions::default()).unwrap();
        let scaled: Vec<f64> = cold.probabilities.iter().map(|p| 7.0 * p).collect();
        let warm = stationary_power(
            &r,
            &SolverOptions {
                warm_start: Some(scaled),
                ..Default::default()
            },
        )
        .unwrap();
        assert_close(&warm.probabilities, &cold.probabilities, 1e-9);
    }

    #[test]
    fn warm_start_validation_errors() {
        let r = birth_death(1.0, 1.0, 4);
        let short = SolverOptions {
            warm_start: Some(vec![1.0; 3]),
            ..Default::default()
        };
        assert!(matches!(
            stationary_power(&r, &short),
            Err(CtmcError::LengthMismatch {
                what: "warm start",
                got: 3,
                expected: 4,
            })
        ));
        let negative = SolverOptions {
            warm_start: Some(vec![0.5, -0.1, 0.3, 0.3]),
            ..Default::default()
        };
        assert!(matches!(
            stationary_jacobi(&r, &negative),
            Err(CtmcError::InvalidValue {
                what: "warm start",
                index: 1,
                ..
            })
        ));
        let zero = SolverOptions {
            warm_start: Some(vec![0.0; 4]),
            ..Default::default()
        };
        assert!(matches!(
            stationary_gauss_seidel(&r, &zero),
            Err(CtmcError::InvalidValue {
                what: "warm start sum",
                ..
            })
        ));
    }

    #[test]
    fn checkpoint_sink_fires_periodically_and_resumes_identically() {
        use std::sync::{Arc, Mutex};
        let r = birth_death(1.0, 2.0, 30);
        let opts = SolverOptions {
            tolerance: 1e-12,
            ..Default::default()
        };
        let uninterrupted = stationary_power(&r, &opts).unwrap();

        let snaps: Arc<Mutex<Vec<(usize, f64, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_snaps = snaps.clone();
        let with_sink = SolverOptions {
            checkpoint: Some(CheckpointSink {
                every: 10,
                sink: std::sync::Arc::new(move |it, res, pi| {
                    sink_snaps.lock().unwrap().push((it, res, pi.to_vec()));
                }),
            }),
            ..opts.clone()
        };
        let sol = stationary_power(&r, &with_sink).unwrap();
        assert_eq!(sol.probabilities, uninterrupted.probabilities);
        let snaps = snaps.lock().unwrap();
        assert!(!snaps.is_empty(), "sink never fired");
        for (it, _, pi) in snaps.iter() {
            assert_eq!(it % 10, 0);
            assert!(
                (vec_ops::sum(pi) - 1.0).abs() < 1e-12,
                "snapshot normalized"
            );
        }

        // Resuming from a mid-run snapshot reaches the same fixed point.
        let (mid_it, _, mid_pi) = snaps[snaps.len() / 2].clone();
        let resumed = stationary_power(
            &r,
            &SolverOptions {
                warm_start: Some(mid_pi),
                ..opts
            },
        )
        .unwrap();
        assert_close(&resumed.probabilities, &uninterrupted.probabilities, 1e-10);
        assert!(
            mid_it + resumed.stats.iterations
                <= uninterrupted.stats.iterations + uninterrupted.stats.iterations / 4 + 2,
            "resume must not redo substantially more work: {} after {} vs {}",
            resumed.stats.iterations,
            mid_it,
            uninterrupted.stats.iterations
        );
    }

    #[test]
    fn interrupt_flushes_a_final_checkpoint() {
        use std::sync::{Arc, Mutex};
        let r = birth_death(1.0, 2.0, 8);
        let snaps: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_snaps = snaps.clone();
        let opts = SolverOptions {
            budget: mdl_obs::Budget::unlimited().deadline_in(std::time::Duration::ZERO),
            checkpoint: Some(CheckpointSink {
                // Far larger than the run: only the forced interrupt flush
                // can fire.
                every: 1_000_000,
                sink: std::sync::Arc::new(move |it, _res, pi| {
                    sink_snaps.lock().unwrap().push((it, pi.to_vec()));
                }),
            }),
            ..Default::default()
        };
        let err = stationary_power(&r, &opts).unwrap_err();
        let snaps = snaps.lock().unwrap();
        assert_eq!(snaps.len(), 1, "exactly the forced flush");
        let CtmcError::Interrupted { progress, .. } = err else {
            panic!("expected Interrupted");
        };
        assert_eq!(snaps[0].0, progress.iterations);
        assert_eq!(snaps[0].1, progress.partial);
    }
}
