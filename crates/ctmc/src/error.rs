use std::fmt;

/// Errors produced when constructing or solving Markov reward processes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// A vector's length does not match the number of states.
    LengthMismatch {
        /// What the vector represents.
        what: &'static str,
        /// Supplied length.
        got: usize,
        /// Number of states of the CTMC.
        expected: usize,
    },
    /// The initial distribution is not a probability distribution.
    InvalidDistribution {
        /// Sum of the supplied vector.
        sum: f64,
    },
    /// A vector contained a non-finite or (where relevant) negative entry.
    InvalidValue {
        /// What the vector represents.
        what: &'static str,
        /// State index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual when the budget ran out.
        residual: f64,
    },
    /// The chain has a state with no outgoing rate, which the stationary
    /// solvers do not support.
    AbsorbingState {
        /// Index of the absorbing state.
        state: usize,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::LengthMismatch {
                what,
                got,
                expected,
            } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
            CtmcError::InvalidDistribution { sum } => {
                write!(f, "initial distribution sums to {sum}, expected 1")
            }
            CtmcError::InvalidValue { what, index, value } => {
                write!(f, "invalid value {value} at index {index} of {what}")
            }
            CtmcError::NotConverged {
                iterations,
                residual,
            } => {
                write!(f, "solver did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            CtmcError::AbsorbingState { state } => {
                write!(
                    f,
                    "state {state} is absorbing; stationary solution is not unique"
                )
            }
        }
    }
}

impl std::error::Error for CtmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CtmcError, &str)> = vec![
            (
                CtmcError::LengthMismatch {
                    what: "reward vector",
                    got: 2,
                    expected: 3,
                },
                "reward vector",
            ),
            (CtmcError::InvalidDistribution { sum: 0.5 }, "0.5"),
            (
                CtmcError::InvalidValue {
                    what: "exit rates",
                    index: 4,
                    value: f64::INFINITY,
                },
                "index 4",
            ),
            (
                CtmcError::NotConverged {
                    iterations: 10,
                    residual: 0.25,
                },
                "10 iterations",
            ),
            (CtmcError::AbsorbingState { state: 7 }, "state 7"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CtmcError>();
    }
}
