use std::fmt;

use mdl_obs::BudgetExceeded;

/// Progress captured when a budget interrupts an iterative phase, so
/// callers can resume from or report the partial result.
#[derive(Debug, Clone, PartialEq)]
pub struct InterruptedProgress {
    /// Iterations (or steps) completed before the interruption.
    pub iterations: usize,
    /// Last observed residual, `f64::INFINITY` if none was computed yet.
    pub residual: f64,
    /// The partial iterate at the point of interruption (normalized for
    /// the stationary solvers). Empty when the phase has no iterate.
    pub partial: Vec<f64>,
    /// Which budget limit fired.
    pub reason: BudgetExceeded,
}

/// Errors produced when constructing or solving Markov reward processes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// A vector's length does not match the number of states.
    LengthMismatch {
        /// What the vector represents.
        what: &'static str,
        /// Supplied length.
        got: usize,
        /// Number of states of the CTMC.
        expected: usize,
    },
    /// The initial distribution is not a probability distribution.
    InvalidDistribution {
        /// Sum of the supplied vector.
        sum: f64,
    },
    /// A vector contained a non-finite or (where relevant) negative entry.
    InvalidValue {
        /// What the vector represents.
        what: &'static str,
        /// State index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual when the budget ran out.
        residual: f64,
    },
    /// The chain has a state with no outgoing rate, which the stationary
    /// solvers do not support.
    AbsorbingState {
        /// Index of the absorbing state.
        state: usize,
    },
    /// The iterate became non-finite. Unlike [`NotConverged`]
    /// (slow but sane), a diverged iterate is garbage and reported the
    /// moment it appears.
    ///
    /// [`NotConverged`]: CtmcError::NotConverged
    Diverged {
        /// The iteration whose iterate first went non-finite.
        iteration: usize,
        /// The ∞-norm residual of that iteration (may itself be NaN).
        residual: f64,
    },
    /// A [`Budget`](mdl_obs::Budget) limit interrupted the phase.
    Interrupted {
        /// Which phase was interrupted (e.g. `solve.power`,
        /// `solve.transient`).
        phase: &'static str,
        /// Work completed so far, including the partial iterate.
        progress: Box<InterruptedProgress>,
    },
}

impl CtmcError {
    /// Builds an [`Interrupted`](CtmcError::Interrupted) error from a
    /// failed budget check.
    pub fn interrupted(
        phase: &'static str,
        iterations: usize,
        residual: f64,
        partial: Vec<f64>,
        reason: BudgetExceeded,
    ) -> Self {
        CtmcError::Interrupted {
            phase,
            progress: Box::new(InterruptedProgress {
                iterations,
                residual,
                partial,
                reason,
            }),
        }
    }
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::LengthMismatch {
                what,
                got,
                expected,
            } => {
                write!(f, "{what} has length {got}, expected {expected}")
            }
            CtmcError::InvalidDistribution { sum } => {
                write!(f, "initial distribution sums to {sum}, expected 1")
            }
            CtmcError::InvalidValue { what, index, value } => {
                write!(f, "invalid value {value} at index {index} of {what}")
            }
            CtmcError::NotConverged {
                iterations,
                residual,
            } => {
                write!(f, "solver did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            CtmcError::AbsorbingState { state } => {
                write!(
                    f,
                    "state {state} is absorbing; stationary solution is not unique"
                )
            }
            CtmcError::Diverged {
                iteration,
                residual,
            } => {
                write!(
                    f,
                    "iterate diverged (non-finite) at iteration {iteration} (residual {residual})"
                )
            }
            CtmcError::Interrupted { phase, progress } => {
                write!(
                    f,
                    "interrupted during {phase} after {} iterations: {}",
                    progress.iterations, progress.reason
                )
            }
        }
    }
}

impl std::error::Error for CtmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CtmcError, &str)> = vec![
            (
                CtmcError::LengthMismatch {
                    what: "reward vector",
                    got: 2,
                    expected: 3,
                },
                "reward vector",
            ),
            (CtmcError::InvalidDistribution { sum: 0.5 }, "0.5"),
            (
                CtmcError::InvalidValue {
                    what: "exit rates",
                    index: 4,
                    value: f64::INFINITY,
                },
                "index 4",
            ),
            (
                CtmcError::NotConverged {
                    iterations: 10,
                    residual: 0.25,
                },
                "10 iterations",
            ),
            (CtmcError::AbsorbingState { state: 7 }, "state 7"),
            (
                CtmcError::Diverged {
                    iteration: 42,
                    residual: f64::NAN,
                },
                "iteration 42",
            ),
            (
                CtmcError::interrupted("solve.power", 9, 0.5, vec![], BudgetExceeded::Cancelled),
                "solve.power",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CtmcError>();
    }
}
