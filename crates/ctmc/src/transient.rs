use mdl_linalg::{vec_ops, RateMatrix};

use crate::solver::{Solution, SolveStats};
use crate::{CtmcError, Result};

/// Mid-run state of a uniformization solve, sufficient to resume it.
///
/// The invariant at every snapshot point: `result` holds the weighted
/// Poisson terms `0 .. steps`, `v = π₀ Pˢᵗᵉᵖˢ` is the next power iterate
/// to weigh, and `ln_weight = ln PoissonΛt(steps)`. Resuming via
/// [`TransientOptions::resume_from`] is only meaningful against the same
/// matrix, initial distribution and horizon `t` — content-addressed
/// callers guarantee that by keying checkpoints on those inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientProgress {
    /// Uniformization steps applied so far (the next Poisson term index).
    pub steps: usize,
    /// `ln PoissonΛt(steps)`, the log-weight of the next term.
    pub ln_weight: f64,
    /// Poisson mass already accumulated into `result`.
    pub accumulated: f64,
    /// The current power iterate `π₀ Pˢᵗᵉᵖˢ`.
    pub v: Vec<f64>,
    /// The weighted partial sum `Σ_{k<steps} PoissonΛt(k) · π₀ Pᵏ`.
    pub result: Vec<f64>,
}

/// Periodic snapshot hook for long transient solves: the sink receives a
/// full [`TransientProgress`] every [`every`](TransientSink::every) steps
/// and once more when the compute budget interrupts the solve.
#[derive(Clone)]
pub struct TransientSink {
    /// Snapshot period in uniformization steps (`< 1` treated as `1`).
    pub every: usize,
    /// The callback.
    pub sink: std::sync::Arc<dyn Fn(&TransientProgress) + Send + Sync>,
}

impl std::fmt::Debug for TransientSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransientSink")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

impl PartialEq for TransientSink {
    fn eq(&self, other: &Self) -> bool {
        self.every == other.every && std::sync::Arc::ptr_eq(&self.sink, &other.sink)
    }
}

fn emit_checkpoint(
    ck: &TransientSink,
    steps: usize,
    ln_weight: f64,
    accumulated: f64,
    v: &[f64],
    result: &[f64],
) {
    (ck.sink)(&TransientProgress {
        steps,
        ln_weight,
        accumulated,
        v: v.to_vec(),
        result: result.to_vec(),
    });
    mdl_obs::counter("solve.checkpoint").inc();
}

/// Options for transient solution by uniformization.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Truncation error bound: the Poisson tail mass left out of the sum.
    pub epsilon: f64,
    /// Hard cap on the number of uniformization steps (safety valve).
    pub max_steps: usize,
    /// Steady-state detection threshold: when successive `v_k = v₀ Pᵏ`
    /// iterates differ by less than this (∞-norm), the chain is treated as
    /// converged and the remaining Poisson mass is assigned to the current
    /// iterate — the standard optimization for long horizons `Λt ≫ mixing
    /// time`. Set to `0.0` to disable.
    pub steady_state_epsilon: f64,
    /// Compute budget, checked amortized from the step loop; on failure
    /// the solver returns [`CtmcError::Interrupted`] carrying the partial
    /// accumulated distribution. Unlimited by default.
    pub budget: mdl_obs::Budget,
    /// Resume from a previous run's snapshot instead of starting at
    /// `π₀`. Must come from a solve of the same matrix, initial
    /// distribution and horizon; lengths are validated, provenance is the
    /// caller's contract. Does not enter any cache key.
    pub resume_from: Option<TransientProgress>,
    /// Periodic snapshot hook; `None` disables checkpointing.
    pub checkpoint: Option<TransientSink>,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-12,
            max_steps: 10_000_000,
            steady_state_epsilon: 1e-14,
            budget: mdl_obs::Budget::unlimited(),
            resume_from: None,
            checkpoint: None,
        }
    }
}

/// Transient distribution `π(t) = Σ_k PoissonΛt(k) · π₀ Pᵏ` by
/// uniformization (Jensen's method), with `P = I + Q/Λ` and
/// `Λ = 1.02 · max_s R(s, S)`.
///
/// Needs only the `y += x·R` product, so it runs over matrix diagrams as
/// well as flat matrices. The Poisson weights are generated iteratively and
/// renormalized, which is numerically safe for the moderate `Λ·t` values
/// exercised here.
///
/// # Errors
///
/// * [`CtmcError::InvalidValue`] if `t` is negative or non-finite;
/// * [`CtmcError::LengthMismatch`] if `initial` has the wrong length;
/// * [`CtmcError::NotConverged`] if `max_steps` is hit before the Poisson
///   tail drops below `epsilon`.
pub fn transient_uniformization<M: RateMatrix>(
    rates: &M,
    initial: &[f64],
    t: f64,
    options: &TransientOptions,
) -> Result<Solution> {
    let d = rates.row_sums();
    transient_uniformization_with_exit_rates(rates, &d, initial, t, options, true)
}

/// [`transient_uniformization`] with an explicitly supplied diagonal
/// (generator `Q = R − diag(exit)`) and control over the final
/// renormalization.
///
/// Set `renormalize: false` when evolving a vector that is not a
/// probability distribution — e.g. the per-state vector `ν̂` of an
/// exact-lumped chain — so the truncated Poisson tail is not compensated
/// by rescaling. Used by `mdl-core::exact`.
///
/// # Errors
///
/// As for [`transient_uniformization`], plus a length check on `exit`.
pub fn transient_uniformization_with_exit_rates<M: RateMatrix>(
    rates: &M,
    exit: &[f64],
    initial: &[f64],
    t: f64,
    options: &TransientOptions,
    renormalize: bool,
) -> Result<Solution> {
    let start = std::time::Instant::now();
    let n = rates.num_states();
    if initial.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "initial distribution",
            got: initial.len(),
            expected: n,
        });
    }
    if exit.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "exit rates",
            got: exit.len(),
            expected: n,
        });
    }
    if !t.is_finite() || t < 0.0 {
        return Err(CtmcError::InvalidValue {
            what: "time horizon",
            index: 0,
            value: t,
        });
    }

    let d = exit;
    let max_rate = d.iter().cloned().fold(0.0, f64::max);
    if max_rate == 0.0 || t == 0.0 {
        // No transitions can fire, or zero horizon.
        return Ok(Solution {
            probabilities: initial.to_vec(),
            stats: SolveStats {
                iterations: 0,
                residual: 0.0,
                elapsed: start.elapsed(),
            },
        });
    }
    let lambda = 1.02 * max_rate;
    let lt = lambda * t;

    // v_k = π₀ Pᵏ, accumulated with Poisson(Λt) weights. The Poisson
    // weights are generated iteratively in log space (underflow-safe);
    // accumulated mass decides truncation. A resume snapshot replaces the
    // k = 0 initial state wholesale.
    let (mut v, mut result, mut ln_weight, mut accumulated, mut k);
    if let Some(p) = &options.resume_from {
        if p.v.len() != n {
            return Err(CtmcError::LengthMismatch {
                what: "resume iterate",
                got: p.v.len(),
                expected: n,
            });
        }
        if p.result.len() != n {
            return Err(CtmcError::LengthMismatch {
                what: "resume accumulation",
                got: p.result.len(),
                expected: n,
            });
        }
        if !(0.0..=1.0 + 1e-9).contains(&p.accumulated) {
            return Err(CtmcError::InvalidValue {
                what: "resume accumulated mass",
                index: 0,
                value: p.accumulated,
            });
        }
        v = p.v.clone();
        result = p.result.clone();
        ln_weight = p.ln_weight;
        accumulated = p.accumulated;
        k = p.steps;
    } else {
        v = initial.to_vec();
        result = vec![0.0; n];
        ln_weight = -lt; // ln P(k=0)
        accumulated = 0.0;
        k = 0;
    }
    let mut next = vec![0.0; n];
    let mut ticker = options.budget.ticker(32);
    loop {
        if let Err(reason) = ticker.tick() {
            if let Some(ck) = &options.checkpoint {
                emit_checkpoint(ck, k, ln_weight, accumulated, &v, &result);
            }
            return Err(CtmcError::interrupted(
                "solve.transient",
                k,
                1.0 - accumulated,
                result,
                reason,
            ));
        }
        let w = ln_weight.exp();
        if w > 0.0 {
            vec_ops::axpy(w, &v, &mut result);
            accumulated += w;
        }
        // Right truncation: past the Poisson mode, stop when either the
        // tail mass target is met or the pmf itself has decayed to noise
        // (accumulated rounding over ~Λt terms keeps `accumulated` from
        // ever reaching 1 − ε exactly for very large Λt).
        if (k as f64) >= lt && (1.0 - accumulated <= options.epsilon || w < options.epsilon * 1e-3)
        {
            break;
        }
        if k >= options.max_steps {
            return Err(CtmcError::NotConverged {
                iterations: k,
                residual: 1.0 - accumulated,
            });
        }
        // v ← v P = v + (v·R − v∘d)/Λ
        vec_ops::fill(&mut next, 0.0);
        rates.acc_vec_mat(&v, &mut next);
        for s in 0..n {
            next[s] = v[s] + (next[s] - v[s] * d[s]) / lambda;
        }
        if let Some(mdl_obs::failpoint::Injection::Nan | mdl_obs::failpoint::Injection::Err) =
            mdl_obs::failpoint::hit("transient.step")
        {
            if let Some(x) = next.first_mut() {
                *x = f64::NAN;
            }
        }
        // Any non-finite entry makes the sum non-finite (infinities
        // cannot cancel back), so this one pass is a complete guard.
        if !vec_ops::sum(&next).is_finite() {
            return Err(CtmcError::Diverged {
                iteration: k + 1,
                residual: f64::NAN,
            });
        }
        // Steady-state detection: once the iterates stop moving, the
        // remaining Poisson mass all lands on (essentially) this vector.
        if options.steady_state_epsilon > 0.0
            && vec_ops::max_abs_diff(&v, &next) < options.steady_state_epsilon
        {
            vec_ops::axpy((1.0 - accumulated).max(0.0), &next, &mut result);
            accumulated = 1.0;
            std::mem::swap(&mut v, &mut next);
            break;
        }
        std::mem::swap(&mut v, &mut next);
        k += 1;
        ln_weight += (lt / k as f64).ln();
        if let Some(ck) = &options.checkpoint {
            if k % ck.every.max(1) == 0 {
                emit_checkpoint(ck, k, ln_weight, accumulated, &v, &result);
            }
        }
    }

    // Compensate the truncated tail by renormalizing (probability vectors
    // only; disabled when evolving non-distribution vectors).
    if renormalize {
        vec_ops::normalize_l1(&mut result);
    }
    Ok(Solution {
        probabilities: result,
        stats: SolveStats {
            iterations: k,
            residual: 1.0 - accumulated,
            elapsed: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{stationary_power, SolverOptions};
    use mdl_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> mdl_linalg::CsrMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.to_csr()
    }

    #[test]
    fn matches_analytic_two_state() {
        // π₀(t) for a two-state chain starting in state 0:
        // p(t) = b/(a+b) + a/(a+b)·exp(−(a+b)t)
        let (a, b) = (2.0, 1.0);
        let r = two_state(a, b);
        for &t in &[0.1, 0.5, 1.0, 3.0] {
            let sol =
                transient_uniformization(&r, &[1.0, 0.0], t, &TransientOptions::default()).unwrap();
            let expected = b / (a + b) + a / (a + b) * (-(a + b) * t).exp();
            assert!(
                (sol.probabilities[0] - expected).abs() < 1e-9,
                "t={t}: {} vs {}",
                sol.probabilities[0],
                expected
            );
        }
    }

    #[test]
    fn zero_horizon_returns_initial() {
        let r = two_state(1.0, 1.0);
        let sol =
            transient_uniformization(&r, &[0.3, 0.7], 0.0, &TransientOptions::default()).unwrap();
        assert_eq!(sol.probabilities, vec![0.3, 0.7]);
    }

    #[test]
    fn long_horizon_approaches_stationary() {
        let r = two_state(2.0, 3.0);
        let transient =
            transient_uniformization(&r, &[1.0, 0.0], 50.0, &TransientOptions::default()).unwrap();
        let stationary = stationary_power(&r, &SolverOptions::default()).unwrap();
        assert!(vec_ops::max_abs_diff(&transient.probabilities, &stationary.probabilities) < 1e-8);
    }

    #[test]
    fn steady_state_detection_short_circuits_long_horizons() {
        let r = two_state(4.0, 6.0);
        let t = 10_000.0; // Λt ≈ 10⁵ steps without detection
        let with =
            transient_uniformization(&r, &[1.0, 0.0], t, &TransientOptions::default()).unwrap();
        let without = transient_uniformization(
            &r,
            &[1.0, 0.0],
            t,
            &TransientOptions {
                steady_state_epsilon: 0.0,
                ..TransientOptions::default()
            },
        )
        .unwrap();
        assert!(vec_ops::max_abs_diff(&with.probabilities, &without.probabilities) < 1e-10);
        assert!(
            with.stats.iterations * 100 < without.stats.iterations,
            "{} vs {} iterations",
            with.stats.iterations,
            without.stats.iterations
        );
    }

    #[test]
    fn negative_time_rejected() {
        let r = two_state(1.0, 1.0);
        let err = transient_uniformization(&r, &[1.0, 0.0], -1.0, &TransientOptions::default())
            .unwrap_err();
        assert!(matches!(err, CtmcError::InvalidValue { .. }));
    }

    #[test]
    fn distribution_stays_normalized() {
        let r = two_state(5.0, 0.5);
        let sol =
            transient_uniformization(&r, &[0.5, 0.5], 2.0, &TransientOptions::default()).unwrap();
        let sum: f64 = sol.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(sol.probabilities.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn checkpoint_snapshot_resumes_bit_identically() {
        use std::sync::{Arc, Mutex};
        let r = two_state(3.0, 2.0);
        let t = 8.0;
        // Disable steady-state detection so the run is long enough for
        // several snapshots and the resumed arithmetic replays the same
        // term sequence.
        let base = TransientOptions {
            steady_state_epsilon: 0.0,
            ..TransientOptions::default()
        };
        let full = transient_uniformization(&r, &[1.0, 0.0], t, &base).unwrap();

        let snaps: Arc<Mutex<Vec<TransientProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_snaps = snaps.clone();
        let with_sink = TransientOptions {
            checkpoint: Some(TransientSink {
                every: 5,
                sink: Arc::new(move |p| sink_snaps.lock().unwrap().push(p.clone())),
            }),
            ..base.clone()
        };
        let observed = transient_uniformization(&r, &[1.0, 0.0], t, &with_sink).unwrap();
        assert_eq!(observed.probabilities, full.probabilities);
        let snaps = snaps.lock().unwrap();
        assert!(snaps.len() >= 2, "expected several snapshots");
        for p in snaps.iter() {
            assert_eq!(p.steps % 5, 0);
        }

        // Resuming from a mid-run snapshot replays the identical floating
        // point sequence: the final distribution matches bit for bit.
        let mid = snaps[snaps.len() / 2].clone();
        let resumed = transient_uniformization(
            &r,
            &[1.0, 0.0],
            t,
            &TransientOptions {
                resume_from: Some(mid.clone()),
                ..base
            },
        )
        .unwrap();
        assert_eq!(resumed.probabilities, full.probabilities);
        assert_eq!(resumed.stats.iterations, full.stats.iterations);
        assert!(mid.steps > 0 && mid.steps < full.stats.iterations);
    }

    #[test]
    fn resume_snapshot_is_validated() {
        let r = two_state(1.0, 1.0);
        let bad = TransientOptions {
            resume_from: Some(TransientProgress {
                steps: 3,
                ln_weight: -1.0,
                accumulated: 0.5,
                v: vec![1.0], // wrong length
                result: vec![0.0, 0.0],
            }),
            ..TransientOptions::default()
        };
        let err = transient_uniformization(&r, &[1.0, 0.0], 1.0, &bad).unwrap_err();
        assert!(matches!(
            err,
            CtmcError::LengthMismatch {
                what: "resume iterate",
                ..
            }
        ));
        let bad_mass = TransientOptions {
            resume_from: Some(TransientProgress {
                steps: 3,
                ln_weight: -1.0,
                accumulated: 1.5,
                v: vec![0.5, 0.5],
                result: vec![0.0, 0.0],
            }),
            ..TransientOptions::default()
        };
        let err = transient_uniformization(&r, &[1.0, 0.0], 1.0, &bad_mass).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidValue { .. }));
    }

    #[test]
    fn interrupt_flushes_transient_checkpoint() {
        use std::sync::{Arc, Mutex};
        let r = two_state(2.0, 1.0);
        let snaps: Arc<Mutex<Vec<TransientProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_snaps = snaps.clone();
        let opts = TransientOptions {
            budget: mdl_obs::Budget::unlimited().deadline_in(std::time::Duration::ZERO),
            checkpoint: Some(TransientSink {
                every: 1_000_000,
                sink: Arc::new(move |p| sink_snaps.lock().unwrap().push(p.clone())),
            }),
            ..TransientOptions::default()
        };
        let err = transient_uniformization(&r, &[1.0, 0.0], 5.0, &opts).unwrap_err();
        assert!(matches!(err, CtmcError::Interrupted { .. }));
        let snaps = snaps.lock().unwrap();
        assert_eq!(snaps.len(), 1, "exactly the forced flush");
        assert_eq!(snaps[0].v.len(), 2);
    }
}
