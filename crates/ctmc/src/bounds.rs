//! Certified stationary and transient bounds over an **imprecise CTMC**
//! whose off-diagonal rates live in per-transition intervals.
//!
//! The construction follows Erreygers & De Bock (arXiv:1804.01020) and
//! Krak, De Bock & de Cooman (IJAR 2017): the interval rate matrix
//! induces lower/upper transition operators `Q̲`/`Q̄` (see
//! [`IntervalRateMatrix`]), and the discrete maps `T̲ = I + δQ̲`,
//! `T̄ = I + δQ̄` with `δ·Λ ≤ 1` are monotone lower/upper transition
//! operators of a discrete-time imprecise chain. Two facts make the
//! sweeps *certified at every finite iteration count*, not only in the
//! limit:
//!
//! * **Monotone envelope.** For any precise generator `Q` in the credal
//!   box, `T̲h ≤ (I+δQ)h ≤ T̄h` pointwise, and `I + δQ` is a monotone
//!   (nonnegative) matrix when `δ·Λ ≤ 1`. By induction every lower-sweep
//!   iterate underestimates `(I+δQ)ⁿf` pointwise — including all
//!   floating-point error, because the sweep rounds every operation
//!   toward its bound ([`add_down`]/[`mul_down`] and the operator's own
//!   directed rounding).
//! * **Constant-vector squeeze.** Lower transition operators satisfy
//!   `min T̲h ≥ min h`, so the running minimum of the lower sweep is
//!   non-decreasing and converges (for ergodic chains) to the lower
//!   long-run expectation — and at *any* iteration, `min h̲ₙ` is a sound
//!   lower bound on `lim E[f(X_t)]` for every chain in the box. Dually
//!   for `max h̄ₙ`.
//!
//! Transient bounds additionally carry an explicit discretization error
//! term (the Euler map is not one-sided against `e^{Qt}`); see
//! [`transient_bounds`].
//!
//! Both sweeps are deterministic walks over the operator — the results
//! are bit-identical for every thread count of the underlying kernel.

use std::time::Instant;

use mdl_linalg::weight::{add_down, add_up, mul_down, mul_up, next_up, sub_down};
use mdl_linalg::{Interval, IntervalRateMatrix};

use crate::resilient::{AttemptOutcome, AttemptRecord, RunReport};
use crate::{CtmcError, Result};

/// Options for the certified bound sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsOptions {
    /// Stationary convergence target: a sweep stops once the iterate's
    /// range `max h − min h` falls below this. The returned bounds are
    /// certified regardless — tolerance only controls tightness.
    pub tolerance: f64,
    /// Iteration cap per stationary sweep.
    pub max_iterations: usize,
    /// Transient discretization-error target: the step count is chosen
    /// so the a-priori Euler error bound stays below this (subject to
    /// [`max_steps`](BoundsOptions::max_steps)).
    pub transient_error: f64,
    /// Hard cap on transient uniformization steps per sweep.
    pub max_steps: usize,
    /// Stagnation window for the stationary sweeps: if the range fails
    /// to improve for this many consecutive iterations the sweep stops
    /// early (the bounds stay certified; `converged` reports `false`).
    /// `0` disables the guard.
    pub stagnation_window: usize,
    /// Compute budget (deadline, cancellation), checked amortized from
    /// the sweep loops.
    pub budget: mdl_obs::Budget,
}

impl Default for BoundsOptions {
    fn default() -> Self {
        BoundsOptions {
            tolerance: 1e-10,
            max_iterations: 200_000,
            transient_error: 1e-8,
            max_steps: 10_000_000,
            stagnation_window: 1000,
            budget: mdl_obs::Budget::unlimited(),
        }
    }
}

/// Work counters of one certified bounds computation (both sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsStats {
    /// Iterations (stationary) or uniformization steps (transient) the
    /// lower sweep performed.
    pub lower_iterations: usize,
    /// Same for the upper sweep.
    pub upper_iterations: usize,
    /// Final iterate range of the lower sweep (stationary; `0.0` for
    /// transient sweeps, whose step count is fixed a priori).
    pub lower_residual: f64,
    /// Same for the upper sweep.
    pub upper_residual: f64,
    /// Whether both sweeps met the tolerance / completed their step
    /// count. The bounds are certified either way; `false` only means
    /// they may be looser than requested.
    pub converged: bool,
    /// The uniformization constant `Λ` (an upper bound on every exit
    /// rate, padded 2%).
    pub lambda: f64,
    /// The a-priori Euler discretization error folded into transient
    /// bounds. `0.0` for stationary bounds, which have none.
    pub discretization_error: f64,
    /// Wall-clock time of both sweeps.
    pub elapsed: std::time::Duration,
}

/// A certified enclosure `[lo, hi]` of a scalar measure, with the work
/// it took and a per-sweep attempt report (same shape the resilient
/// scalar ladder produces, so serve/CLI reporting is uniform).
#[derive(Debug, Clone)]
pub struct BoundsSolution {
    /// The certified enclosure.
    pub bounds: Interval,
    /// Work counters.
    pub stats: BoundsStats,
    /// One attempt record per sweep.
    pub report: RunReport,
}

/// Validates a gamble (reward vector) against the state count.
fn check_gamble(f: &[f64], n: usize) -> Result<()> {
    if f.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "reward vector",
            got: f.len(),
            expected: n,
        });
    }
    for (s, &v) in f.iter().enumerate() {
        if !v.is_finite() {
            return Err(CtmcError::InvalidValue {
                what: "reward vector",
                index: s,
                value: v,
            });
        }
    }
    Ok(())
}

/// The uniformization constant: every exit rate in the credal box is
/// `≤ Λ`, padded 2% so `δ = 1/Λ` keeps `I + δQ` strictly monotone.
fn lambda_of<M: IntervalRateMatrix + ?Sized>(rates: &M) -> Result<f64> {
    let raw = rates.max_exit_rate_hi();
    if !raw.is_finite() || raw < 0.0 {
        return Err(CtmcError::InvalidValue {
            what: "max exit rate",
            index: 0,
            value: raw,
        });
    }
    Ok(1.02 * raw)
}

fn min_max(h: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in h {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// One sweep step `h ← h + δ·(Q_bound h)`, rounded toward the bound.
/// Returns `false` if the iterate went non-finite.
fn sweep_step<M: IntervalRateMatrix + ?Sized>(
    rates: &M,
    h: &mut [f64],
    g: &mut [f64],
    delta: f64,
    upper: bool,
) -> bool {
    g.fill(0.0);
    rates.acc_bound_operator(h, g, upper);
    let mut finite = true;
    if upper {
        for (x, &dv) in h.iter_mut().zip(g.iter()) {
            *x = add_up(*x, mul_up(delta, dv));
            finite &= x.is_finite();
        }
    } else {
        for (x, &dv) in h.iter_mut().zip(g.iter()) {
            *x = add_down(*x, mul_down(delta, dv));
            finite &= x.is_finite();
        }
    }
    finite
}

/// One stationary sweep: iterates the monotone map until the range meets
/// `tolerance`, stagnates, or the caps hit. Returns the final iterate's
/// `(bound value, iterations, final range, met_tolerance)` where the
/// bound value is `min h` (lower sweep) or `max h` (upper sweep).
fn stationary_sweep<M: IntervalRateMatrix + ?Sized>(
    rates: &M,
    f: &[f64],
    delta: f64,
    upper: bool,
    options: &BoundsOptions,
) -> Result<(f64, usize, f64, bool)> {
    let phase = if upper {
        "bounds.stationary.upper"
    } else {
        "bounds.stationary.lower"
    };
    let span = mdl_obs::span(phase).with("n", f.len());
    let mut h = f.to_vec();
    let mut g = vec![0.0; f.len()];
    let mut ticker = options.budget.ticker(32);
    let (mut lo, mut hi) = min_max(&h);
    let mut range = hi - lo;
    let mut best_range = f64::INFINITY;
    let mut since_best = 0usize;
    for it in 1..=options.max_iterations {
        if let Err(reason) = ticker.tick() {
            span.finish();
            return Err(CtmcError::interrupted(phase, it - 1, range, h, reason));
        }
        if !sweep_step(rates, &mut h, &mut g, delta, upper) {
            span.finish();
            return Err(CtmcError::Diverged {
                iteration: it,
                residual: range,
            });
        }
        (lo, hi) = min_max(&h);
        range = hi - lo;
        if range < options.tolerance {
            let mut span = span;
            span.record("iterations", it);
            span.finish();
            return Ok((if upper { hi } else { lo }, it, range, true));
        }
        if options.stagnation_window > 0 {
            if range < best_range * (1.0 - 1e-3) {
                best_range = range;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= options.stagnation_window {
                    break;
                }
            }
        }
    }
    span.finish();
    // Not converged to tolerance — but min h̲ / max h̄ are certified
    // bounds at every iteration, so return them rather than failing.
    Ok((
        if upper { hi } else { lo },
        options.max_iterations,
        range,
        false,
    ))
}

/// Certified bounds on the long-run (stationary) expectation of the
/// reward vector `f`: every precise chain whose off-diagonal rates lie
/// in the interval matrix has `lim E[f(X_t)] ∈ [lo, hi]`.
///
/// Runs the lower and upper sweeps `h ← h + δ·Q̲h` / `h ← h + δ·Q̄h`
/// with `δ = 1/Λ`, returning `[min h̲, max h̄]`. There is no
/// discretization error: both values are certified at any finite
/// iteration count, and the tolerance only controls how tight they are
/// (for ergodic chains both converge to the imprecise chain's lower and
/// upper long-run expectations).
///
/// A rate matrix with no transitions (`Λ = 0`) freezes every chain in
/// place; the certified answer is then `[min f, max f]`.
///
/// # Errors
///
/// * [`CtmcError::LengthMismatch`] / [`CtmcError::InvalidValue`] on a
///   malformed reward vector or non-finite exit rates;
/// * [`CtmcError::Interrupted`] when the budget expires mid-sweep;
/// * [`CtmcError::Diverged`] if an iterate goes non-finite.
pub fn stationary_bounds<M: IntervalRateMatrix + ?Sized>(
    rates: &M,
    f: &[f64],
    options: &BoundsOptions,
) -> Result<BoundsSolution> {
    let start = Instant::now();
    let n = rates.num_states();
    check_gamble(f, n)?;
    let lambda = lambda_of(rates)?;
    let (min_f, max_f) = min_max(f);
    if lambda == 0.0 || n == 0 {
        return Ok(frozen_solution(min_f, max_f, lambda, start.elapsed()));
    }
    let delta = 1.0 / lambda;

    let mut report = RunReport::default();
    let t0 = Instant::now();
    let lower = stationary_sweep(rates, f, delta, false, options);
    record_sweep(&mut report, "bounds-lower", &lower, t0.elapsed());
    let (lo, lower_iterations, lower_residual, lower_ok) = lower?;
    let t1 = Instant::now();
    let upper = stationary_sweep(rates, f, delta, true, options);
    record_sweep(&mut report, "bounds-upper", &upper, t1.elapsed());
    let (hi, upper_iterations, upper_residual, upper_ok) = upper?;

    Ok(BoundsSolution {
        bounds: Interval { lo, hi },
        stats: BoundsStats {
            lower_iterations,
            upper_iterations,
            lower_residual,
            upper_residual,
            converged: lower_ok && upper_ok,
            lambda,
            discretization_error: 0.0,
            elapsed: start.elapsed(),
        },
        report,
    })
}

/// The degenerate answer for a chain that never moves.
fn frozen_solution(
    min_f: f64,
    max_f: f64,
    lambda: f64,
    elapsed: std::time::Duration,
) -> BoundsSolution {
    BoundsSolution {
        bounds: Interval {
            lo: min_f,
            hi: max_f,
        },
        stats: BoundsStats {
            lower_iterations: 0,
            upper_iterations: 0,
            lower_residual: 0.0,
            upper_residual: 0.0,
            converged: true,
            lambda,
            discretization_error: 0.0,
            elapsed,
        },
        report: RunReport::default(),
    }
}

/// Appends one sweep's attempt record to the report.
fn record_sweep(
    report: &mut RunReport,
    method: &'static str,
    result: &Result<(f64, usize, f64, bool)>,
    elapsed: std::time::Duration,
) {
    let record = match result {
        Ok((_, iterations, residual, _)) => AttemptRecord {
            method,
            kernel: Some("interval"),
            iterations: *iterations,
            residual: *residual,
            outcome: AttemptOutcome::Converged,
            error: None,
            elapsed,
        },
        Err(e) => {
            let (iterations, residual) =
                crate::resilient::ResilientError::progress(e).unwrap_or((0, f64::NAN));
            AttemptRecord {
                method,
                kernel: Some("interval"),
                iterations,
                residual,
                outcome: crate::resilient::ResilientError::outcome(e),
                error: Some(e.to_string()),
                elapsed,
            }
        }
    };
    report.attempts.push(record);
}

/// Directed dot product `Σ π(s)·h(s)` rounded toward the requested
/// bound; requires `π ≥ 0` (it multiplies the rounding direction
/// through).
fn dot_directed(pi: &[f64], h: &[f64], upper: bool) -> f64 {
    let mut acc = 0.0;
    if upper {
        for (&p, &v) in pi.iter().zip(h) {
            acc = add_up(acc, mul_up(p, v));
        }
    } else {
        for (&p, &v) in pi.iter().zip(h) {
            acc = add_down(acc, mul_down(p, v));
        }
    }
    acc
}

/// One transient sweep: `N` Euler steps of the bound operator, then the
/// directed dot with the initial distribution.
fn transient_sweep<M: IntervalRateMatrix + ?Sized>(
    rates: &M,
    initial: &[f64],
    f: &[f64],
    delta: f64,
    steps: usize,
    upper: bool,
    budget: &mdl_obs::Budget,
) -> Result<(f64, usize, f64, bool)> {
    let phase = if upper {
        "bounds.transient.upper"
    } else {
        "bounds.transient.lower"
    };
    let span = mdl_obs::span(phase).with("n", f.len()).with("steps", steps);
    let mut h = f.to_vec();
    let mut g = vec![0.0; f.len()];
    let mut ticker = budget.ticker(32);
    for k in 1..=steps {
        if let Err(reason) = ticker.tick() {
            span.finish();
            return Err(CtmcError::interrupted(phase, k - 1, f64::NAN, h, reason));
        }
        if !sweep_step(rates, &mut h, &mut g, delta, upper) {
            span.finish();
            return Err(CtmcError::Diverged {
                iteration: k,
                residual: f64::NAN,
            });
        }
    }
    span.finish();
    Ok((dot_directed(initial, &h, upper), steps, 0.0, true))
}

/// Certified bounds on the transient expectation `E[f(X_t)]` under the
/// initial distribution `initial`: every precise chain in the interval
/// matrix's credal box satisfies `E[f(X_t)] ∈ [lo, hi]`.
///
/// Each sweep runs `N` monotone Euler steps `h ← h + δ·Q_bound h` with
/// `δ = t/N` and `N ≥ ⌈1.02·Λ·t⌉` (so `I + δQ` stays monotone for every
/// chain in the box), then takes the directed dot product with
/// `initial`. Unlike the stationary case the Euler map is *not*
/// one-sided against `e^{Qt}`, so an a-priori discretization error is
/// subtracted from / added to the results:
///
/// ```text
/// ‖e^{δQ} − (I + δQ)‖∞ ≤ (δ‖Q‖)²/2 · e^{δ‖Q‖},   ‖Q‖∞ ≤ 2Λ
/// ```
///
/// telescoped over `N` steps against sup-norm-contractive factors, with
/// `‖h‖∞ ≤ ‖f‖∞` throughout. The step count is chosen to push this
/// below [`BoundsOptions::transient_error`] when the step cap allows;
/// the error actually folded in is reported in
/// [`BoundsStats::discretization_error`]. The bound is computed with a
/// 1% pad that absorbs its own floating-point evaluation and the
/// rounding of `δ = t/N`.
///
/// # Errors
///
/// As [`stationary_bounds`], plus [`CtmcError::InvalidValue`] for a
/// negative/non-finite horizon or malformed initial distribution.
pub fn transient_bounds<M: IntervalRateMatrix + ?Sized>(
    rates: &M,
    initial: &[f64],
    f: &[f64],
    t: f64,
    options: &BoundsOptions,
) -> Result<BoundsSolution> {
    let start = Instant::now();
    let n = rates.num_states();
    check_gamble(f, n)?;
    if initial.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "initial distribution",
            got: initial.len(),
            expected: n,
        });
    }
    for (s, &v) in initial.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(CtmcError::InvalidValue {
                what: "initial distribution",
                index: s,
                value: v,
            });
        }
    }
    if !t.is_finite() || t < 0.0 {
        return Err(CtmcError::InvalidValue {
            what: "time horizon",
            index: 0,
            value: t,
        });
    }
    let lambda = lambda_of(rates)?;
    if lambda == 0.0 || t == 0.0 || n == 0 {
        // Frozen chain or zero horizon: E[f(X_t)] = E_initial[f].
        let lo = dot_directed(initial, f, false);
        let hi = dot_directed(initial, f, true);
        return Ok(frozen_solution(lo, hi, lambda, start.elapsed()));
    }

    let sup_f = f.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    // N ≥ ⌈1.02·Λ·t⌉ keeps I + δQ monotone; beyond that, scale N so the
    // telescoped Euler error N·(2δΛ)²/2·e^{2δΛ}·‖f‖∞ = (2(tΛ)²/N)·e^{2tΛ/N}·‖f‖∞
    // meets the target (e^{2tΛ/N} ≤ e² once N ≥ tΛ).
    let n_min = (1.02 * lambda * t).ceil().max(1.0) as usize;
    let err_coeff = 2.0 * (t * lambda) * (t * lambda) * sup_f;
    let n_for_target = if options.transient_error > 0.0 && err_coeff > 0.0 {
        (err_coeff * std::f64::consts::E.powi(2) / options.transient_error).ceil() as usize
    } else {
        n_min
    };
    let steps = n_for_target.clamp(n_min, options.max_steps.max(n_min));
    let delta = t / steps as f64;
    // The a-priori error actually incurred at this step count, padded 1%
    // to absorb the rounding of δ and of this very formula.
    let err = if err_coeff == 0.0 {
        0.0
    } else {
        next_up(1.01 * (err_coeff / steps as f64) * (2.0 * delta * lambda).exp())
    };

    let mut report = RunReport::default();
    let t0 = Instant::now();
    let lower = transient_sweep(rates, initial, f, delta, steps, false, &options.budget);
    record_sweep(&mut report, "bounds-lower", &lower, t0.elapsed());
    let (raw_lo, lower_iterations, _, _) = lower?;
    let t1 = Instant::now();
    let upper = transient_sweep(rates, initial, f, delta, steps, true, &options.budget);
    record_sweep(&mut report, "bounds-upper", &upper, t1.elapsed());
    let (raw_hi, upper_iterations, _, _) = upper?;

    Ok(BoundsSolution {
        bounds: Interval {
            lo: sub_down(raw_lo, err),
            hi: add_up(raw_hi, err),
        },
        stats: BoundsStats {
            lower_iterations,
            upper_iterations,
            lower_residual: 0.0,
            upper_residual: 0.0,
            converged: true,
            lambda,
            discretization_error: err,
            elapsed: start.elapsed(),
        },
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense interval rate matrix for tests: off-diagonal entries only.
    struct DenseIntervalMatrix {
        n: usize,
        entries: Vec<(usize, usize, Interval)>,
    }

    impl IntervalRateMatrix for DenseIntervalMatrix {
        fn num_states(&self) -> usize {
            self.n
        }

        fn acc_bound_operator(&self, f: &[f64], out: &mut [f64], upper: bool) {
            for &(r, c, rate) in &self.entries {
                if r == c {
                    continue;
                }
                if upper {
                    let g = add_up(f[c], -f[r]);
                    let q = if g >= 0.0 { rate.hi } else { rate.lo };
                    out[r] = add_up(out[r], mul_up(q, g));
                } else {
                    let g = add_down(f[c], -f[r]);
                    let q = if g >= 0.0 { rate.lo } else { rate.hi };
                    out[r] = add_down(out[r], mul_down(q, g));
                }
            }
        }

        fn max_exit_rate_hi(&self) -> f64 {
            let mut exit = vec![0.0; self.n];
            for &(r, c, rate) in &self.entries {
                if r != c {
                    exit[r] = add_up(exit[r], rate.hi.max(0.0));
                }
            }
            exit.into_iter().fold(0.0, f64::max)
        }
    }

    /// The 2-state chain 0 →a 1, 1 →b 0 with point rates: stationary
    /// distribution (b, a)/(a+b).
    fn two_state(a: Interval, b: Interval) -> DenseIntervalMatrix {
        DenseIntervalMatrix {
            n: 2,
            entries: vec![(0, 1, a), (1, 0, b)],
        }
    }

    #[test]
    fn point_stationary_bounds_are_tight_and_correct() {
        let m = two_state(Interval::point(2.0), Interval::point(3.0));
        // f = indicator of state 0; E_π[f] = 3/5.
        let sol = stationary_bounds(&m, &[1.0, 0.0], &BoundsOptions::default()).unwrap();
        assert!(sol.stats.converged);
        assert!(
            sol.bounds.lo <= 0.6 && 0.6 <= sol.bounds.hi,
            "{:?}",
            sol.bounds
        );
        assert!(sol.bounds.width() < 1e-8, "{:?}", sol.bounds);
        assert_eq!(sol.report.attempts.len(), 2);
        assert!(sol.report.converged());
    }

    #[test]
    fn widened_rates_widen_stationary_bounds_but_keep_enclosure() {
        let m = two_state(Interval { lo: 1.8, hi: 2.2 }, Interval { lo: 2.7, hi: 3.3 });
        let sol = stationary_bounds(&m, &[1.0, 0.0], &BoundsOptions::default()).unwrap();
        // Any precise chain with a ∈ [1.8, 2.2], b ∈ [2.7, 3.3] has
        // E[f] = b/(a+b) ∈ [2.7/(2.2+2.7), 3.3/(1.8+3.3)].
        assert!(sol.bounds.lo <= 2.7 / 4.9, "{:?}", sol.bounds);
        assert!(sol.bounds.hi >= 3.3 / 5.1, "{:?}", sol.bounds);
        assert!(sol.bounds.lo <= 0.6 && 0.6 <= sol.bounds.hi);
        assert!(
            sol.bounds.width() > 0.05,
            "genuinely widened: {:?}",
            sol.bounds
        );
        assert!(sol.bounds.width() < 0.5, "not vacuous: {:?}", sol.bounds);
    }

    #[test]
    fn point_transient_bounds_enclose_the_analytic_value() {
        let m = two_state(Interval::point(2.0), Interval::point(3.0));
        // Starting in state 0: P(X_t = 0) = 0.6 + 0.4·e^(−5t).
        let t = 0.3f64;
        let exact = 0.6 + 0.4 * (-5.0 * t).exp();
        let sol =
            transient_bounds(&m, &[1.0, 0.0], &[1.0, 0.0], t, &BoundsOptions::default()).unwrap();
        assert!(
            sol.bounds.lo <= exact && exact <= sol.bounds.hi,
            "{exact} not in {:?}",
            sol.bounds
        );
        assert!(sol.bounds.width() < 1e-6, "{:?}", sol.bounds);
        assert!(sol.stats.discretization_error > 0.0);
        assert_eq!(sol.report.attempts.len(), 2);
    }

    #[test]
    fn widened_transient_bounds_keep_enclosure() {
        let m = two_state(Interval { lo: 1.9, hi: 2.1 }, Interval { lo: 2.9, hi: 3.1 });
        let t = 0.4f64;
        let exact = 0.6 + 0.4 * (-5.0 * t).exp();
        let sol =
            transient_bounds(&m, &[1.0, 0.0], &[1.0, 0.0], t, &BoundsOptions::default()).unwrap();
        assert!(sol.bounds.lo <= exact && exact <= sol.bounds.hi);
        assert!(sol.bounds.width() > 1e-3, "widened: {:?}", sol.bounds);
    }

    #[test]
    fn frozen_chain_returns_reward_range() {
        let m = DenseIntervalMatrix {
            n: 3,
            entries: vec![],
        };
        let sol = stationary_bounds(&m, &[1.0, 5.0, -2.0], &BoundsOptions::default()).unwrap();
        assert_eq!(sol.bounds, Interval { lo: -2.0, hi: 5.0 });
        assert!(sol.stats.converged);
        let tr = transient_bounds(
            &m,
            &[0.0, 1.0, 0.0],
            &[1.0, 5.0, -2.0],
            2.0,
            &BoundsOptions::default(),
        )
        .unwrap();
        assert!(
            tr.bounds.lo <= 5.0 && 5.0 <= tr.bounds.hi,
            "{:?}",
            tr.bounds
        );
    }

    #[test]
    fn expired_budget_interrupts_the_sweep() {
        let m = two_state(Interval::point(2.0), Interval::point(3.0));
        let options = BoundsOptions {
            budget: mdl_obs::Budget::unlimited().deadline_in(std::time::Duration::ZERO),
            ..BoundsOptions::default()
        };
        let err = stationary_bounds(&m, &[1.0, 0.0], &options).unwrap_err();
        assert!(matches!(err, CtmcError::Interrupted { .. }), "{err:?}");
    }

    #[test]
    fn validation_rejects_malformed_inputs() {
        let m = two_state(Interval::point(2.0), Interval::point(3.0));
        assert!(stationary_bounds(&m, &[1.0], &BoundsOptions::default()).is_err());
        assert!(stationary_bounds(&m, &[f64::NAN, 0.0], &BoundsOptions::default()).is_err());
        assert!(transient_bounds(
            &m,
            &[1.0, 0.0],
            &[1.0, 0.0],
            -1.0,
            &BoundsOptions::default()
        )
        .is_err());
        assert!(transient_bounds(
            &m,
            &[-0.5, 0.0],
            &[1.0, 0.0],
            1.0,
            &BoundsOptions::default()
        )
        .is_err());
    }

    #[test]
    fn unconverged_sweeps_still_return_certified_bounds() {
        let m = two_state(Interval::point(2.0), Interval::point(3.0));
        let options = BoundsOptions {
            max_iterations: 3,
            stagnation_window: 0,
            ..BoundsOptions::default()
        };
        let sol = stationary_bounds(&m, &[1.0, 0.0], &options).unwrap();
        assert!(!sol.stats.converged);
        // Looser, but still an enclosure of 0.6.
        assert!(
            sol.bounds.lo <= 0.6 && 0.6 <= sol.bounds.hi,
            "{:?}",
            sol.bounds
        );
        assert!(sol.bounds.width() > 1e-8);
    }
}
