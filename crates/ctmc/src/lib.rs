//! Continuous-time Markov chains (CTMCs), Markov reward processes (MRPs)
//! and the iterative numerical solvers used throughout `mdlump`.
//!
//! A CTMC is specified by its state-transition rate matrix `R` (generator
//! `Q = R − rs(R)`); augmenting it with a rate-reward vector `r` and an
//! initial distribution `π_ini` yields an [`Mrp`] — the 4-tuple
//! `(S, Q, r, π_ini)` of Definition 1 of the paper.
//!
//! Everything is generic over [`RateMatrix`], so the same solvers run over a
//! flat [`CsrMatrix`](mdl_linalg::CsrMatrix) and over the symbolic
//! matrix-diagram representation from `mdl-md`. This matters for the paper's
//! headline benefit: after compositional lumping the *iteration vectors*
//! (the space bottleneck of symbolic CTMC solution) shrink by the lumping
//! factor, and each iteration gets proportionally cheaper.
//!
//! # Example
//!
//! ```
//! use mdl_linalg::CooMatrix;
//! use mdl_ctmc::{Mrp, SolverOptions};
//!
//! // Two-state birth–death chain: 0 -> 1 at rate 2, 1 -> 0 at rate 1.
//! let mut r = CooMatrix::new(2, 2);
//! r.push(0, 1, 2.0);
//! r.push(1, 0, 1.0);
//! let mrp = Mrp::new(r.to_csr(), vec![0.0, 1.0], vec![1.0, 0.0])?;
//!
//! let sol = mrp.stationary(&SolverOptions::default())?;
//! // π = (1/3, 2/3); expected reward = probability of state 1.
//! assert!((sol.try_expected_reward(mrp.reward())? - 2.0 / 3.0).abs() < 1e-8);
//! # Ok::<(), mdl_ctmc::CtmcError>(())
//! ```
//!
//! Solves can be bounded and made fail-safe: [`SolverOptions`] carries a
//! [`Budget`](mdl_obs::Budget) (deadline/cancellation, reported as
//! [`CtmcError::Interrupted`] with the partial iterate), non-finite
//! iterates surface immediately as [`CtmcError::Diverged`], and
//! [`Mrp::solve_resilient`] retries across a ladder of methods while
//! recording every attempt in a [`RunReport`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accumulated;
mod bounds;
mod error;
mod mrp;
mod parallel;
mod resilient;
mod solver;
mod transient;

pub use accumulated::{accumulated_reward, accumulated_reward_with_exit_rates};
pub use bounds::{stationary_bounds, transient_bounds, BoundsOptions, BoundsSolution, BoundsStats};
pub use error::{CtmcError, InterruptedProgress};
pub use mdl_linalg::IntervalRateMatrix;
pub use mdl_linalg::RateMatrix;
pub use mrp::Mrp;
pub use parallel::ParCsr;
pub use resilient::{
    solve_ladder, AttemptOutcome, AttemptRecord, ResilientError, ResilientOptions, RunReport,
};
pub use solver::{
    stationary_gauss_seidel, stationary_jacobi, stationary_power, stationary_power_with_exit_rates,
    stationary_sor, CheckpointSink, Solution, SolveStats, SolverOptions, StationaryMethod,
};
pub use transient::{
    transient_uniformization, transient_uniformization_with_exit_rates, TransientOptions,
    TransientProgress, TransientSink,
};

/// Convenience alias for fallible CTMC operations.
pub type Result<T> = std::result::Result<T, CtmcError>;
