use mdl_linalg::{vec_ops, RateMatrix};

use crate::transient::TransientOptions;
use crate::{CtmcError, Result};

/// Expected reward **accumulated** over `[0, t]`:
/// `E[∫₀ᵗ r(X_u) du] = ∫₀ᵗ π(u)·r du`, computed by uniformization.
///
/// With `π(u) = Σ_k pois_k(Λu)·v_k` (where `v_k = π₀ Pᵏ`), each Poisson
/// weight integrates to `(1/Λ)·tail_{k+1}(Λt)`, so the accumulated reward
/// is `(1/Λ) Σ_k (v_k·r)·Pr[Poisson(Λt) > k]` — a single forward pass over
/// the same `v_k` sequence the transient solver generates.
///
/// Interval-of-time measures like this are the workhorse of dependability
/// evaluation (expected downtime, expected jobs processed over a mission
/// time) and are exactly the kind of measure lumping must preserve.
///
/// # Errors
///
/// As for [`transient_uniformization`](crate::transient_uniformization):
/// invalid horizon, mismatched lengths, or iteration-budget exhaustion.
pub fn accumulated_reward<M: RateMatrix>(
    rates: &M,
    initial: &[f64],
    reward: &[f64],
    t: f64,
    options: &TransientOptions,
) -> Result<f64> {
    let exit = rates.row_sums();
    accumulated_reward_with_exit_rates(rates, &exit, initial, reward, t, options)
}

/// [`accumulated_reward`] with an explicit diagonal (`Q = R − diag(exit)`),
/// for exact-lumped quotients (see `mdl-core`'s `exact` module).
///
/// # Errors
///
/// As for [`accumulated_reward`].
pub fn accumulated_reward_with_exit_rates<M: RateMatrix>(
    rates: &M,
    exit: &[f64],
    initial: &[f64],
    reward: &[f64],
    t: f64,
    options: &TransientOptions,
) -> Result<f64> {
    let n = rates.num_states();
    if initial.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "initial distribution",
            got: initial.len(),
            expected: n,
        });
    }
    if reward.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "reward vector",
            got: reward.len(),
            expected: n,
        });
    }
    if exit.len() != n {
        return Err(CtmcError::LengthMismatch {
            what: "exit rates",
            got: exit.len(),
            expected: n,
        });
    }
    if !t.is_finite() || t < 0.0 {
        return Err(CtmcError::InvalidValue {
            what: "time horizon",
            index: 0,
            value: t,
        });
    }

    let max_rate = exit.iter().cloned().fold(0.0, f64::max);
    if t == 0.0 {
        return Ok(0.0);
    }
    if max_rate == 0.0 {
        // No transitions ever fire: reward accrues at the initial state.
        return Ok(t * vec_ops::dot(initial, reward));
    }
    let lambda = 1.02 * max_rate;
    let lt = lambda * t;

    let mut v = initial.to_vec();
    let mut next = vec![0.0; n];

    // Poisson pmf at k, built iteratively; `cdf` tracks Σ_{j≤k} pois_j so
    // the integral weight for v_k is tail_{k+1} = 1 − cdf.
    let mut ln_weight = -lt;
    let mut cdf = 0.0f64;
    let mut acc = 0.0f64;
    let mut k = 0usize;
    let mut ticker = options.budget.ticker(32);
    loop {
        if let Err(reason) = ticker.tick() {
            return Err(CtmcError::interrupted(
                "solve.accumulated",
                k,
                (1.0 - cdf).max(0.0),
                v,
                reason,
            ));
        }
        let w = ln_weight.exp();
        cdf += w;
        let tail = (1.0 - cdf).max(0.0);
        acc += vec_ops::dot(&v, reward) * tail;
        // Right truncation as in the transient solver: accept either a met
        // tail target or a fully decayed pmf past the mode.
        if (k as f64) >= lt && (tail <= options.epsilon || w < options.epsilon * 1e-3) {
            break;
        }
        if k >= options.max_steps {
            return Err(CtmcError::NotConverged {
                iterations: k,
                residual: tail,
            });
        }
        // v ← v P
        vec_ops::fill(&mut next, 0.0);
        rates.acc_vec_mat(&v, &mut next);
        for s in 0..n {
            next[s] = v[s] + (next[s] - v[s] * exit[s]) / lambda;
        }
        if !vec_ops::sum(&next).is_finite() {
            return Err(CtmcError::Diverged {
                iteration: k + 1,
                residual: f64::NAN,
            });
        }
        std::mem::swap(&mut v, &mut next);
        k += 1;
        ln_weight += (lt / k as f64).ln();
    }
    Ok(acc / lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::CooMatrix;

    fn two_state(a: f64, b: f64) -> mdl_linalg::CsrMatrix {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, a);
        coo.push(1, 0, b);
        coo.to_csr()
    }

    #[test]
    fn constant_reward_accumulates_time() {
        let r = two_state(2.0, 1.0);
        let acc = accumulated_reward(
            &r,
            &[1.0, 0.0],
            &[1.0, 1.0],
            3.5,
            &TransientOptions::default(),
        )
        .unwrap();
        assert!((acc - 3.5).abs() < 1e-9, "got {acc}");
    }

    #[test]
    fn matches_analytic_occupancy() {
        // Occupancy of state 0 over [0, t], starting in 0:
        // ∫₀ᵗ p(u) du with p(u) = b/(a+b) + a/(a+b)·e^{−(a+b)u}
        //   = b·t/(a+b) + a/(a+b)² · (1 − e^{−(a+b)t}).
        let (a, b) = (2.0, 1.0);
        let r = two_state(a, b);
        for &t in &[0.1, 1.0, 5.0] {
            let acc = accumulated_reward(
                &r,
                &[1.0, 0.0],
                &[1.0, 0.0],
                t,
                &TransientOptions::default(),
            )
            .unwrap();
            let s = a + b;
            let expected = b * t / s + a / (s * s) * (1.0 - (-s * t).exp());
            assert!((acc - expected).abs() < 1e-9, "t={t}: {acc} vs {expected}");
        }
    }

    #[test]
    fn zero_horizon_accumulates_nothing() {
        let r = two_state(1.0, 1.0);
        let acc = accumulated_reward(
            &r,
            &[0.5, 0.5],
            &[10.0, 20.0],
            0.0,
            &TransientOptions::default(),
        )
        .unwrap();
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn absorbing_like_chain_accrues_at_initial_state() {
        let empty = CooMatrix::new(2, 2).to_csr();
        let acc = accumulated_reward(
            &empty,
            &[1.0, 0.0],
            &[4.0, 9.0],
            2.0,
            &TransientOptions::default(),
        )
        .unwrap();
        assert_eq!(acc, 8.0);
    }

    #[test]
    fn long_horizon_approaches_stationary_rate() {
        // Accumulated reward / t → stationary expected reward.
        let r = two_state(2.0, 3.0);
        let t = 200.0;
        let acc = accumulated_reward(
            &r,
            &[1.0, 0.0],
            &[0.0, 1.0],
            t,
            &TransientOptions::default(),
        )
        .unwrap();
        let stationary = crate::solver::stationary_power(&r, &Default::default())
            .unwrap()
            .probabilities[1];
        assert!((acc / t - stationary).abs() < 1e-2);
    }

    #[test]
    fn bad_inputs_rejected() {
        let r = two_state(1.0, 1.0);
        assert!(accumulated_reward(&r, &[1.0], &[0.0, 0.0], 1.0, &Default::default()).is_err());
        assert!(accumulated_reward(&r, &[1.0, 0.0], &[0.0], 1.0, &Default::default()).is_err());
        assert!(
            accumulated_reward(&r, &[1.0, 0.0], &[0.0, 0.0], -1.0, &Default::default()).is_err()
        );
    }
}
