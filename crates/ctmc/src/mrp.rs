use mdl_linalg::RateMatrix;

use crate::resilient::{self, ResilientOptions, RunReport};
use crate::solver::{self, Solution, SolverOptions, StationaryMethod};
use crate::transient::{self, TransientOptions};
use crate::{CtmcError, Result};

/// A Markov reward process: the 4-tuple `(S, Q, r, π_ini)` of Definition 1
/// of the paper, with `Q = R − rs(R)` represented by its state-transition
/// rate matrix `R`.
///
/// The type is generic over the matrix representation `M`: a flat
/// [`CsrMatrix`](mdl_linalg::CsrMatrix), a matrix diagram (`mdl-md`), or
/// anything else implementing [`RateMatrix`].
///
/// # Example
///
/// ```
/// use mdl_linalg::CooMatrix;
/// use mdl_ctmc::Mrp;
///
/// let mut r = CooMatrix::new(2, 2);
/// r.push(0, 1, 1.0);
/// r.push(1, 0, 1.0);
/// let mrp = Mrp::new(r.to_csr(), vec![1.0, 0.0], vec![0.5, 0.5])?;
/// assert_eq!(mrp.num_states(), 2);
/// # Ok::<(), mdl_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mrp<M> {
    rates: M,
    reward: Vec<f64>,
    initial: Vec<f64>,
}

impl<M: RateMatrix> Mrp<M> {
    /// Creates an MRP, validating the reward vector and initial
    /// distribution.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::LengthMismatch`] if `reward` or `initial` do not have
    ///   one entry per state;
    /// * [`CtmcError::InvalidValue`] if `reward` contains a non-finite value
    ///   or `initial` a negative or non-finite value;
    /// * [`CtmcError::InvalidDistribution`] if `initial` does not sum to 1
    ///   (within `1e-9`).
    pub fn new(rates: M, reward: Vec<f64>, initial: Vec<f64>) -> Result<Self> {
        let n = rates.num_states();
        if reward.len() != n {
            return Err(CtmcError::LengthMismatch {
                what: "reward vector",
                got: reward.len(),
                expected: n,
            });
        }
        if initial.len() != n {
            return Err(CtmcError::LengthMismatch {
                what: "initial distribution",
                got: initial.len(),
                expected: n,
            });
        }
        for (i, &v) in reward.iter().enumerate() {
            if !v.is_finite() {
                return Err(CtmcError::InvalidValue {
                    what: "reward vector",
                    index: i,
                    value: v,
                });
            }
        }
        let mut sum = 0.0;
        for (i, &v) in initial.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(CtmcError::InvalidValue {
                    what: "initial distribution",
                    index: i,
                    value: v,
                });
            }
            sum += v;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CtmcError::InvalidDistribution { sum });
        }
        Ok(Mrp {
            rates,
            reward,
            initial,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rates.num_states()
    }

    /// The state-transition rate matrix `R`.
    pub fn rates(&self) -> &M {
        &self.rates
    }

    /// The rate-reward vector `r`.
    pub fn reward(&self) -> &[f64] {
        &self.reward
    }

    /// The initial probability distribution `π_ini`.
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// Decomposes the MRP into its parts.
    pub fn into_parts(self) -> (M, Vec<f64>, Vec<f64>) {
        (self.rates, self.reward, self.initial)
    }

    /// Computes the stationary distribution `π` with `π Q = 0`, using the
    /// method selected in `options` (uniformized power iteration by
    /// default).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::AbsorbingState`] if a state has no outgoing
    /// rate, and [`CtmcError::NotConverged`] if the iteration budget is
    /// exhausted.
    pub fn stationary(&self, options: &SolverOptions) -> Result<Solution> {
        match options.method {
            StationaryMethod::Power => solver::stationary_power(&self.rates, options),
            StationaryMethod::Jacobi => solver::stationary_jacobi(&self.rates, options),
        }
    }

    /// Computes the stationary distribution through a fallback ladder:
    /// each method in `options.ladder` is attempted in order (with
    /// `options.options` as the shared solver configuration) until one
    /// converges; [`CtmcError::NotConverged`], [`CtmcError::Diverged`]
    /// and [`CtmcError::Interrupted`] fall through to the next rung,
    /// structural errors stop immediately.
    ///
    /// The [`RunReport`] is returned in both outcomes and records every
    /// attempt (method, iterations, residual, outcome, elapsed); on
    /// failure the error is the *last* attempt's.
    ///
    /// # Panics
    ///
    /// Panics if `options.ladder` is empty.
    pub fn solve_resilient(&self, options: &ResilientOptions) -> (Result<Solution>, RunReport) {
        resilient::solve_ladder(
            &options.ladder,
            |m| (resilient::method_label(*m), None),
            |m| {
                let opts = SolverOptions {
                    method: *m,
                    ..options.options.clone()
                };
                self.stationary(&opts)
            },
        )
    }

    /// Computes the transient distribution `π(t)` by uniformization,
    /// starting from `π_ini`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidValue`] for a negative or non-finite
    /// time horizon.
    pub fn transient(&self, t: f64, options: &TransientOptions) -> Result<Solution> {
        transient::transient_uniformization(&self.rates, &self.initial, t, options)
    }

    /// Expected instantaneous reward under a probability vector:
    /// `Σ_s π(s) · r(s)`.
    ///
    /// # Panics
    ///
    /// Panics if `probabilities` does not have one entry per state.
    pub fn expected_reward(&self, probabilities: &[f64]) -> f64 {
        mdl_linalg::vec_ops::dot(probabilities, &self.reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::CooMatrix;

    fn two_state() -> mdl_linalg::CsrMatrix {
        let mut r = CooMatrix::new(2, 2);
        r.push(0, 1, 2.0);
        r.push(1, 0, 1.0);
        r.to_csr()
    }

    #[test]
    fn valid_mrp_constructs() {
        let mrp = Mrp::new(two_state(), vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert_eq!(mrp.num_states(), 2);
        assert_eq!(mrp.reward(), &[0.0, 1.0]);
    }

    #[test]
    fn wrong_reward_length_rejected() {
        let err = Mrp::new(two_state(), vec![0.0], vec![1.0, 0.0]).unwrap_err();
        assert!(matches!(
            err,
            CtmcError::LengthMismatch {
                what: "reward vector",
                ..
            }
        ));
    }

    #[test]
    fn non_distribution_rejected() {
        let err = Mrp::new(two_state(), vec![0.0, 1.0], vec![0.7, 0.7]).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidDistribution { .. }));
    }

    #[test]
    fn negative_initial_rejected() {
        let err = Mrp::new(two_state(), vec![0.0, 1.0], vec![1.5, -0.5]).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidValue { .. }));
    }

    #[test]
    fn nan_reward_rejected() {
        let err = Mrp::new(two_state(), vec![f64::NAN, 0.0], vec![1.0, 0.0]).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidValue { .. }));
    }

    #[test]
    fn expected_reward_is_dot_product() {
        let mrp = Mrp::new(two_state(), vec![3.0, 5.0], vec![1.0, 0.0]).unwrap();
        assert_eq!(mrp.expected_reward(&[0.5, 0.5]), 4.0);
    }
}
