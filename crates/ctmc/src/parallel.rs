use mdl_linalg::{CsrMatrix, RateMatrix};

/// A flat rate matrix with multi-threaded matrix-vector products.
///
/// Iteration vectors dominate large-chain solution time; `ParCsr` chunks
/// the output vector across threads (`std::thread::scope`, no `'static`
/// bound) so both product orientations are embarrassingly parallel
/// *gathers*: `y += R x` walks rows of `R`, `y += x R` walks rows of the
/// precomputed transpose. Results are bit-identical to the serial kernels
/// (each output entry is accumulated by exactly one thread, in the same
/// order).
///
/// # Example
///
/// ```
/// use mdl_linalg::{CooMatrix, RateMatrix};
/// use mdl_ctmc::ParCsr;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 2.0);
/// coo.push(1, 0, 1.0);
/// let par = ParCsr::new(coo.to_csr(), 2);
/// let mut y = vec![0.0; 2];
/// par.acc_vec_mat(&[1.0, 0.0], &mut y);
/// assert_eq!(y, vec![0.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ParCsr {
    forward: CsrMatrix,
    /// Rows of `transpose` are the columns of `forward`.
    transpose: CsrMatrix,
    threads: usize,
}

impl ParCsr {
    /// Wraps a square matrix for `threads`-way parallel products
    /// (`threads == 1` degenerates to the serial kernels without spawning).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `threads == 0`.
    pub fn new(matrix: CsrMatrix, threads: usize) -> Self {
        assert_eq!(matrix.nrows(), matrix.ncols(), "rate matrices are square");
        assert!(threads > 0, "need at least one thread");
        let transpose = matrix.transpose();
        ParCsr {
            forward: matrix,
            transpose,
            threads,
        }
    }

    /// Wraps a square matrix using one worker per available hardware
    /// thread ([`mdl_obs::default_threads`], the same "auto" resolution
    /// as the compiled MD kernels and the lumping engine's pool) —
    /// callers no longer hardcode worker counts.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn with_default_threads(matrix: CsrMatrix) -> Self {
        Self::new(matrix, mdl_obs::default_threads())
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.forward
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `y[chunk] += rows(chunk of `by_row`) · x`, chunked over threads.
    fn gather(&self, by_row: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        let n = by_row.nrows();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        if self.threads == 1 || n < 1024 {
            by_row.acc_mat_vec(x, y);
            return;
        }
        let blocks = mdl_obs::pool::chunk_ranges(n, self.threads);
        std::thread::scope(|scope| {
            let mut rest = y;
            for block in &blocks {
                let (y_chunk, tail) = rest.split_at_mut(block.len());
                rest = tail;
                let start = block.start;
                scope.spawn(move || {
                    for (offset, yi) in y_chunk.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (col, v) in by_row.row(start + offset) {
                            acc += v * x[col];
                        }
                        *yi += acc;
                    }
                });
            }
        });
    }
}

impl RateMatrix for ParCsr {
    fn num_states(&self) -> usize {
        self.forward.nrows()
    }

    fn acc_mat_vec(&self, x: &[f64], y: &mut [f64]) {
        self.gather(&self.forward, x, y);
    }

    fn acc_vec_mat(&self, x: &[f64], y: &mut [f64]) {
        // y += x·R ⟺ y += Rᵀ·x, a gather over the transpose's rows.
        self.gather(&self.transpose, x, y);
    }

    fn row_sums(&self) -> Vec<f64> {
        self.forward.row_sums_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdl_linalg::{vec_ops, CooMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_chain(n: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for _ in 0..4 {
                let j = rng.gen_range(0..n);
                if j != i {
                    coo.push(i, j, rng.gen_range(0.1..2.0));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn parallel_products_match_serial() {
        let m = random_chain(5000, 3);
        let par = ParCsr::new(m.clone(), 4);
        let x: Vec<f64> = (0..5000).map(|i| (i % 17) as f64 * 0.25).collect();

        let mut y_ser = vec![0.0; 5000];
        m.acc_mat_vec(&x, &mut y_ser);
        let mut y_par = vec![0.0; 5000];
        par.acc_mat_vec(&x, &mut y_par);
        assert_eq!(y_ser, y_par, "bit-identical gather");

        let mut z_ser = vec![0.0; 5000];
        m.acc_vec_mat(&x, &mut z_ser);
        let mut z_par = vec![0.0; 5000];
        par.acc_vec_mat(&x, &mut z_par);
        assert!(vec_ops::max_abs_diff(&z_ser, &z_par) < 1e-12);
    }

    #[test]
    fn solver_runs_over_parallel_matrix() {
        let m = random_chain(2000, 7);
        let par = ParCsr::new(m.clone(), 3);
        let opts = crate::SolverOptions::default();
        let serial = crate::stationary_power(&m, &opts).unwrap();
        let parallel = crate::stationary_power(&par, &opts).unwrap();
        assert!(vec_ops::max_abs_diff(&serial.probabilities, &parallel.probabilities) < 1e-10);
    }

    #[test]
    fn default_threads_matches_hardware() {
        let m = random_chain(100, 17);
        let par = ParCsr::with_default_threads(m.clone());
        assert!(par.threads() >= 1);
        let x = vec![1.0; 100];
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        m.acc_mat_vec(&x, &mut a);
        par.acc_mat_vec(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_is_serial_fast_path() {
        let m = random_chain(100, 11);
        let par = ParCsr::new(m.clone(), 1);
        let x = vec![1.0; 100];
        let mut a = vec![0.0; 100];
        let mut b = vec![0.0; 100];
        m.acc_mat_vec(&x, &mut a);
        par.acc_mat_vec(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn small_matrices_skip_spawning() {
        // n < 1024 uses the serial path even with many threads.
        let m = random_chain(50, 13);
        let par = ParCsr::new(m, 8);
        let x = vec![0.5; 50];
        let mut y = vec![0.0; 50];
        par.acc_vec_mat(&x, &mut y);
        assert!(y.iter().any(|&v| v > 0.0));
    }
}
