//! `ThreadPool`-lite: shared thread-count resolution and scoped fan-out.
//!
//! Several subsystems need the same three things — resolve a user-facing
//! thread count (`0` = one worker per hardware thread), split work into
//! deterministic contiguous chunks, and fan a closure out over scoped
//! threads with a serial fast path. Before this module each of them
//! (`ParCsr`, `CompiledMdMatrix`, now the lumping engine) reimplemented
//! the plumbing; they all route through here instead.
//!
//! The workspace forbids `unsafe`, so there is no persistent pool of
//! parked workers: a "pool" is just a resolved worker count, and each
//! [`ThreadPool::run`] is one [`std::thread::scope`] region (which is
//! what lets the closures borrow from the caller's stack). Spawning a
//! thread costs tens of microseconds — negligible against the
//! region-sized work units this is used for.
//!
//! Determinism contract: `run(jobs, f)` returns `f(0), …, f(jobs-1)` in
//! job order, and each job index is evaluated exactly once, so for a pure
//! `f` the result is identical for every worker count. Callers that fold
//! floating-point sums must additionally make each *job* own its output
//! rows (see DESIGN.md §12) — the pool never splits a job.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker per available hardware thread
/// ([`std::thread::available_parallelism`]), falling back to `1` when it
/// cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `parts` contiguous, near-equal ranges
/// (the leftovers go to the earlier ranges). Deterministic: depends only
/// on `len` and `parts`. Empty ranges are never produced.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// A resolved worker count plus the scoped fan-out primitive.
///
/// # Example
///
/// ```
/// use mdl_obs::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let squares = pool.run(4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers; `0` resolves to [`default_threads`].
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
        }
    }

    /// The single-worker pool: every [`run`](Self::run) degenerates to a
    /// plain serial loop without spawning.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// The resolved worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), …, f(jobs-1)` across the pool's workers and returns
    /// the results in job order. Jobs are claimed dynamically (an atomic
    /// cursor), so uneven job costs balance; each index is evaluated
    /// exactly once.
    ///
    /// With one worker (or at most one job) this is a serial loop on the
    /// calling thread — no spawn, bit-for-bit the obvious `for` loop.
    ///
    /// When observability is enabled, records the per-worker task counts
    /// into the `pool.worker.tasks` histogram (the "did work actually
    /// spread across threads?" signal) and counts jobs in `pool.tasks`.
    ///
    /// Span context crosses the fan-out: each worker re-enters the
    /// caller's current span (see [`crate::profile::enter_context`]), so
    /// spans opened inside jobs attribute to the stage that launched
    /// them, and when profiling is on each worker wraps its run in a
    /// `pool.worker` span so the timeline shows the parallel region.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f`.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs).map(f).collect();
        }
        let parent = crate::profile::current_span();
        let cursor = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _ctx = crate::profile::enter_context(parent);
                        let _worker_span =
                            crate::profile::profiling().then(|| crate::span("pool.worker"));
                        let mut local = Vec::new();
                        loop {
                            let j = cursor.fetch_add(1, Ordering::Relaxed);
                            if j >= jobs {
                                break;
                            }
                            local.push((j, f(j)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => per_worker.push(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if crate::enabled() {
            let tasks = crate::histogram("pool.worker.tasks");
            for local in &per_worker {
                tasks.record(local.len() as u64);
            }
            crate::counter("pool.tasks").add(jobs as u64);
        }
        let mut results: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for (j, v) in per_worker.into_iter().flatten() {
            results[j] = Some(v);
        }
        results
            .into_iter()
            .map(|r| r.expect("pool evaluated every job"))
            .collect()
    }
}

impl Default for ThreadPool {
    /// The serial pool — parallelism is opt-in everywhere.
    fn default() -> Self {
        ThreadPool::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resolves_to_hardware_threads() {
        assert_eq!(ThreadPool::new(0).threads(), default_threads());
        assert!(ThreadPool::new(0).threads() >= 1);
        assert_eq!(ThreadPool::new(3).threads(), 3);
        assert_eq!(ThreadPool::serial().threads(), 1);
        assert_eq!(ThreadPool::default(), ThreadPool::serial());
    }

    #[test]
    fn run_returns_results_in_job_order() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let got = pool.run(23, |i| i * 10);
            let want: Vec<usize> = (0..23).map(|i| i * 10).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn run_borrows_from_caller() {
        let data: Vec<u64> = (0..100).collect();
        let pool = ThreadPool::new(4);
        let sums = pool.run(4, |c| {
            let chunk = 25;
            data[c * chunk..(c + 1) * chunk].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn run_with_no_jobs_is_empty() {
        assert!(ThreadPool::new(4).run(0, |_| 0).is_empty());
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, parts) in [(10, 3), (10, 1), (3, 10), (1024, 4), (7, 7), (0, 4), (5, 0)] {
            let ranges = chunk_ranges(len, parts);
            if len == 0 || parts == 0 {
                assert!(ranges.is_empty(), "degenerate ({len}, {parts})");
                continue;
            }
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous ({len}, {parts})");
                assert!(!r.is_empty(), "no empty ranges ({len}, {parts})");
                next = r.end;
            }
            assert_eq!(next, len, "covers 0..len ({len}, {parts})");
            {
                assert_eq!(ranges.len(), parts.min(len));
                let max = ranges.iter().map(ExactSizeIterator::len).max().unwrap();
                let min = ranges.iter().map(ExactSizeIterator::len).min().unwrap();
                assert!(max - min <= 1, "near-equal ({len}, {parts})");
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(|| {
            pool.run(8, |j| {
                if j == 5 {
                    panic!("job 5 fails");
                }
                j
            })
        });
        assert!(r.is_err());
    }
}
