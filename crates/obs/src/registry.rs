//! Global metric registry: named atomic counters and log₂ histograms.
//!
//! Handles are cheap `Arc` clones; hot code fetches a handle once
//! (outside the loop) and increments it unconditionally cheaply — the
//! increment itself is gated on the global enable flag, a single relaxed
//! atomic load, so disabled instrumentation costs nearly nothing.

use crate::event::fmt_nanos;
use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event counter. Clones share the same underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one if observability is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` if observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (readable even while disabled).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// `buckets[i]` counts samples `v` with `bit_len(v) == i`,
    /// i.e. `v == 0` → bucket 0, otherwise `floor(log2 v) + 1`.
    buckets: [AtomicU64; BUCKETS],
}

/// Lock-free log₂-bucketed histogram of `u64` samples (span durations in
/// nanoseconds, batch sizes, …). Clones share the same cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    /// Records one sample if observability is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Records unconditionally (used by spans, which gate earlier).
    pub(crate) fn record_always(&self, v: u64) {
        let h = &*self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        let b = (64 - v.leading_zeros()) as usize;
        h.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        let h = &*self.0;
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.min.store(u64::MAX, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Approximate quantile (`0.0..=1.0`): the geometric midpoint of the
    /// log₂ bucket holding the q-th sample, clamped to the observed
    /// min/max. Accurate to a factor of √2, which is plenty for profiles.
    pub fn quantile(&self, q: f64) -> u64 {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let min = h.min.load(Ordering::Relaxed);
        let max = h.max.load(Ordering::Relaxed);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        if rank == count {
            return max;
        }
        let mut seen = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i); midpoint ≈ 1.5·2^(i-1).
                let mid = match i {
                    0 => 0,
                    1 => 1,
                    _ => 3u64 << (i - 2),
                };
                return mid.clamp(min, max);
            }
        }
        max
    }
}

/// Point-in-time view of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: &'static str,
    pub value: u64,
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// A full snapshot of the registry, renderable as a pretty table or JSONL.
///
/// Histograms record nanoseconds when they back a span (same name as the
/// span) — the renderers format those with time units.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl Report {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Multi-line human-readable rendering (trailing newline included).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                out.push_str(&format!("  {:width$}  {}\n", c.name, c.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("timings:\n");
            let width = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0);
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:width$}  n={}  total={}  min={}  p50={}  p90={}  max={}\n",
                    h.name,
                    h.count,
                    fmt_nanos(h.sum),
                    fmt_nanos(h.min),
                    fmt_nanos(h.p50),
                    fmt_nanos(h.p90),
                    fmt_nanos(h.max),
                ));
            }
        }
        out
    }

    /// One JSON object per counter/histogram, newline-separated
    /// (trailing newline included when non-empty).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let mut obj = JsonObject::new();
            obj.str("type", "counter")
                .str("name", c.name)
                .u64("value", c.value);
            out.push_str(&obj.close());
            out.push('\n');
        }
        for h in &self.histograms {
            let mut obj = JsonObject::new();
            obj.str("type", "histogram")
                .str("name", h.name)
                .u64("count", h.count)
                .u64("sum_ns", h.sum)
                .u64("min_ns", h.min)
                .u64("max_ns", h.max)
                .u64("p50_ns", h.p50)
                .u64("p90_ns", h.p90)
                .u64("p99_ns", h.p99);
            out.push_str(&obj.close());
            out.push('\n');
        }
        out
    }
}

/// The process-wide registry; reached through [`crate::counter`],
/// [`crate::histogram`] and [`crate::snapshot`].
#[derive(Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .expect("obs counter registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    pub(crate) fn histogram(&self, name: &'static str) -> Histogram {
        self.histograms
            .lock()
            .expect("obs histogram registry poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    pub(crate) fn snapshot(&self) -> Report {
        let counters = self
            .counters
            .lock()
            .expect("obs counter registry poisoned")
            .iter()
            .filter(|(_, c)| c.get() > 0)
            .map(|(name, c)| CounterSnapshot {
                name,
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs histogram registry poisoned")
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| HistogramSnapshot {
                name,
                count: h.count(),
                sum: h.sum(),
                min: h.0.min.load(Ordering::Relaxed),
                max: h.0.max.load(Ordering::Relaxed),
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
            })
            .collect();
        Report {
            counters,
            histograms,
        }
    }

    /// Zeroes every metric while keeping handed-out handles live.
    pub(crate) fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("obs counter registry poisoned")
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("obs histogram registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.0.min.load(Ordering::Relaxed), 1);
        assert_eq!(h.0.max.load(Ordering::Relaxed), 1000);
        // p50 lands in the bucket of 3; clamped to [1, 1000].
        let p50 = h.quantile(0.5);
        assert!((1..=4).contains(&p50), "p50 was {p50}");
        assert_eq!(h.quantile(1.0), 1000);
        crate::set_enabled(false);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn quantiles_across_bucket_boundaries() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        crate::set_enabled(false);
        // Ranks 1..=99 land in the bucket of 1000 ([512, 1024), midpoint
        // 768) and clamp up to the observed min.
        assert_eq!(h.quantile(0.0), 1_000);
        assert_eq!(h.quantile(0.5), 1_000);
        assert_eq!(h.quantile(0.99), 1_000);
        // The top rank returns the exact observed max.
        assert_eq!(h.quantile(0.999), 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn quantile_midpoint_is_geometric_within_a_bucket() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        crate::set_enabled(false);
        // Rank 2 lands in the bucket [2, 4); its geometric midpoint is 3
        // — a factor-√2 approximation of the true sample 2.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.25), 1);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        h.record(777);
        crate::set_enabled(false);
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), 777, "q = {q}");
        }
    }

    #[test]
    fn quantile_handles_zero_samples_bucket() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        h.record(100);
        crate::set_enabled(false);
        assert_eq!(h.quantile(0.5), 0, "zeros land in bucket 0");
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn report_renders_both_formats() {
        let report = Report {
            counters: vec![CounterSnapshot {
                name: "mdd.unique.hit",
                value: 42,
            }],
            histograms: vec![HistogramSnapshot {
                name: "lump.level",
                count: 2,
                sum: 3_000,
                min: 1_000,
                max: 2_000,
                p50: 1_500,
                p90: 2_000,
                p99: 2_000,
            }],
        };
        let pretty = report.render_pretty();
        assert!(pretty.contains("mdd.unique.hit"));
        assert!(pretty.contains("n=2"));
        let jsonl = report.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"type":"counter","name":"mdd.unique.hit","value":42}"#
        );
        assert!(lines[1].contains(r#""sum_ns":3000"#));
    }

    #[test]
    fn registry_interns_by_name() {
        let _guard = crate::testing::guard();
        let reg = Registry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        crate::set_enabled(true);
        a.inc();
        crate::set_enabled(false);
        assert_eq!(b.get(), 1, "same name shares the cell");
    }
}
