//! Cooperative compute budgets: wall-clock deadlines, cancellation
//! tokens and node caps, checked cheaply from the inner loops of every
//! long-running phase (solvers, MD compilation, per-level lumping).
//!
//! A [`Budget`] is immutable and cheap to clone; the mutable amortizing
//! state lives in a per-loop [`Ticker`] so a single budget can be shared
//! across phases and threads. The default budget is unlimited and its
//! checks reduce to a single branch.
//!
//! ```
//! use mdl_obs::{Budget, BudgetExceeded};
//! use std::time::Duration;
//!
//! let budget = Budget::unlimited().deadline_in(Duration::ZERO);
//! let mut ticker = budget.ticker(64);
//! assert!(matches!(
//!     ticker.tick(),
//!     Err(BudgetExceeded::Deadline { .. })
//! ));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cooperative-cancellation flag. Cloning shares the flag;
/// any clone may cancel, and every [`Budget`] holding the token observes
/// the cancellation at its next check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl PartialEq for CancelToken {
    /// Tokens compare by identity: two tokens are equal when they share
    /// the same underlying flag.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Why a budget check failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed. `budget` is the originally
    /// configured allowance.
    Deadline {
        /// The configured wall-clock allowance.
        budget: Duration,
    },
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// More nodes were visited than the configured cap allows.
    NodeCap {
        /// Nodes visited when the cap check fired.
        visited: u64,
        /// The configured cap.
        cap: u64,
    },
    /// A [`failpoint`](crate::failpoint) injected this failure.
    Injected,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Deadline { budget } => {
                write!(f, "wall-clock deadline of {budget:?} exceeded")
            }
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
            BudgetExceeded::NodeCap { visited, cap } => {
                write!(f, "node cap of {cap} exceeded ({visited} visited)")
            }
            BudgetExceeded::Injected => write!(f, "failpoint-injected interruption"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// A compute budget: an optional wall-clock deadline, an optional
/// cancellation token and an optional node cap. The default is
/// unlimited; every check then short-circuits on one branch.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<(Instant, Duration)>,
    cancel: Option<CancelToken>,
    node_cap: Option<u64>,
}

impl Budget {
    /// A budget with no limits; [`check`](Self::check) always succeeds.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Returns a budget that additionally expires `allowance` from now.
    #[must_use]
    pub fn deadline_in(mut self, allowance: Duration) -> Self {
        self.deadline = Some((Instant::now() + allowance, allowance));
        self
    }

    /// Returns a budget that additionally observes `token`.
    #[must_use]
    pub fn cancelled_by(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Returns a budget that additionally caps visited nodes at `cap`
    /// (enforced by phases that report node counts, e.g. MD compile).
    #[must_use]
    pub fn node_cap(mut self, cap: u64) -> Self {
        self.node_cap = Some(cap);
        self
    }

    /// Whether this budget can never fail a check.
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.node_cap.is_none()
    }

    /// The configured node cap, if any.
    pub fn node_cap_limit(&self) -> Option<u64> {
        self.node_cap
    }

    /// Time left until the deadline, if one is configured (zero once the
    /// deadline has passed). `None` means no deadline.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|(deadline, _)| deadline.saturating_duration_since(Instant::now()))
    }

    /// Checks the cancellation flag and the deadline (in that order:
    /// cancellation is the caller's explicit ask, so it wins ties).
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] naming the first limit that was hit.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetExceeded::Cancelled);
            }
        }
        if let Some((deadline, budget)) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::Deadline { budget });
            }
        }
        Ok(())
    }

    /// Like [`check`](Self::check), also enforcing the node cap against
    /// `visited`.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] naming the first limit that was hit.
    pub fn check_nodes(&self, visited: u64) -> Result<(), BudgetExceeded> {
        self.check()?;
        if let Some(cap) = self.node_cap {
            if visited > cap {
                return Err(BudgetExceeded::NodeCap { visited, cap });
            }
        }
        Ok(())
    }

    /// A per-loop ticker that runs the full check roughly once every
    /// `every` ticks (rounded up to a power of two), including on the
    /// very first tick so an already-expired deadline aborts before any
    /// work. A tick on an unlimited budget is a single branch.
    pub fn ticker(&self, every: u32) -> Ticker<'_> {
        Ticker {
            budget: self,
            mask: every.max(1).next_power_of_two() - 1,
            // Wraps to 0 on the first tick, forcing an immediate check.
            count: u32::MAX,
            unlimited: self.is_unlimited(),
        }
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
            && self.cancel == other.cancel
            && self.node_cap == other.node_cap
    }
}

/// Amortizes [`Budget::check`] over a loop: cheap counter arithmetic on
/// most ticks, a real check (which reads the clock) once per period.
#[derive(Debug)]
pub struct Ticker<'a> {
    budget: &'a Budget,
    mask: u32,
    count: u32,
    unlimited: bool,
}

impl Ticker<'_> {
    /// Counts one loop iteration; runs the full budget check when the
    /// period elapses (and on the first tick).
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] from the underlying [`Budget::check`].
    #[inline]
    pub fn tick(&mut self) -> Result<(), BudgetExceeded> {
        if self.unlimited {
            return Ok(());
        }
        self.count = self.count.wrapping_add(1);
        if self.count & self.mask != 0 {
            return Ok(());
        }
        self.budget.check()
    }

    /// Like [`tick`](Self::tick), additionally enforcing the node cap
    /// against `visited` whenever the periodic check runs.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] from the underlying [`Budget::check_nodes`].
    #[inline]
    pub fn tick_nodes(&mut self, visited: u64) -> Result<(), BudgetExceeded> {
        if self.unlimited {
            return Ok(());
        }
        self.count = self.count.wrapping_add(1);
        if self.count & self.mask != 0 {
            return Ok(());
        }
        self.budget.check_nodes(visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert!(b.check_nodes(u64::MAX).is_ok());
        let mut t = b.ticker(1);
        for _ in 0..1000 {
            assert!(t.tick().is_ok());
        }
    }

    #[test]
    fn expired_deadline_fails_first_tick() {
        let b = Budget::unlimited().deadline_in(Duration::ZERO);
        let mut t = b.ticker(1024);
        assert_eq!(
            t.tick(),
            Err(BudgetExceeded::Deadline {
                budget: Duration::ZERO
            })
        );
    }

    #[test]
    fn generous_deadline_passes() {
        let b = Budget::unlimited().deadline_in(Duration::from_secs(3600));
        assert!(b.check().is_ok());
    }

    #[test]
    fn deadline_remaining_reports_time_left() {
        assert_eq!(Budget::unlimited().deadline_remaining(), None);
        let b = Budget::unlimited().deadline_in(Duration::from_secs(3600));
        let left = b.deadline_remaining().unwrap();
        assert!(left > Duration::from_secs(3500) && left <= Duration::from_secs(3600));
        let expired = Budget::unlimited().deadline_in(Duration::ZERO);
        assert_eq!(expired.deadline_remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_is_observed_and_wins_over_deadline() {
        let token = CancelToken::new();
        let b = Budget::unlimited()
            .deadline_in(Duration::ZERO)
            .cancelled_by(&token);
        token.cancel();
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn node_cap_enforced_only_via_check_nodes() {
        let b = Budget::unlimited().node_cap(10);
        assert!(b.check().is_ok());
        assert!(b.check_nodes(10).is_ok());
        assert_eq!(
            b.check_nodes(11),
            Err(BudgetExceeded::NodeCap {
                visited: 11,
                cap: 10
            })
        );
    }

    #[test]
    fn ticker_amortizes_clock_reads() {
        // A deadline in the future: the ticker must not fail, and must
        // only check periodically — verified indirectly by the mask.
        let b = Budget::unlimited().deadline_in(Duration::from_secs(3600));
        let t = b.ticker(100);
        assert_eq!(t.mask, 127); // rounded up to a power of two
        let mut t = b.ticker(1);
        for _ in 0..100 {
            assert!(t.tick().is_ok());
        }
    }

    #[test]
    fn budget_equality_is_structural_and_token_identity() {
        let token = CancelToken::new();
        let a = Budget::unlimited().cancelled_by(&token);
        let b = Budget::unlimited().cancelled_by(&token);
        assert_eq!(a, b);
        assert_ne!(a, Budget::unlimited().cancelled_by(&CancelToken::new()));
        assert_eq!(Budget::unlimited(), Budget::default());
    }

    #[test]
    fn exceeded_messages_name_the_limit() {
        let d = BudgetExceeded::Deadline {
            budget: Duration::from_millis(5),
        };
        assert!(d.to_string().contains("deadline"));
        assert!(BudgetExceeded::Cancelled.to_string().contains("cancelled"));
        let n = BudgetExceeded::NodeCap {
            visited: 11,
            cap: 10,
        };
        assert!(n.to_string().contains("cap of 10"));
        assert!(BudgetExceeded::Injected.to_string().contains("failpoint"));
    }
}
