//! Structured events: what subscribers see.
//!
//! Every observation the instrumentation layer produces flows to
//! subscribers as an [`Event`]: span starts, span ends (with wall-clock
//! duration), and free-standing point events such as a solver residual
//! check. Fields are small typed values keyed by `&'static str` so that
//! producing an event never formats strings on the hot path.

use crate::json::{write_f64, JsonObject};
use std::fmt::Write as _;

/// A typed field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// What kind of observation an [`Event`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (emitted only when tracing is on).
    SpanStart,
    /// A span closed; [`Event::nanos`] holds its wall-clock duration.
    SpanEnd,
    /// A free-standing point event (emitted only when tracing is on).
    Point,
}

impl EventKind {
    /// Stable tag used as the `"type"` field of the JSONL encoding.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span",
            EventKind::Point => "event",
        }
    }
}

/// One observation, delivered to every registered subscriber.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub name: &'static str,
    /// Wall-clock nanoseconds; `Some` only for [`EventKind::SpanEnd`].
    pub nanos: Option<u64>,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Encodes the event as one line of JSON (no trailing newline).
    ///
    /// Schema: `{"type":tag,"name":...,["duration_ns":n,]fields...}`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("type", self.kind.tag()).str("name", self.name);
        if let Some(ns) = self.nanos {
            obj.u64("duration_ns", ns);
        }
        for (k, v) in &self.fields {
            match v {
                Value::U64(n) => obj.u64(k, *n),
                Value::I64(n) => obj.i64(k, *n),
                Value::F64(x) => obj.f64(k, *x),
                Value::Bool(b) => obj.bool(k, *b),
                Value::Str(s) => obj.str(k, s),
            };
        }
        obj.close()
    }

    /// Renders the event for terminal output (no trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut line = match self.kind {
            EventKind::SpanStart => format!("[begin] {}", self.name),
            EventKind::SpanEnd => format!("[span ] {}", self.name),
            EventKind::Point => format!("[event] {}", self.name),
        };
        if let Some(ns) = self.nanos {
            let _ = write!(line, "  {}", fmt_nanos(ns));
        }
        for (k, v) in &self.fields {
            let _ = write!(line, "  {k}=");
            match v {
                Value::U64(n) => {
                    let _ = write!(line, "{n}");
                }
                Value::I64(n) => {
                    let _ = write!(line, "{n}");
                }
                Value::F64(x) => {
                    let mut buf = String::new();
                    write_f64(&mut buf, *x);
                    line.push_str(&buf);
                }
                Value::Bool(b) => {
                    let _ = write!(line, "{b}");
                }
                Value::Str(s) => {
                    let _ = write!(line, "{s}");
                }
            }
        }
        line
    }
}

/// Formats a nanosecond count with a unit a human wants to read
/// (`532ns`, `14.2µs`, `3.07ms`, `1.25s`).
pub fn fmt_nanos(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_end_json_has_duration() {
        let e = Event {
            kind: EventKind::SpanEnd,
            name: "lump.level",
            nanos: Some(1_500),
            fields: vec![("level", Value::U64(2)), ("ratio", Value::F64(0.5))],
        };
        assert_eq!(
            e.to_json(),
            r#"{"type":"span","name":"lump.level","duration_ns":1500,"level":2,"ratio":0.5}"#
        );
    }

    #[test]
    fn point_pretty_lists_fields() {
        let e = Event {
            kind: EventKind::Point,
            name: "solve.check",
            nanos: None,
            fields: vec![
                ("iteration", Value::U64(100)),
                ("residual", Value::F64(1e-9)),
            ],
        };
        assert_eq!(
            e.to_pretty(),
            "[event] solve.check  iteration=100  residual=0.000000001"
        );
    }

    #[test]
    fn json_escapes_nasty_names_and_values() {
        // Span/model names full of quotes, backslashes and control
        // characters must survive the JSONL encoding byte-exactly.
        let nasty = "tandem \"J=3\"\\path\nline\ttab\u{1}\u{1f}";
        let e = Event {
            kind: EventKind::Point,
            name: "model \"quoted\"\\name",
            nanos: None,
            fields: vec![("model", Value::Str(nasty.to_owned()))],
        };
        let json = e.to_json();
        let parsed = crate::json::parse(&json).expect("escaped event parses");
        assert_eq!(
            parsed.get("name").and_then(crate::json::Json::as_str),
            Some("model \"quoted\"\\name")
        );
        assert_eq!(
            parsed.get("model").and_then(crate::json::Json::as_str),
            Some(nasty)
        );
    }

    #[test]
    fn nanosecond_units() {
        assert_eq!(fmt_nanos(532), "532ns");
        assert_eq!(fmt_nanos(14_200), "14.20µs");
        assert_eq!(fmt_nanos(3_070_000), "3.07ms");
        assert_eq!(fmt_nanos(1_250_000_000), "1.25s");
    }
}
