//! `mdl-obs` — zero-dependency tracing, metrics and structured events
//! for the mdlump stack.
//!
//! The paper this repository reproduces (Derisavi, Kemper & Sanders,
//! DSN 2005) makes *quantitative* claims: per-level lumping times,
//! refinement work counts, solver iteration costs. This crate is the
//! substrate those numbers flow through — dependency-free because the
//! build environment is offline (no `tracing`/`metrics` from crates.io).
//!
//! Three primitives:
//!
//! - **Spans** ([`span`]) — RAII wall-clock timers around a region of
//!   work. Spans always measure (callers feed durations into public
//!   stats structs like `LumpStats`), and when observability is enabled
//!   they also record a duration histogram sample and emit a `SpanEnd`
//!   event.
//! - **Counters / histograms** ([`counter`], [`histogram`]) — named
//!   atomics in a global registry. Fetch the handle once outside the hot
//!   loop; each increment is gated on one relaxed atomic load, so
//!   disabled instrumentation is near-free.
//! - **Events** ([`point`]) — high-frequency structured observations
//!   (e.g. one per solver convergence check), emitted only when tracing
//!   is on.
//!
//! Two resilience primitives ride along, sharing the zero-dependency
//! contract: [`budget`] (wall-clock deadlines, cancellation tokens and
//! node caps checked cheaply from inner loops) and [`failpoint`]
//! (deterministic fault injection configured via `MDL_FAILPOINTS`).
//! So does [`pool`] — the `ThreadPool`-lite every parallel subsystem
//! (compiled kernel, `ParCsr`, the lumping engine) shares for
//! thread-count resolution and scoped fan-out, placed here because this
//! is the one leaf crate they all already depend on.
//!
//! Profiling extends spans into a timeline: [`set_profiling`] turns on a
//! lock-light ring buffer of completed spans ([`profile`]) with ids,
//! parent links and thread ordinals, exportable as Chrome trace-event
//! JSON or aggregated into a self-profile tree; the optional
//! [`CountingAllocator`] ([`alloc`]) adds bytes-allocated deltas and a
//! process high-water mark. [`current_span`] exposes the active span for
//! stage attribution of point telemetry.
//!
//! Subscribers ([`add_subscriber`]) receive events; [`PrettySubscriber`]
//! renders for terminals, [`JsonlSubscriber`] writes one JSON object per
//! line. [`snapshot`] captures every non-zero metric as a [`Report`].
//!
//! # Naming scheme
//!
//! Dotted lowercase `subsystem.object.action`: `lump.level`,
//! `mdd.unique.hit`, `solve.check`. A span's histogram shares the span's
//! name and records nanoseconds.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let _guard = mdl_obs::testing::guard();
//! mdl_obs::set_enabled(true);
//! let capture = Arc::new(mdl_obs::MemorySubscriber::new());
//! mdl_obs::add_subscriber(capture.clone());
//!
//! let hits = mdl_obs::counter("doc.cache.hit");
//! let span = mdl_obs::span("doc.work").with("size", 16u64);
//! hits.inc();
//! span.finish();
//!
//! assert_eq!(mdl_obs::counter("doc.cache.hit").get(), 1);
//! assert_eq!(capture.take().len(), 1); // the SpanEnd event
//!
//! mdl_obs::clear_subscribers();
//! mdl_obs::set_enabled(false);
//! mdl_obs::reset();
//! ```

pub mod alloc;
pub mod budget;
pub mod event;
pub mod failpoint;
pub mod json;
pub mod pool;
pub mod profile;
mod registry;
mod span;
mod subscriber;

pub use alloc::{
    mem_stats, mem_tracking, reset_mem_peak, set_mem_tracking, CountingAllocator, MemStats,
};
pub use budget::{Budget, BudgetExceeded, CancelToken, Ticker};
pub use event::{fmt_nanos, Event, EventKind, Value};
pub use pool::{default_threads, ThreadPool};
pub use profile::{
    current_span, enter_context, fmt_bytes, profiling, set_profiling, take_trace, ProfileNode,
    SpanContext, Trace, TraceEvent,
};
pub use registry::{Counter, CounterSnapshot, Histogram, HistogramSnapshot, Report};
pub use span::Span;
pub use subscriber::{JsonlSubscriber, MemorySubscriber, PrettySubscriber, Subscriber};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);
static HAS_SUBSCRIBERS: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static registry::Registry {
    static REGISTRY: OnceLock<registry::Registry> = OnceLock::new();
    REGISTRY.get_or_init(registry::Registry::default)
}

fn subscribers() -> &'static RwLock<Vec<Arc<dyn Subscriber>>> {
    static SUBSCRIBERS: OnceLock<RwLock<Vec<Arc<dyn Subscriber>>>> = OnceLock::new();
    SUBSCRIBERS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Turns metric collection and span reporting on or off, process-wide.
/// Off is the default; instrumented code then pays only a relaxed atomic
/// load per counter increment. Disabling also stops tracing and
/// profiling — both require span identities, which disabled spans skip.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        TRACING.store(false, Ordering::Relaxed);
        profile::stop_profiling();
    }
}

/// Whether metric collection is on. The single gate every hot-path
/// increment checks.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns high-frequency event tracing (span starts, [`point`] events) on
/// or off. Tracing implies [`set_enabled`]`(true)`.
pub fn set_tracing(on: bool) {
    if on {
        ENABLED.store(true, Ordering::Relaxed);
    }
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether high-frequency tracing is on.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Fetches (or creates) the named counter. Cheap, but takes a registry
/// lock — call once outside loops and hold on to the handle.
pub fn counter(name: &'static str) -> Counter {
    registry().counter(name)
}

/// Fetches (or creates) the named histogram.
pub fn histogram(name: &'static str) -> Histogram {
    registry().histogram(name)
}

/// Opens a timed span. See [`Span`].
pub fn span(name: &'static str) -> Span {
    Span::new(name)
}

/// Emits a point event to subscribers — only when tracing is on, so
/// per-iteration call sites stay cheap in every other configuration.
///
/// The closure builds the field list lazily; it does not run unless the
/// event will actually be delivered.
pub fn point(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Value)>) {
    if !tracing() || !HAS_SUBSCRIBERS.load(Ordering::Relaxed) {
        return;
    }
    emit(&Event {
        kind: EventKind::Point,
        name,
        nanos: None,
        fields: fields(),
    });
}

/// Delivers an event to every registered subscriber.
pub(crate) fn emit(event: &Event) {
    if !HAS_SUBSCRIBERS.load(Ordering::Relaxed) {
        return;
    }
    if let Ok(subs) = subscribers().read() {
        for sub in subs.iter() {
            sub.on_event(event);
        }
    }
}

/// Registers a subscriber; events fan out to all registered ones.
pub fn add_subscriber(sub: Arc<dyn Subscriber>) {
    if let Ok(mut subs) = subscribers().write() {
        subs.push(sub);
        HAS_SUBSCRIBERS.store(true, Ordering::Relaxed);
    }
}

/// Removes every subscriber (flushing them first).
pub fn clear_subscribers() {
    flush();
    if let Ok(mut subs) = subscribers().write() {
        subs.clear();
        HAS_SUBSCRIBERS.store(false, Ordering::Relaxed);
    }
}

/// Flushes all subscribers' buffered output.
pub fn flush() {
    if let Ok(subs) = subscribers().read() {
        for sub in subs.iter() {
            sub.flush();
        }
    }
}

/// Snapshot of every metric with a non-zero value, sorted by name.
pub fn snapshot() -> Report {
    registry().snapshot()
}

/// Zeroes all counters and histograms (handles stay valid). Use between
/// runs to scope a report to one command.
pub fn reset() {
    registry().reset();
}

/// Test support: the global flags and registry are process-wide, so
/// tests that flip them must serialize. Hold the guard for the duration
/// of any test calling [`set_enabled`]/[`set_tracing`]/[`reset`].
pub mod testing {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Acquires the cross-test lock (poisoning is ignored — a panicked
    /// test should not cascade).
    pub fn guard() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_span_counter_event() {
        let _guard = testing::guard();
        reset();
        set_tracing(true);
        let capture = Arc::new(MemorySubscriber::new());
        add_subscriber(capture.clone());

        let c = counter("obs.e2e.count");
        c.add(3);
        let span = span("obs.e2e.work").with("items", 2u64);
        point("obs.e2e.tick", || vec![("i", Value::U64(0))]);
        span.finish();

        let events = capture.take();
        clear_subscribers();
        set_enabled(false);

        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::SpanStart, EventKind::Point, EventKind::SpanEnd]
        );
        let end = events.last().unwrap();
        assert_eq!(end.name, "obs.e2e.work");
        assert!(end.nanos.unwrap() > 0);
        assert_eq!(end.fields, vec![("items", Value::U64(2))]);

        let report = snapshot();
        assert!(report
            .counters
            .iter()
            .any(|c| c.name == "obs.e2e.count" && c.value == 3));
        assert!(report
            .histograms
            .iter()
            .any(|h| h.name == "obs.e2e.work" && h.count == 1));
        reset();
        assert!(!snapshot()
            .counters
            .iter()
            .any(|c| c.name == "obs.e2e.count"));
    }

    #[test]
    fn disabled_counters_do_not_count() {
        let _guard = testing::guard();
        set_enabled(false);
        let c = counter("obs.disabled.count");
        c.inc();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn point_events_require_tracing() {
        let _guard = testing::guard();
        set_enabled(true);
        let capture = Arc::new(MemorySubscriber::new());
        add_subscriber(capture.clone());
        point("obs.no-trace.tick", || {
            panic!("field closure must not run without tracing")
        });
        assert!(capture.take().is_empty());
        clear_subscribers();
        set_enabled(false);
    }

    #[test]
    fn tracing_implies_enabled_and_disable_clears_tracing() {
        let _guard = testing::guard();
        set_tracing(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!tracing());
    }
}
