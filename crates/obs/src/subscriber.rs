//! Subscribers: where events go.
//!
//! A [`Subscriber`] receives every emitted [`Event`]. Two emitters ship
//! with the crate — [`PrettySubscriber`] for terminals and
//! [`JsonlSubscriber`] for machine-readable capture — plus a
//! [`MemorySubscriber`] for tests. Emission is already gated by the
//! global enable/trace flags before a subscriber sees anything, so
//! implementations don't re-check them.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;

/// Sink for structured events.
pub trait Subscriber: Send + Sync {
    fn on_event(&self, event: &Event);

    /// Flush buffered output; called by [`crate::flush`].
    fn flush(&self) {}
}

fn locked_write(out: &Mutex<Box<dyn Write + Send>>, line: &str) {
    // A poisoned or failed writer must never take down the instrumented
    // computation; observability is best-effort by design.
    if let Ok(mut w) = out.lock() {
        let _ = writeln!(w, "{line}");
    }
}

fn locked_flush(out: &Mutex<Box<dyn Write + Send>>) {
    if let Ok(mut w) = out.lock() {
        let _ = w.flush();
    }
}

/// Writes each event as one line of JSON.
pub struct JsonlSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSubscriber {
    pub fn from_writer<W: Write + Send + 'static>(w: W) -> Self {
        JsonlSubscriber {
            out: Mutex::new(Box::new(w)),
        }
    }

    pub fn stdout() -> Self {
        Self::from_writer(io::stdout())
    }

    pub fn stderr() -> Self {
        Self::from_writer(io::stderr())
    }

    pub fn to_file(path: &str) -> io::Result<Self> {
        Ok(Self::from_writer(BufWriter::new(File::create(path)?)))
    }

    /// Writes a pre-serialized JSON line (used for report snapshots).
    pub fn write_line(&self, line: &str) {
        locked_write(&self.out, line);
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_event(&self, event: &Event) {
        locked_write(&self.out, &event.to_json());
    }

    fn flush(&self) {
        locked_flush(&self.out);
    }
}

/// Writes each event as an aligned human-readable line.
pub struct PrettySubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl PrettySubscriber {
    pub fn from_writer<W: Write + Send + 'static>(w: W) -> Self {
        PrettySubscriber {
            out: Mutex::new(Box::new(w)),
        }
    }

    pub fn stdout() -> Self {
        Self::from_writer(io::stdout())
    }

    pub fn stderr() -> Self {
        Self::from_writer(io::stderr())
    }

    pub fn to_file(path: &str) -> io::Result<Self> {
        Ok(Self::from_writer(BufWriter::new(File::create(path)?)))
    }

    pub fn write_line(&self, line: &str) {
        locked_write(&self.out, line);
    }
}

impl Subscriber for PrettySubscriber {
    fn on_event(&self, event: &Event) {
        locked_write(&self.out, &event.to_pretty());
    }

    fn flush(&self) {
        locked_flush(&self.out);
    }
}

/// Captures events in memory; the assertion backbone of instrumentation
/// tests across the workspace.
#[derive(Default)]
pub struct MemorySubscriber {
    events: Mutex<Vec<Event>>,
}

impl MemorySubscriber {
    pub fn new() -> Self {
        Self::default()
    }

    /// All events captured so far (clones; capture keeps accumulating).
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Drains and returns the captured events.
    pub fn take(&self) -> Vec<Event> {
        self.events
            .lock()
            .map(|mut e| std::mem::take(&mut *e))
            .unwrap_or_default()
    }
}

impl Subscriber for MemorySubscriber {
    fn on_event(&self, event: &Event) {
        if let Ok(mut e) = self.events.lock() {
            e.push(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    fn sample() -> Event {
        Event {
            kind: EventKind::SpanEnd,
            name: "t",
            nanos: Some(7),
            fields: vec![],
        }
    }

    #[test]
    fn memory_subscriber_captures_and_drains() {
        let m = MemorySubscriber::new();
        m.on_event(&sample());
        m.on_event(&sample());
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.take().len(), 2);
        assert!(m.events().is_empty());
    }

    #[test]
    fn jsonl_subscriber_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let s = JsonlSubscriber::from_writer(Shared(buf.clone()));
        s.on_event(&sample());
        s.write_line("{\"type\":\"counter\"}");
        s.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"span\""));
    }
}
