//! Minimal JSON writing and reading.
//!
//! The build environment is offline, so instead of `serde_json` the crate
//! ships the few hundred lines of JSON it actually needs: string escaping,
//! an append-only object writer, and a small recursive-descent reader
//! ([`parse`]) used by the bench regression gate to load baselines and by
//! tests to verify that everything the writers emit round-trips. Output
//! is always a single line (JSONL friendly) and always valid JSON —
//! non-finite floats are emitted as `null` rather than the invalid bare
//! tokens `NaN`/`inf`.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and appends it to `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `v` to `out` as a JSON number, or `null` when non-finite.
///
/// Rust's `Display` for `f64` is a shortest round-trip decimal, which is
/// valid JSON for every finite value.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Builder for one flat JSON object, written left to right.
///
/// # Example
///
/// ```
/// let mut obj = mdl_obs::json::JsonObject::new();
/// obj.str("type", "span").u64("duration_ns", 1500);
/// assert_eq!(obj.close(), r#"{"type":"span","duration_ns":1500}"#);
/// ```
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        &mut self.buf
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push('"');
        escape_into(buf, v);
        buf.push('"');
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        let buf = self.key(k);
        write_f64(buf, v);
        self
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Appends `raw` verbatim as the value; the caller guarantees it is
    /// already valid JSON (e.g. a nested object built separately).
    pub fn raw(&mut self, k: &str, raw: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(raw);
        self
    }

    pub fn close(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse as `f64`; u64 baselines fit losslessly up to
    /// 2⁵³, far beyond any metric this crate records in one value.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order preserved; duplicate keys keep both entries, `get`
    /// returns the first.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// A message with the byte offset of the first problem.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting beyond this is rejected rather than risking a stack overflow.
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return Err(format!("invalid codepoint {c:#x}")),
                            }
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                b if b < 0x20 => return Err(format!("raw control byte at {}", self.pos - 1)),
                _ => {
                    // Multi-byte UTF-8: copy the whole char.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn object_round_trip() {
        let mut obj = JsonObject::new();
        obj.str("name", "lump.level")
            .u64("level", 3)
            .i64("delta", -2)
            .f64("residual", 1e-9)
            .bool("ok", true)
            .raw("inner", "[1,2]");
        assert_eq!(
            obj.close(),
            r#"{"name":"lump.level","level":3,"delta":-2,"residual":0.000000001,"ok":true,"inner":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.f64("a", f64::NAN).f64("b", f64::INFINITY);
        assert_eq!(obj.close(), r#"{"a":null,"b":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().close(), "{}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut obj = JsonObject::new();
        obj.str("name", "a\"b\\c\nd\te\u{1}")
            .u64("big", u64::MAX >> 12)
            .i64("neg", -42)
            .f64("x", 1.5e-9)
            .bool("ok", true)
            .raw("arr", "[1,2,3]");
        let parsed = parse(&obj.close()).unwrap();
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
        assert_eq!(
            parsed.get("big").and_then(Json::as_u64),
            Some(u64::MAX >> 12)
        );
        assert_eq!(parsed.get("neg").and_then(Json::as_f64), Some(-42.0));
        assert_eq!(parsed.get("x").and_then(Json::as_f64), Some(1.5e-9));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed
                .get("arr")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn parse_handles_nesting_unicode_and_literals() {
        let v = parse(r#"{"a":[{"b":null},true,false,"π–é"], "empty":{}, "e":[]}"#).unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].get("b"), Some(&Json::Null));
        assert_eq!(a[3].as_str(), Some("π–é"));
        assert_eq!(v.get("empty"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("e"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"\u{1}\"",
            "{\"a\":1}x",
            "--1",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parse_rejects_pathological_nesting() {
        let deep = "[".repeat(300) + &"]".repeat(300);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
