//! Minimal JSON writing.
//!
//! The build environment is offline, so instead of `serde_json` the crate
//! ships the few dozen lines of JSON it actually needs: string escaping and
//! an append-only object writer. Output is always a single line (JSONL
//! friendly) and always valid JSON — non-finite floats are emitted as
//! `null` rather than the invalid bare tokens `NaN`/`inf`.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and appends it to `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `v` to `out` as a JSON number, or `null` when non-finite.
///
/// Rust's `Display` for `f64` is a shortest round-trip decimal, which is
/// valid JSON for every finite value.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Builder for one flat JSON object, written left to right.
///
/// # Example
///
/// ```
/// let mut obj = mdl_obs::json::JsonObject::new();
/// obj.str("type", "span").u64("duration_ns", 1500);
/// assert_eq!(obj.close(), r#"{"type":"span","duration_ns":1500}"#);
/// ```
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        &mut self.buf
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push('"');
        escape_into(buf, v);
        buf.push('"');
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        let buf = self.key(k);
        let _ = write!(buf, "{v}");
        self
    }

    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        let buf = self.key(k);
        write_f64(buf, v);
        self
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Appends `raw` verbatim as the value; the caller guarantees it is
    /// already valid JSON (e.g. a nested object built separately).
    pub fn raw(&mut self, k: &str, raw: &str) -> &mut Self {
        let buf = self.key(k);
        buf.push_str(raw);
        self
    }

    pub fn close(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn object_round_trip() {
        let mut obj = JsonObject::new();
        obj.str("name", "lump.level")
            .u64("level", 3)
            .i64("delta", -2)
            .f64("residual", 1e-9)
            .bool("ok", true)
            .raw("inner", "[1,2]");
        assert_eq!(
            obj.close(),
            r#"{"name":"lump.level","level":3,"delta":-2,"residual":0.000000001,"ok":true,"inner":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.f64("a", f64::NAN).f64("b", f64::INFINITY);
        assert_eq!(obj.close(), r#"{"a":null,"b":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().close(), "{}");
    }
}
