//! Deterministic fault injection, in the style of the `fail` crate but
//! vendored and zero-dependency.
//!
//! Failpoints are named call sites (`solver.iterate`, `md.compile`,
//! `lump.level`, …) that production code consults via [`hit`]. With no
//! configuration the whole facility is a single relaxed atomic load —
//! safe to leave in release builds and hot loops.
//!
//! Configuration comes from the `MDL_FAILPOINTS` environment variable
//! (parsed once, lazily) or programmatically via [`configure`]/[`set`]
//! for tests:
//!
//! ```text
//! MDL_FAILPOINTS=solver.iterate=nan@100;md.compile=sleep:50ms
//! ```
//!
//! Each entry is `name=action[@hit]`:
//!
//! - `nan` — the site receives [`Injection::Nan`] and poisons its value.
//! - `err` — the site receives [`Injection::Err`] and returns its
//!   injected-failure error.
//! - `sleep:DUR` — the calling thread sleeps for `DUR` (`50ms`, `2s`,
//!   `10us`) inside [`hit`]; the site sees nothing. Used to force
//!   deadline overruns deterministically.
//! - `panic` — [`hit`] panics with a recognizable message. Used to
//!   exercise `catch_unwind` worker isolation and poisoned-lock
//!   recovery in the daemon's chaos tests.
//!
//! With `@hit` the action triggers exactly once, on the `hit`-th call
//! (1-based) across the process; without it, on every call. Tests that
//! configure failpoints must hold [`crate::testing::guard`] — the
//! registry is process-global.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// The environment variable read (once) for failpoint configuration.
pub const ENV_VAR: &str = "MDL_FAILPOINTS";

/// What a triggered failpoint asks the call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Poison the site's value with a NaN.
    Nan,
    /// Return the site's injected-failure error.
    Err,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Nan,
    Err,
    Sleep(Duration),
    Panic,
}

#[derive(Debug)]
struct Spec {
    action: Action,
    /// 1-based hit count at which the action triggers; `None` = always.
    at: Option<u64>,
    hits: AtomicU64,
}

static INITIALIZED: AtomicBool = AtomicBool::new(false);
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static RwLock<HashMap<String, Arc<Spec>>> {
    static REGISTRY: OnceLock<RwLock<HashMap<String, Arc<Spec>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Consults the failpoint `name`. The fast path — no failpoints ever
/// configured, or all cleared — is one relaxed atomic load.
///
/// Returns the injection the call site must act on, or `None` (also for
/// `sleep:` actions, which complete inside this call).
#[inline]
pub fn hit(name: &str) -> Option<Injection> {
    if !ACTIVE.load(Ordering::Relaxed) {
        if INITIALIZED.load(Ordering::Relaxed) {
            return None;
        }
        init_from_env();
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
    }
    hit_slow(name)
}

#[cold]
fn hit_slow(name: &str) -> Option<Injection> {
    let spec = registry().read().ok()?.get(name)?.clone();
    let count = spec.hits.fetch_add(1, Ordering::SeqCst) + 1;
    let triggered = match spec.at {
        Some(at) => count == at,
        None => true,
    };
    if !triggered {
        return None;
    }
    // Fault telemetry carries stage attribution: which span was active
    // when the injection fired (see `crate::current_span`).
    crate::counter("failpoint.hit").inc();
    crate::point("failpoint.hit", || {
        let mut fields: Vec<(&'static str, crate::Value)> = vec![("failpoint", name.into())];
        if let Some(ctx) = crate::profile::current_span() {
            fields.push(("span", ctx.name.into()));
            fields.push(("span_id", ctx.id.into()));
        }
        fields
    });
    match spec.action {
        Action::Nan => Some(Injection::Nan),
        Action::Err => Some(Injection::Err),
        Action::Sleep(d) => {
            std::thread::sleep(d);
            None
        }
        Action::Panic => panic!("injected panic at failpoint {name}"),
    }
}

/// Parses `MDL_FAILPOINTS` if it has not been looked at yet. Called
/// lazily by [`hit`]; callable eagerly for deterministic startup. Parse
/// errors in the environment value are reported on stderr and the bad
/// entry skipped — a typo must not crash production code.
pub fn init_from_env() {
    if INITIALIZED.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Ok(value) = std::env::var(ENV_VAR) {
        if !value.trim().is_empty() {
            if let Err(e) = configure(&value) {
                eprintln!("{ENV_VAR}: {e}");
            }
        }
    }
}

/// Installs every `name=action[@hit]` entry from `config` (`;`
/// separated), replacing any existing entry of the same name, and
/// activates the facility.
///
/// # Errors
///
/// A message naming the first malformed entry; entries before it are
/// already installed.
pub fn configure(config: &str) -> Result<usize, String> {
    let mut installed = 0;
    for entry in config.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("malformed failpoint entry {entry:?} (want name=action)"))?;
        set(name.trim(), spec.trim())?;
        installed += 1;
    }
    Ok(installed)
}

/// Installs one failpoint: `name` with `spec` = `action[@hit]`.
///
/// # Errors
///
/// A message describing the malformed action or hit count.
pub fn set(name: &str, spec: &str) -> Result<(), String> {
    let (action_str, at) = match spec.split_once('@') {
        None => (spec, None),
        Some((a, n)) => {
            let at: u64 = n
                .parse()
                .map_err(|_| format!("failpoint {name}: invalid hit count {n:?}"))?;
            if at == 0 {
                return Err(format!("failpoint {name}: hit counts are 1-based"));
            }
            (a, Some(at))
        }
    };
    let action = match action_str {
        "nan" => Action::Nan,
        "err" => Action::Err,
        "panic" => Action::Panic,
        other => match other.strip_prefix("sleep:") {
            Some(dur) => {
                Action::Sleep(parse_duration(dur).map_err(|e| format!("failpoint {name}: {e}"))?)
            }
            None => {
                return Err(format!(
                    "failpoint {name}: unknown action {other:?} (want nan|err|sleep:DUR|panic)"
                ))
            }
        },
    };
    if let Ok(mut reg) = registry().write() {
        reg.insert(
            name.to_string(),
            Arc::new(Spec {
                action,
                at,
                hits: AtomicU64::new(0),
            }),
        );
    }
    INITIALIZED.store(true, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
    Ok(())
}

/// Removes every failpoint and restores the no-op fast path.
pub fn clear() {
    if let Ok(mut reg) = registry().write() {
        reg.clear();
    }
    INITIALIZED.store(true, Ordering::SeqCst);
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Whether any failpoint is currently installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, unit): (&str, &str) = match s.find(|c: char| !c.is_ascii_digit()) {
        Some(i) => s.split_at(i),
        None => (s, ""),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid duration {s:?}"))?;
    match unit {
        "us" => Ok(Duration::from_micros(n)),
        "ms" | "" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        _ => Err(format!("invalid duration unit in {s:?} (want us|ms|s)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_hit_is_noop() {
        let _guard = crate::testing::guard();
        clear();
        assert!(!active());
        assert_eq!(hit("fp.test.unconfigured"), None);
    }

    #[test]
    fn nan_at_k_triggers_exactly_once() {
        let _guard = crate::testing::guard();
        clear();
        set("fp.test.nan", "nan@3").unwrap();
        assert!(active());
        assert_eq!(hit("fp.test.nan"), None);
        assert_eq!(hit("fp.test.nan"), None);
        assert_eq!(hit("fp.test.nan"), Some(Injection::Nan));
        assert_eq!(hit("fp.test.nan"), None);
        clear();
    }

    #[test]
    fn unconditional_err_triggers_every_hit() {
        let _guard = crate::testing::guard();
        clear();
        set("fp.test.err", "err").unwrap();
        assert_eq!(hit("fp.test.err"), Some(Injection::Err));
        assert_eq!(hit("fp.test.err"), Some(Injection::Err));
        // Other names stay untouched.
        assert_eq!(hit("fp.test.other"), None);
        clear();
    }

    #[test]
    fn sleep_action_delays_and_returns_none() {
        let _guard = crate::testing::guard();
        clear();
        set("fp.test.sleep", "sleep:10ms").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(hit("fp.test.sleep"), None);
        assert!(t0.elapsed() >= Duration::from_millis(10));
        clear();
    }

    #[test]
    fn panic_action_unwinds_with_recognizable_message() {
        let _guard = crate::testing::guard();
        clear();
        set("fp.test.panic", "panic@2").unwrap();
        assert_eq!(hit("fp.test.panic"), None);
        let caught = std::panic::catch_unwind(|| hit("fp.test.panic"));
        let msg = match caught {
            Ok(_) => panic!("panic action did not panic"),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
        };
        assert!(msg.contains("injected panic"), "payload: {msg:?}");
        assert!(msg.contains("fp.test.panic"), "payload: {msg:?}");
        // One-shot: subsequent hits pass through.
        assert_eq!(hit("fp.test.panic"), None);
        clear();
    }

    #[test]
    fn configure_parses_multiple_entries() {
        let _guard = crate::testing::guard();
        clear();
        let n = configure("fp.test.a=nan@2; fp.test.b=sleep:1ms;").unwrap();
        assert_eq!(n, 2);
        assert_eq!(hit("fp.test.a"), None);
        assert_eq!(hit("fp.test.a"), Some(Injection::Nan));
        clear();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _guard = crate::testing::guard();
        clear();
        assert!(set("fp.t", "explode").is_err());
        assert!(set("fp.t", "nan@0").is_err());
        assert!(set("fp.t", "nan@soon").is_err());
        assert!(set("fp.t", "sleep:fast").is_err());
        assert!(set("fp.t", "sleep:5y").is_err());
        assert!(configure("just-a-name").is_err());
        clear();
    }

    #[test]
    fn triggered_hit_reports_active_span() {
        let _guard = crate::testing::guard();
        crate::reset();
        clear();
        crate::set_tracing(true);
        let capture = std::sync::Arc::new(crate::MemorySubscriber::new());
        crate::add_subscriber(capture.clone());
        set("fp.test.attr", "sleep:1us").unwrap();
        let span = crate::span("fp.test.stage");
        let span_id = span.id();
        assert_eq!(hit("fp.test.attr"), None);
        span.finish();
        let events = capture.take();
        crate::clear_subscribers();
        crate::set_enabled(false);
        clear();
        let hit_ev = events
            .iter()
            .find(|e| e.name == "failpoint.hit")
            .expect("triggered failpoint emits a point event");
        let field = |k: &str| hit_ev.fields.iter().find(|(n, _)| *n == k).map(|(_, v)| v);
        assert_eq!(
            field("failpoint"),
            Some(&crate::Value::Str("fp.test.attr".into()))
        );
        assert_eq!(
            field("span"),
            Some(&crate::Value::Str("fp.test.stage".into()))
        );
        assert_eq!(field("span_id"), Some(&crate::Value::U64(span_id)));
        assert!(crate::counter("failpoint.hit").get() >= 1);
        crate::reset();
    }

    #[test]
    fn durations_parse_with_units() {
        assert_eq!(parse_duration("50ms").unwrap(), Duration::from_millis(50));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("10us").unwrap(), Duration::from_micros(10));
        assert_eq!(parse_duration("7").unwrap(), Duration::from_millis(7));
    }
}
