//! RAII spans: wall-clock timing of a region of work.
//!
//! A [`Span`] *always* measures (the instrumented code often feeds the
//! duration into its own stats structs, e.g. `LumpStats.elapsed`, which
//! must stay correct with observability off), but only *reports* —
//! histogram sample plus `SpanEnd` event — when observability is enabled.
//!
//! When observability is enabled a span also carries an identity: a
//! process-unique id and the id of the span it opened inside (the top of
//! this thread's context stack, see [`crate::profile`]). When profiling
//! is on as well, closing the span deposits a
//! [`TraceEvent`](crate::TraceEvent) in the timeline ring buffer,
//! including the bytes allocated while the span was open if the counting
//! allocator is tracking.

use crate::event::{Event, EventKind, Value};
use crate::profile::{self, SpanContext};
use std::time::{Duration, Instant};

/// A timed region. Create with [`crate::span`], attach fields with
/// [`Span::with`]/[`Span::record`], and close with [`Span::finish`] to
/// get the measured duration (dropping it reports too, but discards the
/// duration).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
    finished: bool,
    /// 0 when observability was disabled at creation (no identity).
    id: u64,
    parent: u64,
    /// Optional display name for traces (see [`Span::trace_label`]).
    label: Option<String>,
    /// Allocator totals sampled at creation (profiling only).
    alloc0: u64,
    calls0: u64,
}

impl Span {
    pub(crate) fn new(name: &'static str) -> Self {
        let (id, parent) = if crate::enabled() {
            let parent = profile::current_span().map_or(0, |c| c.id);
            let id = profile::next_span_id();
            profile::push_span(SpanContext { id, name });
            (id, parent)
        } else {
            (0, 0)
        };
        let (alloc0, calls0) = if id != 0 && profile::profiling() && crate::alloc::mem_tracking() {
            (crate::alloc::allocated_bytes(), crate::alloc::alloc_calls())
        } else {
            (0, 0)
        };
        if crate::tracing() {
            crate::emit(&Event {
                kind: EventKind::SpanStart,
                name,
                nanos: None,
                fields: Vec::new(),
            });
        }
        Span {
            name,
            start: Instant::now(),
            fields: Vec::new(),
            finished: false,
            id,
            parent,
            label: None,
            alloc0,
            calls0,
        }
    }

    /// Builder-style field attachment at creation time.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.record(key, value);
        self
    }

    /// Attaches a field discovered mid-span (e.g. a result size). Fields
    /// ride on the `SpanEnd` event; they are skipped entirely while
    /// observability is disabled.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if crate::enabled() {
            self.fields.push((key, value.into()));
        }
    }

    /// Sets the display name used for this span in timeline traces and
    /// the aggregated profile — e.g. `pipeline.lump` instead of the
    /// generic `pipeline.stage` the histogram aggregates under. Only
    /// stored while profiling, so the string is never built otherwise
    /// (pass `format_args!` for zero cost on the off path).
    pub fn trace_label(&mut self, label: impl std::fmt::Display) {
        if self.id != 0 && profile::profiling() {
            self.label = Some(label.to_string());
        }
    }

    /// The span's process-unique id (0 when observability was disabled
    /// at creation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Elapsed time so far, without closing the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span and returns its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        self.finished = true;
        let elapsed = self.start.elapsed();
        if self.id == 0 {
            return elapsed;
        }
        profile::pop_span(self.id);
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        if crate::enabled() {
            crate::histogram(self.name).record_always(nanos);
            crate::emit(&Event {
                kind: EventKind::SpanEnd,
                name: self.name,
                nanos: Some(nanos),
                fields: std::mem::take(&mut self.fields),
            });
        }
        if profile::profiling() {
            let (alloc_bytes, alloc_calls) = if crate::alloc::mem_tracking() {
                (
                    crate::alloc::allocated_bytes().saturating_sub(self.alloc0),
                    crate::alloc::alloc_calls().saturating_sub(self.calls0),
                )
            } else {
                (0, 0)
            };
            profile::record(crate::TraceEvent {
                id: self.id,
                parent: self.parent,
                name: self.name,
                label: self.label.take(),
                tid: profile::thread_ord(),
                start_ns: u64::try_from(self.start.duration_since(profile::epoch()).as_nanos())
                    .unwrap_or(u64::MAX),
                dur_ns: nanos,
                alloc_bytes,
                alloc_calls,
            });
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn finish_returns_nonzero_duration() {
        let span = crate::span("obs.test.span");
        std::hint::black_box(1 + 1);
        let d = span.finish();
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn disabled_span_records_no_fields() {
        let _guard = crate::testing::guard();
        crate::set_enabled(false);
        let span = crate::span("obs.test.disabled").with("k", 1u64);
        assert!(span.fields.is_empty());
        assert_eq!(span.id(), 0, "disabled spans carry no identity");
    }

    #[test]
    fn enabled_spans_have_ids_and_expose_context() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let span = crate::span("obs.test.ctx");
        assert!(span.id() > 0);
        let ctx = crate::current_span().expect("span is on the stack");
        assert_eq!(ctx.id, span.id());
        assert_eq!(ctx.name, "obs.test.ctx");
        span.finish();
        assert_eq!(crate::current_span(), None);
        crate::set_enabled(false);
    }

    #[test]
    fn trace_label_is_skipped_without_profiling() {
        let _guard = crate::testing::guard();
        crate::set_enabled(true);
        let mut span = crate::span("obs.test.label");
        span.trace_label(format_args!("expensive-{}", 42));
        assert!(span.label.is_none());
        span.finish();
        crate::set_enabled(false);
    }
}
