//! RAII spans: wall-clock timing of a region of work.
//!
//! A [`Span`] *always* measures (the instrumented code often feeds the
//! duration into its own stats structs, e.g. `LumpStats.elapsed`, which
//! must stay correct with observability off), but only *reports* —
//! histogram sample plus `SpanEnd` event — when observability is enabled.

use crate::event::{Event, EventKind, Value};
use std::time::{Duration, Instant};

/// A timed region. Create with [`crate::span`], attach fields with
/// [`Span::with`]/[`Span::record`], and close with [`Span::finish`] to
/// get the measured duration (dropping it reports too, but discards the
/// duration).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
    finished: bool,
}

impl Span {
    pub(crate) fn new(name: &'static str) -> Self {
        if crate::tracing() {
            crate::emit(&Event {
                kind: EventKind::SpanStart,
                name,
                nanos: None,
                fields: Vec::new(),
            });
        }
        Span {
            name,
            start: Instant::now(),
            fields: Vec::new(),
            finished: false,
        }
    }

    /// Builder-style field attachment at creation time.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.record(key, value);
        self
    }

    /// Attaches a field discovered mid-span (e.g. a result size). Fields
    /// ride on the `SpanEnd` event; they are skipped entirely while
    /// observability is disabled.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if crate::enabled() {
            self.fields.push((key, value.into()));
        }
    }

    /// Elapsed time so far, without closing the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span and returns its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        self.finished = true;
        let elapsed = self.start.elapsed();
        if crate::enabled() {
            let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            crate::histogram(self.name).record_always(nanos);
            crate::emit(&Event {
                kind: EventKind::SpanEnd,
                name: self.name,
                nanos: Some(nanos),
                fields: std::mem::take(&mut self.fields),
            });
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn finish_returns_nonzero_duration() {
        let span = crate::span("obs.test.span");
        std::hint::black_box(1 + 1);
        let d = span.finish();
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn disabled_span_records_no_fields() {
        let _guard = crate::testing::guard();
        crate::set_enabled(false);
        let span = crate::span("obs.test.disabled").with("k", 1u64);
        assert!(span.fields.is_empty());
    }
}
