//! Timeline profiling: span identities, per-thread span context, a
//! lock-light ring buffer of completed spans, Chrome trace-event export
//! and the aggregated self-profile tree.
//!
//! Profiling is a third gate on top of [`crate::enabled`] and
//! [`crate::tracing`]: when [`set_profiling`]`(true)` is on, every
//! [`crate::span`] that closes deposits one [`TraceEvent`] — span id,
//! parent id, thread ordinal, start offset, duration and (when the
//! counting allocator is active, see [`crate::alloc`]) the bytes
//! allocated while the span was open.
//!
//! The collector is a fixed set of mutex-protected shards indexed by
//! thread ordinal: a recording thread only ever contends with threads
//! hashing to the same shard, and each push is one short critical
//! section (no allocation once a shard has grown). When a shard fills,
//! its first half stays pinned and the second half becomes a ring that
//! overwrites its oldest entries: both ends of a long run survive — the
//! early stage spans (build/lump close first) land in the pinned half,
//! the enclosing stage spans that close last land in the ring — and
//! what drops is the middle of any flood of hot leaf spans.
//! [`Trace::dropped`] reports how many events were overwritten.
//!
//! Span context — "which span is this thread currently inside?" — is a
//! per-thread stack maintained whenever observability is enabled. It
//! gives every new span its parent id, lets point-event producers such
//! as [`crate::failpoint`] and the artifact store attribute themselves
//! to the active stage ([`current_span`]), and crosses thread
//! boundaries explicitly: [`crate::ThreadPool`] captures the caller's
//! context and re-enters it ([`enter_context`]) inside each worker, so
//! parallel lump/kernel blocks attribute to their parent stage.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonObject;

static PROFILING: AtomicBool = AtomicBool::new(false);
/// Span ids are process-unique and never 0 (0 = "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Small sequential thread ordinals (std's `ThreadId` is opaque).
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);

const SHARDS: usize = 16;
/// Per-shard capacity; 16 shards × 8192 events ≈ 131k spans ≈ 9 MiB.
const SHARD_CAP: usize = 8192;
/// Events below this index are never overwritten once a shard wraps:
/// the run's earliest spans stay in the trace no matter how many hot
/// leaf spans follow.
const SHARD_PIN: usize = SHARD_CAP / 2;

thread_local! {
    static THREAD_ORD: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// Identity of a live span: its process-unique id and static name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub id: u64,
    pub name: &'static str,
}

/// One completed span as deposited in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub id: u64,
    /// Id of the enclosing span at creation time; 0 = root.
    pub parent: u64,
    pub name: &'static str,
    /// Optional display name (see [`crate::Span::trace_label`]);
    /// the generic `name` is used when absent.
    pub label: Option<String>,
    /// Sequential ordinal of the recording thread (1 = first recorder).
    pub tid: u64,
    /// Start offset from the profiling epoch, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Bytes allocated while the span was open (0 unless the counting
    /// allocator is installed and tracking).
    pub alloc_bytes: u64,
    /// Allocation calls while the span was open.
    pub alloc_calls: u64,
}

impl TraceEvent {
    /// The name shown in traces and profiles.
    pub fn display_name(&self) -> &str {
        self.label.as_deref().unwrap_or(self.name)
    }
}

#[derive(Default)]
struct Shard {
    events: Vec<TraceEvent>,
    /// Total events ever written to this shard (≥ `events.len()`).
    written: u64,
}

struct Ring {
    shards: Vec<Mutex<Shard>>,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
    })
}

/// The instant `start_ns` offsets are measured from: fixed the first
/// time profiling is enabled. Spans that started earlier clamp to 0.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns timeline collection on or off. Enabling implies
/// [`crate::set_enabled`]`(true)` (spans must carry ids to be traced)
/// and clears any previously collected events.
pub fn set_profiling(on: bool) {
    if on {
        crate::set_enabled(true);
        let _ = epoch();
        drain();
    }
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether timeline collection is on.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

pub(crate) fn stop_profiling() {
    PROFILING.store(false, Ordering::Relaxed);
}

pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

fn thread_names() -> &'static Mutex<Vec<(u64, String)>> {
    static NAMES: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// This thread's small sequential ordinal, assigned on first use.
pub fn thread_ord() -> u64 {
    THREAD_ORD.with(|cell| {
        let v = cell.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
        cell.set(v);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{v}"));
        if let Ok(mut names) = thread_names().lock() {
            names.push((v, name));
        }
        v
    })
}

pub(crate) fn push_span(ctx: SpanContext) {
    SPAN_STACK.with(|s| s.borrow_mut().push(ctx));
}

/// Removes `id` from this thread's stack. Spans close LIFO in practice;
/// searching from the top makes an out-of-order close harmless.
pub(crate) fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|c| c.id == id) {
            stack.remove(pos);
        }
    });
}

/// The innermost span currently open on this thread, if any. This is
/// the stage-attribution hook: failpoint hits, `store.hit`/`store.miss`
/// events and similar telemetry read it to tag themselves with the
/// active stage.
pub fn current_span() -> Option<SpanContext> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Re-enters a span context captured on another thread (RAII). Used by
/// [`crate::ThreadPool`] so spans opened inside workers attribute to
/// the span that launched the fan-out; a `None` context is a no-op.
pub fn enter_context(ctx: Option<SpanContext>) -> ContextGuard {
    match ctx {
        Some(c) if crate::enabled() => {
            push_span(c);
            ContextGuard {
                entered: Some(c.id),
            }
        }
        _ => ContextGuard { entered: None },
    }
}

/// Guard returned by [`enter_context`]; leaves the context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    entered: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(id) = self.entered {
            pop_span(id);
        }
    }
}

/// Deposits one completed span. Cheap no-op unless profiling is on.
pub(crate) fn record(event: TraceEvent) {
    if !profiling() {
        return;
    }
    let shard = &ring().shards[(event.tid as usize) % SHARDS];
    let Ok(mut s) = shard.lock() else { return };
    if s.events.len() < SHARD_CAP {
        s.events.push(event);
    } else {
        // Pinned-half + ring: overwrite the oldest *unpinned* entry.
        let ring_len = (SHARD_CAP - SHARD_PIN) as u64;
        let i = SHARD_PIN + ((s.written - SHARD_CAP as u64) % ring_len) as usize;
        s.events[i] = event;
    }
    s.written += 1;
}

fn drain() -> (Vec<TraceEvent>, u64) {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for shard in &ring().shards {
        if let Ok(mut s) = shard.lock() {
            dropped += s.written - s.events.len() as u64;
            s.written = 0;
            events.append(&mut s.events);
        }
    }
    events.sort_by_key(|e| (e.start_ns, e.id));
    (events, dropped)
}

/// Drains every collected event (sorted by start time) into a [`Trace`].
/// The ring is left empty; profiling stays in whatever state it was.
pub fn take_trace() -> Trace {
    let (events, dropped) = drain();
    let threads = thread_names().lock().map(|n| n.clone()).unwrap_or_default();
    Trace {
        events,
        dropped,
        threads,
    }
}

/// A drained timeline: completed spans plus thread metadata.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, sorted by start offset.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because their shard wrapped.
    pub dropped: u64,
    /// `(thread ordinal, thread name)` for every thread that recorded.
    pub threads: Vec<(u64, String)>,
}

impl Trace {
    /// Encodes the timeline as a Chrome trace-event JSON document
    /// (loadable in Perfetto / `chrome://tracing`): one `"X"` complete
    /// event per span (`ts`/`dur` in microseconds) and one `"M"`
    /// `thread_name` metadata event per thread.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in &self.threads {
            if !first {
                out.push(',');
            }
            first = false;
            let mut obj = JsonObject::new();
            obj.str("ph", "M")
                .str("name", "thread_name")
                .u64("pid", 1)
                .u64("tid", *tid);
            let mut args = JsonObject::new();
            args.str("name", name);
            obj.raw("args", &args.close());
            out.push_str(&obj.close());
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let mut obj = JsonObject::new();
            obj.str("ph", "X")
                .str("name", e.display_name())
                .str("cat", "mdl")
                .f64("ts", e.start_ns as f64 / 1e3)
                .f64("dur", e.dur_ns as f64 / 1e3)
                .u64("pid", 1)
                .u64("tid", e.tid);
            let mut args = JsonObject::new();
            args.u64("id", e.id).u64("parent", e.parent);
            if e.alloc_calls > 0 {
                args.u64("alloc_bytes", e.alloc_bytes)
                    .u64("alloc_calls", e.alloc_calls);
            }
            obj.raw("args", &args.close());
            out.push_str(&obj.close());
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":");
        out.push_str(&self.dropped.to_string());
        out.push_str("}}");
        out
    }

    /// Aggregates the timeline into a span tree: spans with the same
    /// display name under the same aggregated parent merge into one
    /// [`ProfileNode`] accumulating call count, inclusive time and
    /// allocation deltas. Returns a synthetic root whose children are
    /// the top-level spans.
    pub fn profile(&self) -> ProfileNode {
        // Instance tree first: index by id, children by parent id.
        let mut index = std::collections::HashMap::with_capacity(self.events.len());
        for (i, e) in self.events.iter().enumerate() {
            index.insert(e.id, i);
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.events.len()];
        let mut roots = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match index.get(&e.parent) {
                Some(&p) if e.parent != 0 => children[p].push(i),
                // Parent 0 or parent not in the trace (dropped or still
                // open when drained): treat as a root.
                _ => roots.push(i),
            }
        }
        let mut root = ProfileNode::new("root".to_string());
        for &r in &roots {
            root.total_ns += self.events[r].dur_ns;
            Self::merge_into(&mut root, self, &children, r);
        }
        root.count = 1;
        root.sort();
        root
    }

    fn merge_into(parent: &mut ProfileNode, trace: &Trace, children: &[Vec<usize>], i: usize) {
        let e = &trace.events[i];
        let name = e.display_name();
        let node = match parent.children.iter_mut().find(|c| c.name == name) {
            Some(n) => n,
            None => {
                parent.children.push(ProfileNode::new(name.to_string()));
                parent.children.last_mut().expect("just pushed")
            }
        };
        node.count += 1;
        node.total_ns += e.dur_ns;
        node.alloc_bytes += e.alloc_bytes;
        node.alloc_calls += e.alloc_calls;
        for &c in &children[i] {
            // Only same-thread children count against exclusive time:
            // parallel workers overlap their parent's wall clock.
            if trace.events[c].tid == e.tid {
                node.child_ns += trace.events[c].dur_ns;
            }
            Self::merge_into(node, trace, children, c);
        }
    }
}

/// One node of the aggregated self-profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    pub name: String,
    /// Number of span instances merged into this node.
    pub count: u64,
    /// Summed wall-clock time of those instances (inclusive).
    pub total_ns: u64,
    /// Summed inclusive time of *same-thread* children.
    pub child_ns: u64,
    pub alloc_bytes: u64,
    pub alloc_calls: u64,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: String) -> Self {
        ProfileNode {
            name,
            count: 0,
            total_ns: 0,
            child_ns: 0,
            alloc_bytes: 0,
            alloc_calls: 0,
            children: Vec::new(),
        }
    }

    /// Inclusive time minus same-thread child time. Cross-thread
    /// children (pool workers) are excluded from the subtraction, so a
    /// stage that fans out never reports negative self time.
    pub fn exclusive_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    fn sort(&mut self) {
        self.children.sort_by_key(|c| std::cmp::Reverse(c.total_ns));
        for c in &mut self.children {
            c.sort();
        }
    }

    /// Indented tree rendering (trailing newline included).
    pub fn render_pretty(&self) -> String {
        let mut out =
            String::from("profile: span tree (inclusive / exclusive wall, calls, alloc)\n");
        for c in &self.children {
            c.render_line(&mut out, 1);
        }
        out
    }

    fn render_line(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.name);
        out.push_str(&format!(
            "  n={}  incl={}  excl={}",
            self.count,
            crate::fmt_nanos(self.total_ns),
            crate::fmt_nanos(self.exclusive_ns()),
        ));
        if self.alloc_calls > 0 {
            out.push_str(&format!(
                "  alloc={} ({} calls)",
                fmt_bytes(self.alloc_bytes),
                self.alloc_calls
            ));
        }
        out.push('\n');
        for c in &self.children {
            c.render_line(out, depth + 1);
        }
    }

    /// Nested JSON object rendering (single line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("name", &self.name)
            .u64("count", self.count)
            .u64("inclusive_ns", self.total_ns)
            .u64("exclusive_ns", self.exclusive_ns())
            .u64("alloc_bytes", self.alloc_bytes)
            .u64("alloc_calls", self.alloc_calls);
        let mut kids = String::from("[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                kids.push(',');
            }
            kids.push_str(&c.to_json());
        }
        kids.push(']');
        obj.raw("children", &kids);
        obj.close()
    }
}

/// Formats a byte count for humans (`512B`, `13.4KiB`, `2.1MiB`).
pub fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let bf = b as f64;
    if b < 1024 {
        format!("{b}B")
    } else if bf < KIB * KIB {
        format!("{:.1}KiB", bf / KIB)
    } else if bf < KIB * KIB * KIB {
        format!("{:.1}MiB", bf / (KIB * KIB))
    } else {
        format!("{:.2}GiB", bf / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reset_profiling_off() {
        stop_profiling();
        let _ = drain();
        crate::set_enabled(false);
    }

    #[test]
    fn spans_nest_and_record_parent_ids() {
        let _guard = crate::testing::guard();
        set_profiling(true);
        {
            let outer = crate::span("profile.test.outer");
            {
                let inner = crate::span("profile.test.inner");
                inner.finish();
            }
            outer.finish();
        }
        let trace = take_trace();
        reset_profiling_off();
        let inner = trace
            .events
            .iter()
            .find(|e| e.name == "profile.test.inner")
            .expect("inner recorded");
        let outer = trace
            .events
            .iter()
            .find(|e| e.name == "profile.test.outer")
            .expect("outer recorded");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.tid, outer.tid);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn pool_workers_attribute_to_calling_span() {
        let _guard = crate::testing::guard();
        set_profiling(true);
        let caller_id;
        {
            let span = crate::span("profile.test.fanout");
            let pool = crate::ThreadPool::new(2);
            let _ = pool.run(8, |j| {
                let s = crate::span("profile.test.job");
                std::hint::black_box(j * j);
                s.finish();
                j
            });
            caller_id = trace_id_of(&span);
            span.finish();
        }
        let trace = take_trace();
        reset_profiling_off();
        let jobs: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "profile.test.job")
            .collect();
        assert_eq!(jobs.len(), 8);
        let fanout = trace
            .events
            .iter()
            .find(|e| e.name == "profile.test.fanout")
            .expect("fanout recorded");
        assert_eq!(fanout.id, caller_id);
        for j in &jobs {
            // Jobs run either inside a pool.worker span (which parents
            // to the fanout span) or, for leftover serial jobs, under
            // the fanout span directly.
            let parent = trace
                .events
                .iter()
                .find(|e| e.id == j.parent)
                .expect("job parent recorded");
            assert!(
                parent.id == fanout.id || parent.parent == fanout.id,
                "job parent chain must reach the fanout span"
            );
        }
        // At least one worker span on a different thread.
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.name == "pool.worker" && e.tid != fanout.tid),
            "workers record on their own threads"
        );
    }

    fn trace_id_of(span: &crate::Span) -> u64 {
        span.id()
    }

    #[test]
    fn ring_wraps_and_counts_dropped() {
        let _guard = crate::testing::guard();
        set_profiling(true);
        let first = crate::span("profile.test.wrap.first");
        let first_id = first.id();
        first.finish();
        let total = SHARD_CAP + 100;
        for _ in 0..total {
            crate::span("profile.test.wrap").finish();
        }
        let last = crate::span("profile.test.wrap.last");
        let last_id = last.id();
        last.finish();
        let trace = take_trace();
        reset_profiling_off();
        // Single thread → single shard → capacity SHARD_CAP.
        assert_eq!(trace.events.len(), SHARD_CAP);
        assert_eq!(trace.dropped, 102);
        // Both ends of the run survive the wrap: the earliest span is
        // in the pinned half, the latest in the ring.
        assert!(trace.events.iter().any(|e| e.id == first_id));
        assert!(trace.events.iter().any(|e| e.id == last_id));
    }

    #[test]
    fn chrome_json_is_valid_and_has_thread_metadata() {
        let _guard = crate::testing::guard();
        set_profiling(true);
        let mut span = crate::span("profile.test.chrome");
        span.trace_label("pipeline.\"quoted\"");
        span.finish();
        let trace = take_trace();
        reset_profiling_off();
        let json = trace.to_chrome_json();
        let doc = crate::json::parse(&json).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some("pipeline.\"quoted\"")
        }));
    }

    #[test]
    fn profile_tree_merges_and_computes_exclusive() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    id: 1,
                    parent: 0,
                    name: "stage",
                    label: None,
                    tid: 1,
                    start_ns: 0,
                    dur_ns: 100,
                    alloc_bytes: 64,
                    alloc_calls: 2,
                },
                TraceEvent {
                    id: 2,
                    parent: 1,
                    name: "work",
                    label: None,
                    tid: 1,
                    start_ns: 10,
                    dur_ns: 30,
                    alloc_bytes: 0,
                    alloc_calls: 0,
                },
                TraceEvent {
                    id: 3,
                    parent: 1,
                    name: "work",
                    label: None,
                    tid: 2, // cross-thread: excluded from exclusive calc
                    start_ns: 10,
                    dur_ns: 90,
                    alloc_bytes: 0,
                    alloc_calls: 0,
                },
            ],
            dropped: 0,
            threads: vec![(1, "main".into()), (2, "thread-2".into())],
        };
        let root = trace.profile();
        assert_eq!(root.children.len(), 1);
        let stage = &root.children[0];
        assert_eq!(stage.name, "stage");
        assert_eq!(stage.count, 1);
        assert_eq!(stage.total_ns, 100);
        assert_eq!(stage.exclusive_ns(), 70, "only same-tid child subtracts");
        let work = &stage.children[0];
        assert_eq!(work.count, 2);
        assert_eq!(work.total_ns, 120);
        let json = root.to_json();
        crate::json::parse(&json).expect("profile json parses");
        assert!(root.render_pretty().contains("stage"));
    }

    #[test]
    fn bytes_format() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(13_721), "13.4KiB");
        assert_eq!(fmt_bytes(2_202_009), "2.1MiB");
    }
}
