//! Optional counting global allocator: atomic alloc/dealloc/peak
//! counters behind a relaxed-load gate.
//!
//! Binaries opt in by installing the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mdl_obs::CountingAllocator = mdl_obs::CountingAllocator;
//! ```
//!
//! With tracking off (the default) every allocation pays exactly one
//! relaxed atomic load on top of the system allocator. With
//! [`set_mem_tracking`]`(true)` each alloc/dealloc updates five relaxed
//! counters: total bytes allocated, total freed, call count, live bytes
//! and the high-water mark ([`MemStats::peak_bytes`], maintained with a
//! `fetch_max` so it is exact under concurrency).
//!
//! Spans sample the totals at open/close (see [`crate::Span`]), so when
//! profiling is on every pipeline stage reports the bytes it allocated
//! alongside its wall time. Library code never needs this module; only
//! binaries that install the wrapper get non-zero numbers, and
//! [`set_mem_tracking`] reports whether the wrapper is actually
//! installed so callers can tell "zero allocations" from "not
//! measuring".
//!
//! This is the one intentional `unsafe` in the workspace (every other
//! crate carries `#![forbid(unsafe_code)]`): a `GlobalAlloc` impl is
//! unsafe by signature, and the impl below only forwards to
//! [`std::alloc::System`] with the caller's own layout.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
/// Signed: memory allocated before tracking was enabled may be freed
/// after, driving the live count below the baseline.
static CURRENT: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

/// A `System`-forwarding allocator that counts when tracking is on.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

#[inline]
fn count_alloc(size: usize) {
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn count_free(size: usize) {
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && TRACKING.load(Ordering::Relaxed) {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && TRACKING.load(Ordering::Relaxed) {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if TRACKING.load(Ordering::Relaxed) {
            count_free(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && TRACKING.load(Ordering::Relaxed) {
            count_free(layout.size());
            count_alloc(new_size);
        }
        p
    }
}

/// Point-in-time allocator statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Total bytes handed out since tracking was enabled.
    pub allocated_bytes: u64,
    /// Total bytes returned.
    pub freed_bytes: u64,
    /// Number of allocation calls.
    pub alloc_calls: u64,
    /// Live bytes (allocated − freed, clamped at 0).
    pub current_bytes: u64,
    /// High-water mark of live bytes since tracking was enabled (or the
    /// last [`reset_mem_peak`]).
    pub peak_bytes: u64,
}

/// Turns allocation counting on or off. Returns whether the counting
/// allocator is actually installed as the global allocator (detected
/// with a probe allocation on enable) — callers that want per-stage
/// memory numbers should warn when this is `false`.
pub fn set_mem_tracking(on: bool) -> bool {
    if !on {
        TRACKING.store(false, Ordering::Relaxed);
        return INSTALLED.load(Ordering::Relaxed);
    }
    TRACKING.store(true, Ordering::Relaxed);
    if !INSTALLED.load(Ordering::Relaxed) {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        drop(std::hint::black_box(Box::new(0xA110Cu64)));
        if ALLOC_CALLS.load(Ordering::Relaxed) > before {
            INSTALLED.store(true, Ordering::Relaxed);
        }
    }
    INSTALLED.load(Ordering::Relaxed)
}

/// Whether allocation counting is currently on.
#[inline]
pub fn mem_tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Total bytes allocated so far (the counter spans sample).
#[inline]
pub(crate) fn allocated_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Snapshot of the allocator counters.
pub fn mem_stats() -> MemStats {
    MemStats {
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        alloc_calls: ALLOC_CALLS.load(Ordering::Relaxed),
        current_bytes: CURRENT.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Resets the high-water mark to the current live count, so a caller
/// can measure the peak of one region (reset, run, read).
pub fn reset_mem_peak() {
    let live = CURRENT.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the wrapper, so the counters
    // never move; what can be tested here is the gating logic and the
    // install probe's negative result.
    #[test]
    fn tracking_without_install_reports_not_installed() {
        let _guard = crate::testing::guard();
        let installed = set_mem_tracking(true);
        assert!(!installed, "unit tests run on the system allocator");
        assert!(mem_tracking());
        set_mem_tracking(false);
        assert!(!mem_tracking());
    }

    #[test]
    fn counting_helpers_track_peak() {
        let _guard = crate::testing::guard();
        let base = mem_stats();
        count_alloc(1000);
        count_alloc(500);
        count_free(1000);
        count_alloc(200);
        let s = mem_stats();
        assert_eq!(s.allocated_bytes - base.allocated_bytes, 1700);
        assert_eq!(s.freed_bytes - base.freed_bytes, 1000);
        assert_eq!(s.alloc_calls - base.alloc_calls, 3);
        assert!(s.peak_bytes >= 1500, "peak saw both live allocations");
        reset_mem_peak();
        assert_eq!(mem_stats().peak_bytes, mem_stats().current_bytes);
        // Restore the shared counters' invariant for other tests.
        count_free(700);
    }
}
