//! Property test: the Chrome trace-event JSON export parses as valid
//! JSON for arbitrary span nestings and labels — including labels full
//! of quotes, backslashes and control characters, which must survive
//! escaping.

use proptest::prelude::*;

/// Labels drawn from the characters most likely to break JSON encoding.
fn label_strategy() -> impl Strategy<Value = String> {
    let chars = prop::sample::select(vec![
        'a', 'Z', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'π', '🦀', '{', '}', '[', ']',
        ',', ':', '/',
    ]);
    prop::collection::vec(chars, 0..12).prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn chrome_trace_parses_for_arbitrary_nestings(
        ops in prop::collection::vec((0u8..3u8, label_strategy()), 1..40)
    ) {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::set_profiling(true);
        let mut open: Vec<mdl_obs::Span> = Vec::new();
        let mut created = 0usize;
        for (op, label) in &ops {
            match op {
                0 => {
                    let mut s = mdl_obs::span("prop.trace.nested");
                    s.trace_label(label);
                    open.push(s);
                    created += 1;
                }
                1 => {
                    if let Some(s) = open.pop() {
                        s.finish();
                    }
                }
                _ => {
                    let mut s = mdl_obs::span("prop.trace.leaf");
                    s.trace_label(label);
                    s.finish();
                    created += 1;
                }
            }
        }
        while let Some(s) = open.pop() {
            s.finish();
        }
        let trace = mdl_obs::take_trace();
        mdl_obs::set_enabled(false);
        mdl_obs::reset();

        prop_assert_eq!(trace.events.len(), created);
        let json = trace.to_chrome_json();
        let doc = mdl_obs::json::parse(&json);
        prop_assert!(doc.is_ok(), "trace must parse as JSON: {:?}", doc.err());
        let doc = doc.unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array present");
        let complete = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        prop_assert_eq!(complete, created);
        // Every complete event carries id, parent, tid, ts, dur.
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
                continue;
            }
            prop_assert!(e.get("args").and_then(|a| a.get("id")).is_some());
            prop_assert!(e.get("args").and_then(|a| a.get("parent")).is_some());
            prop_assert!(e.get("tid").is_some());
            prop_assert!(e.get("ts").is_some());
            prop_assert!(e.get("dur").is_some());
        }
    }
}
