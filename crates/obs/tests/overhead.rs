//! The disabled fast path must stay near-free: with observability off,
//! no subscribers and no allocator tracking, counters, failpoints and
//! point events are one relaxed atomic load each, and a span is two
//! clock reads. Profiling must never tax production solves.
//!
//! The per-op bound defaults to a CI-noise-tolerant 25 ns (the smoke
//! machine measures ~1–2 ns; override with `MDL_NOOP_NS_BOUND`). The
//! measured values are also emitted by `mdl-bench report` as
//! `obs.noop.*` metrics, where the regression gate watches them.

use std::time::Instant;

fn per_op<F: FnMut()>(n: u64, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    t0.elapsed().as_nanos() as f64 / n as f64
}

#[test]
fn disabled_fast_paths_are_near_free() {
    let _guard = mdl_obs::testing::guard();
    mdl_obs::set_enabled(false);
    mdl_obs::failpoint::clear();
    let bound: f64 = std::env::var("MDL_NOOP_NS_BOUND")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);

    const N: u64 = 5_000_000;
    let c = mdl_obs::counter("overhead.test.counter");
    let counter_ns = per_op(N, || std::hint::black_box(&c).inc());
    let failpoint_ns = per_op(N, || {
        std::hint::black_box(mdl_obs::failpoint::hit("overhead.test.fp"));
    });
    let point_ns = per_op(N, || {
        mdl_obs::point("overhead.test.point", || {
            panic!("field closure must not run while tracing is off")
        });
    });
    // Spans always measure (two `Instant::now` calls even when
    // disabled), so they get a wider envelope than the pure gates.
    let span_bound = bound.max(10.0) * 20.0;
    let span_ns = per_op(200_000, || {
        mdl_obs::span("overhead.test.span").finish();
    });

    eprintln!(
        "noop overhead per op: counter={counter_ns:.2}ns failpoint={failpoint_ns:.2}ns \
         point={point_ns:.2}ns span={span_ns:.2}ns (bounds {bound}ns / {span_bound}ns)"
    );
    assert!(c.get() == 0, "disabled counter must not count");
    assert!(
        counter_ns < bound,
        "disabled counter inc took {counter_ns:.2}ns/op (bound {bound}ns)"
    );
    assert!(
        failpoint_ns < bound,
        "unconfigured failpoint hit took {failpoint_ns:.2}ns/op (bound {bound}ns)"
    );
    assert!(
        point_ns < bound,
        "untraced point event took {point_ns:.2}ns/op (bound {bound}ns)"
    );
    assert!(
        span_ns < span_bound,
        "disabled span took {span_ns:.2}ns/op (bound {span_bound}ns)"
    );
}
