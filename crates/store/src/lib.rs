//! `mdl-store` — versioned, checksummed binary serialization and an
//! on-disk content-addressed artifact store for the mdlump pipeline.
//!
//! The paper this repository reproduces (Derisavi, Kemper & Sanders,
//! DSN 2005) argues that the lumped matrix diagram is a *reusable
//! artifact*: compositional lumping is paid once, then many MRP measures
//! are answered against the small quotient. This crate makes that reuse
//! literal. Every intermediate the pipeline produces — reachable-set
//! MDDs, matrix diagrams, partitions, CSR matrices, dense vectors,
//! solver solutions, run reports, compiled kernels, solver checkpoints —
//! has a canonical binary encoding ([`Artifact`]) inside a
//! self-describing container (magic `MDLS`, format version, kind tag,
//! payload length, FNV-1a payload hash; see [`artifact`]), and the
//! [`Store`] persists them in a directory keyed by 64-bit content
//! hashes.
//!
//! Design rules:
//!
//! * **Zero dependencies** beyond the workspace's own leaf crates — the
//!   build environment is offline, and a storage format should not churn
//!   with serde versions anyway.
//! * **Fixed endianness** (little) and `f64`s as IEEE-754 bit patterns:
//!   encode∘decode is bit-exact identity, on any machine.
//! * **Never panic on input**: truncated, corrupted, or future-versioned
//!   bytes decode to a structured [`StoreError`]. Payload decoders feed
//!   each type's validating constructor, so a file that *parses* but
//!   describes an impossible structure is rejected too.
//! * **Content-addressed**: callers derive keys by hashing stage inputs
//!   with [`Fnv1a`]; the store never guesses at freshness — a key either
//!   exists or it does not, and invalidation is simply a different key.
//!
//! ```
//! use mdl_store::{Artifact, Store};
//!
//! let dir = std::env::temp_dir().join(format!("mdl-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir)?;
//! let pi: Vec<f64> = vec![0.25, 0.75];
//! store.save(0xfeed, &pi)?;
//! assert_eq!(store.load::<Vec<f64>>(0xfeed)?, Some(pi));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), mdl_store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod bytes;
mod codecs;
mod disk;
mod error;
mod hash;
pub mod image;

pub use artifact::{validate_frame, Artifact, Codec, FORMAT_VERSION, FRAME_OVERHEAD, MAGIC};
pub use bytes::{ByteReader, ByteWriter};
pub use codecs::Checkpoint;
pub use disk::Store;
pub use error::StoreError;
pub use hash::Fnv1a;
pub use image::{
    IntervalVector, IntervalVectorImage, KernelImage, KernelIntervalImage, MappedArtifact, MdImage,
    MddImage,
};
