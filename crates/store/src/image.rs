//! Arena-image artifact kinds: containers whose payload **is** an
//! [`mdl_arena`] section image.
//!
//! The classic codecs ([`crate::Artifact`] kinds 1–9) decode element by
//! element into freshly allocated structures. The kinds here skip that:
//! the payload bytes are the exact slab layout the in-memory types use
//! ([`Mdd`], [`Md`], [`CompiledParts`]), so a reader can either
//!
//! * **copy-decode** — [`Codec::decode`] parses the section directory
//!   and copies each section into an owned slab — or
//! * **borrow in place** — [`crate::Store::map`] `mmap(2)`s the file,
//!   frame-checks it once, and hands each section to
//!   [`MappedArtifact::from_image`] with [`SlabSource::Mapped`], so the
//!   slabs are zero-copy views into the shared read-only region and
//!   concurrent workers (threads *or processes*) share one physical
//!   mapping.
//!
//! Both paths produce values that compare equal and compile/solve
//! bit-identically; the mapped path just skips the allocation and copy.
//! Image artifacts use the `mdlm` file extension (see
//! [`Codec::EXTENSION`]) so their writer sidecars get mapping-aware
//! names.

use mdl_arena::{ImageView, ImageWriter, SlabSource};
use mdl_md::{CompiledParts, Md};
use mdl_mdd::Mdd;

use crate::artifact::Codec;
use crate::bytes::{ByteReader, ByteWriter};
use crate::StoreError;

/// An artifact whose payload is an arena image, reconstructible from a
/// parsed [`ImageView`] with either slab source. This is the bound
/// [`crate::Store::map`] requires: it is what makes zero-copy opens
/// possible.
pub trait MappedArtifact: Codec {
    /// Writes the image sections of this artifact.
    fn write_image(&self, w: &mut ImageWriter);

    /// Rebuilds the artifact from a parsed image, borrowing slabs from
    /// the backing mapping when `source` is [`SlabSource::Mapped`] (and
    /// silently copying when a section cannot be borrowed).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupted`] when the image is structurally invalid.
    fn from_image(view: &ImageView<'_>, source: SlabSource<'_>) -> Result<Self, StoreError>;
}

fn corrupt(e: impl std::fmt::Display) -> StoreError {
    StoreError::corrupted(e.to_string())
}

macro_rules! image_artifact {
    ($(#[$doc:meta])* $wrapper:ident($inner:ty), kind: $kind:expr, name: $name:expr,
     read: $read:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $wrapper(pub $inner);

        impl Codec for $wrapper {
            const KIND: u16 = $kind;
            const NAME: &'static str = $name;
            const EXTENSION: &'static str = "mdlm";

            fn encode(&self, w: &mut ByteWriter) {
                let mut iw = ImageWriter::new();
                self.0.write_image(&mut iw);
                w.bytes(&iw.finish());
            }

            fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
                let n = r.remaining();
                let bytes = r.bytes(n)?;
                let view = ImageView::parse(bytes).map_err(corrupt)?;
                Self::from_image(&view, SlabSource::Copy)
            }
        }

        impl MappedArtifact for $wrapper {
            fn write_image(&self, w: &mut ImageWriter) {
                self.0.write_image(w);
            }

            fn from_image(
                view: &ImageView<'_>,
                source: SlabSource<'_>,
            ) -> Result<Self, StoreError> {
                ($read)(view, source).map($wrapper)
            }
        }

        impl From<$inner> for $wrapper {
            fn from(inner: $inner) -> Self {
                $wrapper(inner)
            }
        }

        impl $wrapper {
            /// Unwraps the inner value.
            pub fn into_inner(self) -> $inner {
                self.0
            }
        }
    };
}

image_artifact!(
    /// An MDD stored as its arena image (kind 10, `mddimg-*.mdlm`).
    MddImage(Mdd),
    kind: 10,
    name: "mddimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        Mdd::read_image(view, source).map_err(corrupt)
    }
);

image_artifact!(
    /// A matrix diagram stored as its arena image (kind 11,
    /// `mdimg-*.mdlm`).
    MdImage(Md),
    kind: 11,
    name: "mdimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        Md::read_image(view, source).map_err(corrupt)
    }
);

image_artifact!(
    /// Compiled-kernel parts stored as their arena image (kind 12,
    /// `kernelimg-*.mdlm`). The mapped open path hands the slabs to
    /// `CompiledMdMatrix::from_parts` untouched, so the expensive apply
    /// arrays are never copied — only the (small) execution plans are
    /// rebuilt per open.
    KernelImage(CompiledParts),
    kind: 12,
    name: "kernelimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        CompiledParts::read_image(view, source).map_err(corrupt)
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;

    fn sample_mdd() -> Mdd {
        Mdd::from_tuples(
            vec![2, 3],
            vec![vec![0, 0], vec![0, 2], vec![1, 1], vec![1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn mdd_image_round_trips_through_container() {
        let img = MddImage(sample_mdd());
        let bytes = img.to_bytes();
        let back = MddImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.0.sizes(), img.0.sizes());
        for level in 0..img.0.num_levels() {
            assert_eq!(
                back.0.raw_level_children(level),
                img.0.raw_level_children(level)
            );
        }
        assert!(!back.0.is_mapped(), "copy decode owns its slabs");
    }

    #[test]
    fn image_kinds_do_not_cross_decode() {
        let img = MddImage(sample_mdd());
        let bytes = img.to_bytes();
        assert!(matches!(
            MdImage::from_bytes(&bytes),
            Err(StoreError::WrongKind {
                found: 10,
                expected: 11
            })
        ));
    }

    #[test]
    fn corrupt_image_payload_is_rejected() {
        let img = MddImage(sample_mdd());
        let mut bytes = img.to_bytes();
        // Flip a payload byte and fix nothing: checksum catches it.
        bytes[20] ^= 0xff;
        assert!(MddImage::from_bytes(&bytes).is_err());
    }
}
