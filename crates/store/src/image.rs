//! Arena-image artifact kinds: containers whose payload **is** an
//! [`mdl_arena`] section image.
//!
//! The classic codecs ([`crate::Artifact`] kinds 1–9) decode element by
//! element into freshly allocated structures. The kinds here skip that:
//! the payload bytes are the exact slab layout the in-memory types use
//! ([`Mdd`], [`Md`], [`CompiledParts`]), so a reader can either
//!
//! * **copy-decode** — [`Codec::decode`] parses the section directory
//!   and copies each section into an owned slab — or
//! * **borrow in place** — [`crate::Store::map`] `mmap(2)`s the file,
//!   frame-checks it once, and hands each section to
//!   [`MappedArtifact::from_image`] with [`SlabSource::Mapped`], so the
//!   slabs are zero-copy views into the shared read-only region and
//!   concurrent workers (threads *or processes*) share one physical
//!   mapping.
//!
//! Both paths produce values that compare equal and compile/solve
//! bit-identically; the mapped path just skips the allocation and copy.
//! Image artifacts use the `mdlm` file extension (see
//! [`Codec::EXTENSION`]) so their writer sidecars get mapping-aware
//! names.

use mdl_arena::{ImageView, ImageWriter, Interval, Slab, SlabSource};
use mdl_md::{CompiledParts, Md};
use mdl_mdd::Mdd;

use crate::artifact::Codec;
use crate::bytes::{ByteReader, ByteWriter};
use crate::StoreError;

/// An artifact whose payload is an arena image, reconstructible from a
/// parsed [`ImageView`] with either slab source. This is the bound
/// [`crate::Store::map`] requires: it is what makes zero-copy opens
/// possible.
pub trait MappedArtifact: Codec {
    /// Writes the image sections of this artifact.
    fn write_image(&self, w: &mut ImageWriter);

    /// Rebuilds the artifact from a parsed image, borrowing slabs from
    /// the backing mapping when `source` is [`SlabSource::Mapped`] (and
    /// silently copying when a section cannot be borrowed).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupted`] when the image is structurally invalid.
    fn from_image(view: &ImageView<'_>, source: SlabSource<'_>) -> Result<Self, StoreError>;
}

fn corrupt(e: impl std::fmt::Display) -> StoreError {
    StoreError::corrupted(e.to_string())
}

macro_rules! image_artifact {
    ($(#[$doc:meta])* $wrapper:ident($inner:ty), kind: $kind:expr, name: $name:expr,
     read: $read:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $wrapper(pub $inner);

        impl Codec for $wrapper {
            const KIND: u16 = $kind;
            const NAME: &'static str = $name;
            const EXTENSION: &'static str = "mdlm";

            fn encode(&self, w: &mut ByteWriter) {
                let mut iw = ImageWriter::new();
                self.0.write_image(&mut iw);
                w.bytes(&iw.finish());
            }

            fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
                let n = r.remaining();
                let bytes = r.bytes(n)?;
                let view = ImageView::parse(bytes).map_err(corrupt)?;
                Self::from_image(&view, SlabSource::Copy)
            }
        }

        impl MappedArtifact for $wrapper {
            fn write_image(&self, w: &mut ImageWriter) {
                self.0.write_image(w);
            }

            fn from_image(
                view: &ImageView<'_>,
                source: SlabSource<'_>,
            ) -> Result<Self, StoreError> {
                ($read)(view, source).map($wrapper)
            }
        }

        impl From<$inner> for $wrapper {
            fn from(inner: $inner) -> Self {
                $wrapper(inner)
            }
        }

        impl $wrapper {
            /// Unwraps the inner value.
            pub fn into_inner(self) -> $inner {
                self.0
            }
        }
    };
}

image_artifact!(
    /// An MDD stored as its arena image (kind 10, `mddimg-*.mdlm`).
    MddImage(Mdd),
    kind: 10,
    name: "mddimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        Mdd::read_image(view, source).map_err(corrupt)
    }
);

image_artifact!(
    /// A matrix diagram stored as its arena image (kind 11,
    /// `mdimg-*.mdlm`).
    MdImage(Md),
    kind: 11,
    name: "mdimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        Md::read_image(view, source).map_err(corrupt)
    }
);

image_artifact!(
    /// Compiled-kernel parts stored as their arena image (kind 12,
    /// `kernelimg-*.mdlm`). The mapped open path hands the slabs to
    /// `CompiledMdMatrix::from_parts` untouched, so the expensive apply
    /// arrays are never copied — only the (small) execution plans are
    /// rebuilt per open.
    KernelImage(CompiledParts),
    kind: 12,
    name: "kernelimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        CompiledParts::read_image(view, source).map_err(corrupt)
    }
);

/// Section tag for the single interval slab of an [`IntervalVector`].
const TAG_INTERVAL_VALUES: u32 = 1;

/// A dense vector of outward-rounded [`Interval`]s backed by a single
/// slab, so certified per-state bound vectors (the `h̲`/`h̄` envelopes a
/// `--bounds` solve converges to) persist and re-open exactly like the
/// scalar artifacts — including zero-copy via [`crate::Store::map`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalVector(Slab<Interval>);

impl IntervalVector {
    /// Wraps an owned vector of intervals.
    pub fn new(values: Vec<Interval>) -> IntervalVector {
        IntervalVector(values.into())
    }

    /// The interval entries.
    pub fn values(&self) -> &[Interval] {
        &self.0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the slab borrows a shared mapping (true only for values
    /// obtained through [`crate::Store::map`]).
    pub fn is_mapped(&self) -> bool {
        self.0.is_mapped()
    }

    fn write_image(&self, w: &mut ImageWriter) {
        w.put_interval(TAG_INTERVAL_VALUES, &self.0);
    }

    fn read_image(view: &ImageView<'_>, source: SlabSource<'_>) -> Result<Self, StoreError> {
        view.slab_interval(TAG_INTERVAL_VALUES, source)
            .map(IntervalVector)
            .map_err(corrupt)
    }
}

image_artifact!(
    /// An interval vector stored as its arena image (kind 14,
    /// `intervalimg-*.mdlm`).
    IntervalVectorImage(IntervalVector),
    kind: 14,
    name: "intervalimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        IntervalVector::read_image(view, source)
    }
);

image_artifact!(
    /// Interval-weighted compiled-kernel parts stored as their arena
    /// image (kind 15, `kernelivimg-*.mdlm`): the same section layout as
    /// kind 12 with the scale/coefficient sections holding `[lo, hi]`
    /// pairs, as written by the `Weight` impl for `Interval`. This is the
    /// artifact a `--bounds` run persists so re-solves skip the envelope
    /// compile.
    KernelIntervalImage(CompiledParts<Interval>),
    kind: 15,
    name: "kernelivimg",
    read: |view: &ImageView<'_>, source: SlabSource<'_>| {
        CompiledParts::<Interval>::read_image(view, source).map_err(corrupt)
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;

    fn sample_mdd() -> Mdd {
        Mdd::from_tuples(
            vec![2, 3],
            vec![vec![0, 0], vec![0, 2], vec![1, 1], vec![1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn mdd_image_round_trips_through_container() {
        let img = MddImage(sample_mdd());
        let bytes = img.to_bytes();
        let back = MddImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.0.sizes(), img.0.sizes());
        for level in 0..img.0.num_levels() {
            assert_eq!(
                back.0.raw_level_children(level),
                img.0.raw_level_children(level)
            );
        }
        assert!(!back.0.is_mapped(), "copy decode owns its slabs");
    }

    #[test]
    fn image_kinds_do_not_cross_decode() {
        let img = MddImage(sample_mdd());
        let bytes = img.to_bytes();
        assert!(matches!(
            MdImage::from_bytes(&bytes),
            Err(StoreError::WrongKind {
                found: 10,
                expected: 11
            })
        ));
    }

    #[test]
    fn corrupt_image_payload_is_rejected() {
        let img = MddImage(sample_mdd());
        let mut bytes = img.to_bytes();
        // Flip a payload byte and fix nothing: checksum catches it.
        bytes[20] ^= 0xff;
        assert!(MddImage::from_bytes(&bytes).is_err());
    }

    fn sample_intervals() -> Vec<Interval> {
        vec![
            Interval { lo: 0.25, hi: 0.25 },
            Interval { lo: -1.5, hi: 2.75 },
            Interval {
                lo: f64::MIN_POSITIVE,
                hi: 1.0 + f64::EPSILON,
            },
            Interval { lo: -0.0, hi: 0.0 },
        ]
    }

    #[test]
    fn interval_vector_round_trips_through_container() {
        let img = IntervalVectorImage(IntervalVector::new(sample_intervals()));
        let back = IntervalVectorImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back.0.len(), 4);
        assert!(!back.0.is_empty());
        for (a, b) in back.0.values().iter().zip(img.0.values()) {
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
        assert!(!back.0.is_mapped(), "copy decode owns its slab");
    }

    #[test]
    fn empty_interval_vector_round_trips() {
        let img = IntervalVectorImage(IntervalVector::new(Vec::new()));
        let back = IntervalVectorImage::from_bytes(&img.to_bytes()).unwrap();
        assert!(back.0.is_empty());
        assert_eq!(back.0.len(), 0);
    }

    #[test]
    fn interval_kinds_do_not_cross_decode() {
        let img = IntervalVectorImage(IntervalVector::new(sample_intervals()));
        let bytes = img.to_bytes();
        assert!(matches!(
            KernelIntervalImage::from_bytes(&bytes),
            Err(StoreError::WrongKind {
                found: 14,
                expected: 15
            })
        ));
        // And the interval vector rejects a scalar image's kind too.
        let mdd = MddImage(sample_mdd()).to_bytes();
        assert!(matches!(
            IntervalVectorImage::from_bytes(&mdd),
            Err(StoreError::WrongKind {
                found: 10,
                expected: 14
            })
        ));
    }

    #[test]
    fn corrupt_interval_payload_is_rejected() {
        let img = IntervalVectorImage(IntervalVector::new(sample_intervals()));
        let clean = img.to_bytes();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x41;
            assert!(
                IntervalVectorImage::from_bytes(&bytes).is_err(),
                "flip at byte {i} decoded successfully"
            );
        }
    }
}
