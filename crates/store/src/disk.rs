//! The on-disk content-addressed artifact store.
//!
//! One directory, one file per artifact: `<name>-<key as hex>.mdls`,
//! where `name` is the artifact's [`Artifact::NAME`] and `key` is the
//! caller's cache key (a 64-bit content hash of the stage's inputs).
//! Writes go through a temp file + rename so a crash mid-write never
//! leaves a half-written artifact under a valid name; reads validate the
//! full container (magic, version, kind, checksum) before decoding.
//!
//! Obs counters: `store.hit`, `store.miss` and `store.write_bytes`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::artifact::Artifact;
use crate::StoreError;

/// A directory of serialized artifacts, addressed by `(kind, key)`.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = dir.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file an artifact of type `A` under `key` lives at.
    pub fn path_for<A: Artifact>(&self, key: u64) -> PathBuf {
        self.root.join(format!("{}-{key:016x}.mdls", A::NAME))
    }

    /// Whether an artifact of type `A` exists under `key` (without
    /// reading or validating it).
    pub fn contains<A: Artifact>(&self, key: u64) -> bool {
        self.path_for::<A>(key).exists()
    }

    /// Loads the artifact stored under `key`, if any.
    ///
    /// A missing file is `Ok(None)` (a cache miss, counted on
    /// `store.miss`); a present, valid file is `Ok(Some(_))` (counted on
    /// `store.hit`). A present but unreadable/corrupt file is an error —
    /// callers deciding to treat that as a miss must do so explicitly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure, any decode [`StoreError`] on
    /// invalid content.
    pub fn load<A: Artifact>(&self, key: u64) -> Result<Option<A>, StoreError> {
        let path = self.path_for::<A>(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                mdl_obs::counter("store.miss").inc();
                attributed_point("store.miss", A::NAME, key);
                return Ok(None);
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let artifact = A::from_bytes(&bytes)?;
        mdl_obs::counter("store.hit").inc();
        attributed_point("store.hit", A::NAME, key);
        Ok(Some(artifact))
    }

    /// Serializes and stores an artifact under `key`, atomically
    /// (temp file + rename). Overwrites any previous artifact under the
    /// same key. The serialized size lands on `store.write_bytes`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    pub fn save<A: Artifact>(&self, key: u64, artifact: &A) -> Result<(), StoreError> {
        let path = self.path_for::<A>(key);
        let bytes = artifact.to_bytes();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        mdl_obs::counter("store.write_bytes").add(bytes.len() as u64);
        Ok(())
    }

    /// Removes the artifact stored under `key`, if present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on removal failure (missing files are fine).
    pub fn remove<A: Artifact>(&self, key: u64) -> Result<(), StoreError> {
        let path = self.path_for::<A>(key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }
}

/// Emits a tracing point for a cache hit/miss carrying stage
/// attribution: which span (pipeline stage) was active when the store
/// was consulted. No-op unless tracing is on.
fn attributed_point(name: &'static str, artifact: &'static str, key: u64) {
    mdl_obs::point(name, || {
        let mut fields: Vec<(&'static str, mdl_obs::Value)> = vec![
            ("artifact", artifact.into()),
            ("key", format!("{key:016x}").into()),
        ];
        if let Some(ctx) = mdl_obs::current_span() {
            fields.push(("span", ctx.name.into()));
            fields.push(("span_id", ctx.id.into()));
        }
        fields
    });
}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdl-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_remove_round_trip() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_enabled(true);
        let store = Store::open(temp_dir("rt")).unwrap();
        let v: Vec<f64> = vec![1.0, -0.0, f64::MIN_POSITIVE];
        assert_eq!(store.load::<Vec<f64>>(7).unwrap(), None);
        store.save(7, &v).unwrap();
        assert!(store.contains::<Vec<f64>>(7));
        assert_eq!(store.load::<Vec<f64>>(7).unwrap(), Some(v));
        store.remove::<Vec<f64>>(7).unwrap();
        assert_eq!(store.load::<Vec<f64>>(7).unwrap(), None);

        let report = mdl_obs::snapshot();
        let get = |n: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == n)
                .map_or(0, |c| c.value)
        };
        assert_eq!(get("store.hit"), 1);
        assert_eq!(get("store.miss"), 2);
        assert!(get("store.write_bytes") > 0);
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn hit_miss_points_carry_stage_attribution() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_tracing(true);
        let capture = std::sync::Arc::new(mdl_obs::MemorySubscriber::new());
        mdl_obs::add_subscriber(capture.clone());
        let store = Store::open(temp_dir("attr")).unwrap();
        let span = mdl_obs::span("pipeline.stage");
        let span_id = span.id();
        assert_eq!(store.load::<Vec<f64>>(9).unwrap(), None);
        store.save(9, &vec![1.0f64]).unwrap();
        let _ = store.load::<Vec<f64>>(9).unwrap();
        span.finish();
        let events = capture.take();
        mdl_obs::clear_subscribers();
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
        for name in ["store.miss", "store.hit"] {
            let ev = events
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} point emitted"));
            let field = |k: &str| ev.fields.iter().find(|(n, _)| *n == k).map(|(_, v)| v);
            assert_eq!(
                field("span"),
                Some(&mdl_obs::Value::Str("pipeline.stage".into())),
                "{name} names the active stage"
            );
            assert_eq!(field("span_id"), Some(&mdl_obs::Value::U64(span_id)));
            assert!(field("artifact").is_some());
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_miss() {
        let store = Store::open(temp_dir("corrupt")).unwrap();
        store.save(1, &vec![1.0f64, 2.0]).unwrap();
        let path = store.path_for::<Vec<f64>>(1);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load::<Vec<f64>>(1).is_err());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn keys_and_kinds_do_not_collide() {
        let store = Store::open(temp_dir("keys")).unwrap();
        store.save(1, &vec![1.0f64]).unwrap();
        store.save(2, &vec![2.0f64]).unwrap();
        assert_eq!(store.load::<Vec<f64>>(1).unwrap(), Some(vec![1.0]));
        assert_eq!(store.load::<Vec<f64>>(2).unwrap(), Some(vec![2.0]));
        // Same key, different kind: separate files.
        let sol = mdl_ctmc::Solution {
            probabilities: vec![0.5, 0.5],
            stats: mdl_ctmc::SolveStats {
                iterations: 3,
                residual: 1e-12,
                elapsed: std::time::Duration::from_millis(1),
            },
        };
        store.save(1, &sol).unwrap();
        assert_eq!(store.load::<Vec<f64>>(1).unwrap(), Some(vec![1.0]));
        let _ = fs::remove_dir_all(store.root());
    }
}
