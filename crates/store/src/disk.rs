//! The on-disk content-addressed artifact store.
//!
//! One directory, one file per artifact: `<name>-<key as hex>.mdls`,
//! where `name` is the artifact's [`Artifact::NAME`] and `key` is the
//! caller's cache key (a 64-bit content hash of the stage's inputs).
//! Writes go through a temp file + rename so a crash mid-write never
//! leaves a half-written artifact under a valid name; reads validate the
//! full container (magic, version, kind, checksum) before decoding.
//!
//! # Concurrency
//!
//! Writers serialize per artifact through an advisory `.lock` sentinel
//! (created with `O_EXCL`), so two workers — threads or processes —
//! racing the same content key produce exactly one valid artifact and
//! never interleave bytes. Temp files carry the pid *and* a process-wide
//! counter so same-process racers never share a temp path. Lock holders
//! that die mid-write are tolerated two ways: the lock is taken over
//! once it exceeds [`STALE_LOCK_AGE`], and a waiter that finds the
//! artifact already materialized skips its own write entirely (content
//! keys make any winner's bytes equally valid). Transient I/O errors are
//! retried with bounded backoff before surfacing.
//!
//! Obs counters: `store.hit`, `store.miss`, `store.write_bytes`,
//! `store.lock_wait` (writers that found the lock held) and
//! `store.lock_stale` (stale locks broken).

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime};

use mdl_arena::{ImageView, Mapping, SlabSource};

use crate::artifact::{validate_frame, Artifact};
use crate::image::MappedArtifact;
use crate::StoreError;

/// Age past which a writer lock is presumed abandoned (holder crashed or
/// was killed mid-write) and may be broken by a waiting writer. Real
/// writes hold the lock for milliseconds; this is three orders of
/// magnitude above that.
pub const STALE_LOCK_AGE: Duration = Duration::from_secs(10);

/// Attempts per transient-I/O retry loop (first try + retries).
const IO_ATTEMPTS: u32 = 4;

/// Base backoff between transient-I/O retries; doubles per attempt.
const IO_BACKOFF: Duration = Duration::from_millis(5);

/// How long a writer waits for a held lock before concluding it is
/// stale-or-stuck and erroring out. Combined with [`STALE_LOCK_AGE`]
/// takeover this bounds writer latency; it never blocks readers.
const LOCK_WAIT: Duration = Duration::from_secs(30);

/// Process-wide discriminator for temp-file names: two threads of one
/// process saving the same key must not share a temp path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of serialized artifacts, addressed by `(kind, key)`.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = dir.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file an artifact of type `A` under `key` lives at.
    pub fn path_for<A: Artifact>(&self, key: u64) -> PathBuf {
        self.root
            .join(format!("{}-{key:016x}.{}", A::NAME, A::EXTENSION))
    }

    /// Whether an artifact of type `A` exists under `key` (without
    /// reading or validating it).
    pub fn contains<A: Artifact>(&self, key: u64) -> bool {
        self.path_for::<A>(key).exists()
    }

    /// Loads the artifact stored under `key`, if any.
    ///
    /// A missing file is `Ok(None)` (a cache miss, counted on
    /// `store.miss`); a present, valid file is `Ok(Some(_))` (counted on
    /// `store.hit`). A present but unreadable/corrupt file is an error —
    /// callers deciding to treat that as a miss must do so explicitly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure, any decode [`StoreError`] on
    /// invalid content.
    pub fn load<A: Artifact>(&self, key: u64) -> Result<Option<A>, StoreError> {
        let path = self.path_for::<A>(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                mdl_obs::counter("store.miss").inc();
                attributed_point("store.miss", A::NAME, key);
                return Ok(None);
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let artifact = A::from_bytes(&bytes)?;
        mdl_obs::counter("store.hit").inc();
        attributed_point("store.hit", A::NAME, key);
        Ok(Some(artifact))
    }

    /// Serializes and stores an artifact under `key`, atomically
    /// (advisory lock + temp file + rename). Overwrites any previous
    /// artifact under the same key; when a concurrent writer already
    /// materialized the artifact while we waited for the lock, the write
    /// is skipped — content addressing makes either writer's bytes
    /// valid. The serialized size lands on `store.write_bytes`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure (after bounded retries on
    /// transient errors) or when the lock cannot be acquired within
    /// [`LOCK_WAIT`].
    pub fn save<A: Artifact>(&self, key: u64, artifact: &A) -> Result<(), StoreError> {
        let path = self.path_for::<A>(key);
        let mapped = A::EXTENSION != "mdls";
        let existed = path.exists();
        let lock = LockGuard::acquire(lock_path_for(&path, mapped))?;
        // Lost the race while queued behind the lock: the winner's
        // artifact is as valid as ours would be. (Only when the artifact
        // is new — explicit overwrites of an existing key still write.)
        if !existed && path.exists() {
            drop(lock);
            return Ok(());
        }
        let bytes = artifact.to_bytes();
        let tmp = tmp_path_for(&path, mapped);
        let write = with_io_retry(|| {
            // `store.write=err` injects a transient failure (absorbed by
            // the retry loop unless it fires on every attempt).
            if mdl_obs::failpoint::hit("store.write") == Some(mdl_obs::failpoint::Injection::Err) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected transient write failure",
                ));
            }
            fs::write(&tmp, &bytes)
        });
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(io_err(&tmp, e));
        }
        if let Err(e) = with_io_retry(|| fs::rename(&tmp, &path)) {
            let _ = fs::remove_file(&tmp);
            return Err(io_err(&path, e));
        }
        drop(lock);
        mdl_obs::counter("store.write_bytes").add(bytes.len() as u64);
        Ok(())
    }

    /// Removes leftover writer sidecars from the store directory —
    /// debris from writers killed mid-write. Plain artifacts leave
    /// `*.lock` / `*.tmp.*` files; mappable image artifacts (`.mdlm`)
    /// leave `*.maplock` / `*.new.*` files — both families are swept.
    /// Entries younger than [`STALE_LOCK_AGE`] are kept unless `force`
    /// is set (they may belong to a live writer). Returns the number
    /// removed. Never touches artifacts.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be listed.
    pub fn sweep_debris(&self, force: bool) -> Result<usize, StoreError> {
        let mut removed = 0;
        let entries = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let is_debris = name.ends_with(".lock")
                || name.contains(".tmp.")
                || name.ends_with(".maplock")
                || name.contains(".new.");
            if !is_debris {
                continue;
            }
            let stale = file_age(&path).is_some_and(|age| age >= STALE_LOCK_AGE);
            if !force && !stale {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Opens the image artifact stored under `key` by **memory-mapping**
    /// it, borrowing the payload slabs in place instead of copy-decoding
    /// them.
    ///
    /// The mapping is validated once per file version (magic, format
    /// version, kind, length accounting, FNV-1a payload checksum) and
    /// then cached process-wide, keyed by path and invalidated on any
    /// length/mtime change — so repeated opens, and opens from many
    /// threads or pipelines of one process, share a single `mmap(2)`
    /// region and skip the checksum pass (`store.map.hit` vs
    /// `store.map.miss`). Distinct *processes* mapping the same file
    /// share physical pages through the page cache. Replacing an
    /// artifact goes through `rename(2)`, which leaves the mapped inode
    /// untouched; live slabs stay valid and the cache picks up the new
    /// file on the next open.
    ///
    /// A missing file is `Ok(None)` (counted on `store.miss`). On
    /// non-Unix targets, where [`Mapping::open`] is unsupported, this
    /// returns an error — callers fall back to [`Store::load`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when mapping fails, any frame/image
    /// [`StoreError`] when the file is invalid.
    pub fn map<A: MappedArtifact>(&self, key: u64) -> Result<Option<A>, StoreError> {
        let path = self.path_for::<A>(key);
        let meta = match fs::metadata(&path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                mdl_obs::counter("store.miss").inc();
                attributed_point("store.miss", A::NAME, key);
                return Ok(None);
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let region = cached_mapping(&path, &meta, A::KIND)?;
        // The frame was validated when the mapping entered the cache;
        // re-slice the payload without re-hashing it.
        let bytes = region.bytes();
        let payload =
            &bytes[crate::artifact::HEADER_LEN..bytes.len() - crate::artifact::TRAILER_LEN];
        let view = ImageView::parse(payload).map_err(|e| StoreError::corrupted(e.to_string()))?;
        let artifact = A::from_image(&view, SlabSource::Mapped(&region))?;
        mdl_obs::counter("store.hit").inc();
        attributed_point("store.hit", A::NAME, key);
        Ok(Some(artifact))
    }

    /// Removes the artifact stored under `key`, if present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on removal failure (missing files are fine).
    pub fn remove<A: Artifact>(&self, key: u64) -> Result<(), StoreError> {
        let path = self.path_for::<A>(key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }
}

/// One process-wide cached `mmap` of an artifact file, revalidated by
/// (length, mtime).
struct MapEntry {
    len: u64,
    mtime: Option<SystemTime>,
    kind: u16,
    region: Arc<Mapping>,
}

/// The process-wide mapping cache behind [`Store::map`]. Entries are
/// keyed by absolute artifact path; a hit is an `Arc` clone, a miss
/// maps and frame-validates the file (the only FNV pass it will ever
/// get while unchanged).
fn map_cache() -> &'static Mutex<HashMap<PathBuf, MapEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, MapEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetches (or creates and validates) the cached mapping for `path`.
fn cached_mapping(path: &Path, meta: &fs::Metadata, kind: u16) -> Result<Arc<Mapping>, StoreError> {
    let len = meta.len();
    let mtime = meta.modified().ok();
    let mut cache = map_cache().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = cache.get(path) {
        if entry.len == len && entry.mtime == mtime && entry.kind == kind {
            mdl_obs::counter("store.map.hit").inc();
            return Ok(Arc::clone(&entry.region));
        }
    }
    let region = Arc::new(Mapping::open(path).map_err(|e| StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?);
    validate_frame(region.bytes(), kind)?;
    mdl_obs::counter("store.map.miss").inc();
    cache.insert(
        path.to_path_buf(),
        MapEntry {
            len,
            mtime,
            kind,
            region: Arc::clone(&region),
        },
    );
    Ok(region)
}

/// The writer-lock sidecar for `artifact`: the historical
/// extension-replacing `<stem>.lock` for plain containers, an appended
/// `<file>.maplock` for mappable images (keeping the full artifact name
/// visible and the pattern distinct for [`Store::sweep_debris`]).
fn lock_path_for(artifact: &Path, mapped: bool) -> PathBuf {
    if mapped {
        append_to_name(artifact, ".maplock")
    } else {
        artifact.with_extension("lock")
    }
}

/// The temp-file sidecar for one write to `artifact`: `<stem>.tmp.<pid>.<n>`
/// for plain containers, appended `<file>.new.<pid>.<n>` for mappable
/// images. Pid plus a process-wide counter keep racers apart.
fn tmp_path_for(artifact: &Path, mapped: bool) -> PathBuf {
    let tag = format!(
        "{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    if mapped {
        append_to_name(artifact, &format!(".new.{tag}"))
    } else {
        artifact.with_extension(format!("tmp.{tag}"))
    }
}

/// Appends `suffix` to the file name of `path` (no extension surgery).
fn append_to_name(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// An advisory writer lock on one artifact path, held as a sentinel
/// file (see [`lock_path_for`]) created with `O_EXCL`. Dropping the
/// guard releases the lock; a holder that dies without dropping is
/// recovered by age-based takeover in [`LockGuard::acquire`].
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    /// Acquires the advisory lock at `path`, waiting (with backoff) for
    /// a live holder and breaking holders older than
    /// [`STALE_LOCK_AGE`].
    fn acquire(path: PathBuf) -> Result<LockGuard, StoreError> {
        let deadline = std::time::Instant::now() + LOCK_WAIT;
        let mut backoff = Duration::from_millis(1);
        let mut waited = false;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(LockGuard { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if !waited {
                        waited = true;
                        mdl_obs::counter("store.lock_wait").inc();
                    }
                    if file_age(&path).is_some_and(|age| age >= STALE_LOCK_AGE) {
                        // Holder presumed dead: break the lock and retry
                        // the create-new race immediately.
                        mdl_obs::counter("store.lock_stale").inc();
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(StoreError::Io {
                            path: path.display().to_string(),
                            detail: format!("lock held past {LOCK_WAIT:?}; giving up"),
                        });
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                // Transient create failure (e.g. EINTR-ish): brief pause
                // and retry within the same deadline.
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                Err(e) => return Err(io_err(&path, e)),
            }
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Runs `op`, retrying transient I/O failures ([`is_transient`]) up to
/// [`IO_ATTEMPTS`] times with doubling backoff from [`IO_BACKOFF`].
fn with_io_retry<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut backoff = IO_BACKOFF;
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < IO_ATTEMPTS && is_transient(&e) => {
                std::thread::sleep(backoff);
                backoff *= 2;
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Whether an I/O error is worth retrying: interruptions and contention
/// conditions that typically clear in milliseconds.
fn is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(e.kind(), Interrupted | WouldBlock | TimedOut)
}

/// Age of the file at `path` per its mtime. `None` when the file is
/// gone, unreadable, or has a clock-skewed future mtime.
fn file_age(path: &Path) -> Option<Duration> {
    let modified = fs::metadata(path).ok()?.modified().ok()?;
    SystemTime::now().duration_since(modified).ok()
}

/// Emits a tracing point for a cache hit/miss carrying stage
/// attribution: which span (pipeline stage) was active when the store
/// was consulted. No-op unless tracing is on.
fn attributed_point(name: &'static str, artifact: &'static str, key: u64) {
    mdl_obs::point(name, || {
        let mut fields: Vec<(&'static str, mdl_obs::Value)> = vec![
            ("artifact", artifact.into()),
            ("key", format!("{key:016x}").into()),
        ];
        if let Some(ctx) = mdl_obs::current_span() {
            fields.push(("span", ctx.name.into()));
            fields.push(("span_id", ctx.id.into()));
        }
        fields
    });
}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdl-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_remove_round_trip() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_enabled(true);
        let store = Store::open(temp_dir("rt")).unwrap();
        let v: Vec<f64> = vec![1.0, -0.0, f64::MIN_POSITIVE];
        assert_eq!(store.load::<Vec<f64>>(7).unwrap(), None);
        store.save(7, &v).unwrap();
        assert!(store.contains::<Vec<f64>>(7));
        assert_eq!(store.load::<Vec<f64>>(7).unwrap(), Some(v));
        store.remove::<Vec<f64>>(7).unwrap();
        assert_eq!(store.load::<Vec<f64>>(7).unwrap(), None);

        let report = mdl_obs::snapshot();
        let get = |n: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == n)
                .map_or(0, |c| c.value)
        };
        assert_eq!(get("store.hit"), 1);
        assert_eq!(get("store.miss"), 2);
        assert!(get("store.write_bytes") > 0);
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn hit_miss_points_carry_stage_attribution() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_tracing(true);
        let capture = std::sync::Arc::new(mdl_obs::MemorySubscriber::new());
        mdl_obs::add_subscriber(capture.clone());
        let store = Store::open(temp_dir("attr")).unwrap();
        let span = mdl_obs::span("pipeline.stage");
        let span_id = span.id();
        assert_eq!(store.load::<Vec<f64>>(9).unwrap(), None);
        store.save(9, &vec![1.0f64]).unwrap();
        let _ = store.load::<Vec<f64>>(9).unwrap();
        span.finish();
        let events = capture.take();
        mdl_obs::clear_subscribers();
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
        for name in ["store.miss", "store.hit"] {
            let ev = events
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} point emitted"));
            let field = |k: &str| ev.fields.iter().find(|(n, _)| *n == k).map(|(_, v)| v);
            assert_eq!(
                field("span"),
                Some(&mdl_obs::Value::Str("pipeline.stage".into())),
                "{name} names the active stage"
            );
            assert_eq!(field("span_id"), Some(&mdl_obs::Value::U64(span_id)));
            assert!(field("artifact").is_some());
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_miss() {
        let store = Store::open(temp_dir("corrupt")).unwrap();
        store.save(1, &vec![1.0f64, 2.0]).unwrap();
        let path = store.path_for::<Vec<f64>>(1);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load::<Vec<f64>>(1).is_err());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_writers_same_key_yield_one_valid_artifact() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::reset();
        mdl_obs::set_enabled(true);
        let store = Store::open(temp_dir("race")).unwrap();
        // Payload big enough that an interleaved write would corrupt the
        // checksum, distinct per writer so either winner is detectable.
        let payload =
            |tag: u64| -> Vec<f64> { (0..4096).map(|i| (i as f64) + tag as f64).collect() };
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for round in 0..16 {
                        store.save(42, &payload(t * 100 + round)).unwrap();
                        // Readers racing the writers must see either a
                        // valid artifact or (never) a decode error.
                        let got = store.load::<Vec<f64>>(42).unwrap().unwrap();
                        assert_eq!(got.len(), 4096);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let got = store.load::<Vec<f64>>(42).unwrap().unwrap();
        assert_eq!(got.len(), 4096);
        // No lock or temp debris left behind.
        for entry in fs::read_dir(store.root()).unwrap().flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            assert!(
                !name.ends_with(".lock") && !name.contains(".tmp."),
                "leftover debris: {name}"
            );
        }
        let report = mdl_obs::snapshot();
        let invalid = report
            .counters
            .iter()
            .find(|c| c.name == "store.invalid")
            .map_or(0, |c| c.value);
        assert_eq!(invalid, 0, "no corrupt artifacts under writer races");
        mdl_obs::set_enabled(false);
        mdl_obs::reset();
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn transient_write_errors_are_retried() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        // First attempt fails with an injected transient error; the
        // bounded retry loop must absorb it.
        mdl_obs::failpoint::set("store.write", "err@1").unwrap();
        let store = Store::open(temp_dir("retry")).unwrap();
        store.save(5, &vec![1.0f64, 2.0]).unwrap();
        assert_eq!(store.load::<Vec<f64>>(5).unwrap(), Some(vec![1.0, 2.0]));
        mdl_obs::failpoint::clear();
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn persistent_write_errors_surface_after_retries() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("store.write", "err").unwrap();
        let store = Store::open(temp_dir("retry-fail")).unwrap();
        let err = store.save(6, &vec![1.0f64]).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "got {err:?}");
        mdl_obs::failpoint::clear();
        // No debris after the failure path either.
        for entry in fs::read_dir(store.root()).unwrap().flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            assert!(
                !name.ends_with(".lock") && !name.contains(".tmp."),
                "leftover debris: {name}"
            );
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_lock_is_broken_and_write_proceeds() {
        let store = Store::open(temp_dir("stale")).unwrap();
        let path = store.path_for::<Vec<f64>>(9);
        let lock = path.with_extension("lock");
        fs::write(&lock, b"").unwrap();
        // Backdate the lock past the stale threshold via mtime. With no
        // portable utime in std, emulate by writing and waiting is too
        // slow — instead exercise takeover through `sweep_debris(force)`
        // plus verify a *fresh* lock delays but does not block forever.
        store.sweep_debris(true).unwrap();
        assert!(!lock.exists(), "forced sweep removes fresh locks");
        store.save(9, &vec![3.0f64]).unwrap();
        assert_eq!(store.load::<Vec<f64>>(9).unwrap(), Some(vec![3.0]));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn sweep_debris_keeps_artifacts_and_fresh_debris() {
        let store = Store::open(temp_dir("sweep")).unwrap();
        store.save(1, &vec![1.0f64]).unwrap();
        let fresh_lock = store.root().join("vecf64-0000000000000001.lock");
        let fresh_tmp = store.root().join("x.tmp.123.0");
        fs::write(&fresh_lock, b"").unwrap();
        fs::write(&fresh_tmp, b"partial").unwrap();
        // Gentle sweep: fresh debris might belong to live writers.
        assert_eq!(store.sweep_debris(false).unwrap(), 0);
        assert!(fresh_lock.exists() && fresh_tmp.exists());
        // Forced sweep (startup/drain): debris goes, artifacts stay.
        assert_eq!(store.sweep_debris(true).unwrap(), 2);
        assert!(!fresh_lock.exists() && !fresh_tmp.exists());
        assert_eq!(store.load::<Vec<f64>>(1).unwrap(), Some(vec![1.0]));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn keys_and_kinds_do_not_collide() {
        let store = Store::open(temp_dir("keys")).unwrap();
        store.save(1, &vec![1.0f64]).unwrap();
        store.save(2, &vec![2.0f64]).unwrap();
        assert_eq!(store.load::<Vec<f64>>(1).unwrap(), Some(vec![1.0]));
        assert_eq!(store.load::<Vec<f64>>(2).unwrap(), Some(vec![2.0]));
        // Same key, different kind: separate files.
        let sol = mdl_ctmc::Solution {
            probabilities: vec![0.5, 0.5],
            stats: mdl_ctmc::SolveStats {
                iterations: 3,
                residual: 1e-12,
                elapsed: std::time::Duration::from_millis(1),
            },
        };
        store.save(1, &sol).unwrap();
        assert_eq!(store.load::<Vec<f64>>(1).unwrap(), Some(vec![1.0]));
        let _ = fs::remove_dir_all(store.root());
    }
}
