//! [`Artifact`] impls for the stack's building-block types: dense
//! vectors, CSR matrices, partitions, matrix diagrams, MDDs, solver
//! solutions, run reports, compiled-kernel parts and solver checkpoints.
//!
//! Every codec round-trips **bit-exactly** (f64s travel as bit patterns)
//! and decodes through each type's validating constructor, so corrupted
//! payloads surface as [`StoreError`]s rather than invalid values.

use std::time::Duration;

use mdl_arena::Interval;
use mdl_ctmc::{
    AttemptOutcome, AttemptRecord, BoundsSolution, BoundsStats, RunReport, Solution, SolveStats,
};
use mdl_linalg::CsrMatrix;
use mdl_md::{ChildId, CompiledParts, Md, MdNode, Term};
use mdl_mdd::Mdd;
use mdl_partition::Partition;

use crate::artifact::Codec;
use crate::bytes::{ByteReader, ByteWriter};
use crate::StoreError;

/// Known method/kernel labels, so decoded [`AttemptRecord`]s reuse the
/// interned `&'static str`s the rest of the stack compares against.
/// Unknown labels (from a newer writer) are leaked — they are a few bytes
/// and only appear when decoding foreign reports.
fn intern_label(s: String) -> &'static str {
    const KNOWN: &[&str] = &[
        "power",
        "jacobi",
        "gauss_seidel",
        "sor",
        "uniformization",
        "compiled",
        "walk",
        "flat-csr",
        "bounds-lower",
        "bounds-upper",
        "interval",
    ];
    for &k in KNOWN {
        if k == s {
            return k;
        }
    }
    Box::leak(s.into_boxed_str())
}

impl Codec for Vec<f64> {
    const KIND: u16 = 1;
    const NAME: &'static str = "vector";

    fn encode(&self, w: &mut ByteWriter) {
        w.f64_slice(self);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        r.f64_vec()
    }
}

impl Codec for CsrMatrix {
    const KIND: u16 = 2;
    const NAME: &'static str = "csr";

    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.nrows());
        w.usize(self.ncols());
        w.usize_slice(self.row_ptr_raw());
        w.u32_slice(self.col_idx_raw());
        w.f64_slice(self.values_raw());
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let nrows = r.usize()?;
        let ncols = r.usize()?;
        let row_ptr = r.usize_vec()?;
        let col_idx = r.u32_vec()?;
        let values = r.f64_vec()?;
        CsrMatrix::try_from_raw_parts(nrows, ncols, row_ptr, col_idx, values)
            .map_err(StoreError::corrupted)
    }
}

impl Codec for Partition {
    const KIND: u16 = 3;
    const NAME: &'static str = "partition";

    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.num_classes());
        for c in 0..self.num_classes() {
            w.usize_slice(self.members(c));
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let classes = r.seq_len(8)?;
        let mut members = Vec::with_capacity(classes);
        for _ in 0..classes {
            members.push(r.usize_vec()?);
        }
        Partition::try_from_classes(members).map_err(StoreError::corrupted)
    }
}

impl Codec for Md {
    const KIND: u16 = 4;
    const NAME: &'static str = "md";

    fn encode(&self, w: &mut ByteWriter) {
        w.usize_slice(self.sizes());
        for level in 0..self.num_levels() {
            let nodes = self.level_nodes(level);
            w.usize(nodes.len());
            for node in nodes {
                w.usize(node.num_entries());
                for e in node.entries() {
                    w.u32(e.row);
                    w.u32(e.col);
                    w.usize(e.terms.len());
                    for t in &e.terms {
                        w.f64(t.coef);
                        match t.child {
                            ChildId::Terminal => w.u8(0),
                            ChildId::Node(n) => {
                                w.u8(1);
                                w.u32(n);
                            }
                        }
                    }
                }
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let sizes = r.usize_vec()?;
        let mut levels = Vec::with_capacity(sizes.len());
        for _ in 0..sizes.len() {
            let num_nodes = r.seq_len(8)?;
            let mut nodes = Vec::with_capacity(num_nodes);
            for _ in 0..num_nodes {
                let num_entries = r.seq_len(8)?;
                let mut raw = Vec::with_capacity(num_entries);
                for _ in 0..num_entries {
                    let row = r.u32()?;
                    let col = r.u32()?;
                    let num_terms = r.seq_len(9)?;
                    let mut terms = Vec::with_capacity(num_terms);
                    for _ in 0..num_terms {
                        let coef = r.f64()?;
                        let child = match r.u8()? {
                            0 => ChildId::Terminal,
                            1 => ChildId::Node(r.u32()?),
                            t => {
                                return Err(StoreError::corrupted(format!("unknown child tag {t}")))
                            }
                        };
                        terms.push(Term::new(coef, child));
                    }
                    raw.push((row, col, terms));
                }
                // `MdNode::new` canonicalizes; canonical input (which is
                // what we wrote) is a fixed point, so this round-trips
                // bit-exactly.
                nodes.push(MdNode::new(raw));
            }
            levels.push(nodes);
        }
        Md::from_levels(sizes, levels).map_err(|e| StoreError::corrupted(e.to_string()))
    }
}

impl Codec for Mdd {
    const KIND: u16 = 5;
    const NAME: &'static str = "mdd";

    fn encode(&self, w: &mut ByteWriter) {
        w.usize_slice(self.sizes());
        w.usize(self.num_levels());
        for level in 0..self.num_levels() {
            w.u32_slice(self.raw_level_children(level));
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let sizes = r.usize_vec()?;
        let num_levels = r.seq_len(8)?;
        let mut rows = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            rows.push(r.u32_vec()?);
        }
        Mdd::from_raw_levels(sizes, rows).map_err(|e| StoreError::corrupted(e.to_string()))
    }
}

impl Codec for Solution {
    const KIND: u16 = 6;
    const NAME: &'static str = "solution";

    fn encode(&self, w: &mut ByteWriter) {
        w.f64_slice(&self.probabilities);
        w.usize(self.stats.iterations);
        w.f64(self.stats.residual);
        w.u64(duration_nanos(self.stats.elapsed));
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let probabilities = r.f64_vec()?;
        let iterations = r.usize()?;
        let residual = r.f64()?;
        let elapsed = Duration::from_nanos(r.u64()?);
        Ok(Solution {
            probabilities,
            stats: SolveStats {
                iterations,
                residual,
                elapsed,
            },
        })
    }
}

impl Codec for RunReport {
    const KIND: u16 = 7;
    const NAME: &'static str = "report";

    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.attempts.len());
        for a in &self.attempts {
            w.str(a.method);
            match a.kernel {
                Some(k) => {
                    w.u8(1);
                    w.str(k);
                }
                None => w.u8(0),
            }
            w.usize(a.iterations);
            w.f64(a.residual);
            w.u8(outcome_tag(a.outcome));
            match &a.error {
                Some(e) => {
                    w.u8(1);
                    w.str(e);
                }
                None => w.u8(0),
            }
            w.u64(duration_nanos(a.elapsed));
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let n = r.seq_len(1)?;
        let mut attempts = Vec::with_capacity(n);
        for _ in 0..n {
            let method = intern_label(r.str()?);
            let kernel = match r.u8()? {
                0 => None,
                1 => Some(intern_label(r.str()?)),
                t => return Err(StoreError::corrupted(format!("unknown option tag {t}"))),
            };
            let iterations = r.usize()?;
            let residual = r.f64()?;
            let outcome = outcome_from_tag(r.u8()?)?;
            let error = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                t => return Err(StoreError::corrupted(format!("unknown option tag {t}"))),
            };
            let elapsed = Duration::from_nanos(r.u64()?);
            attempts.push(AttemptRecord {
                method,
                kernel,
                iterations,
                residual,
                outcome,
                error,
                elapsed,
            });
        }
        Ok(RunReport { attempts })
    }
}

impl Codec for CompiledParts {
    const KIND: u16 = 8;
    const NAME: &'static str = "kernel";

    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.num_states);
        // The wire format predates the struct-of-slabs layout: blocks
        // travel interleaved, exactly as the original array-of-structs
        // encoding wrote them, so existing kind-8 files stay readable.
        w.usize(self.num_blocks());
        for b in 0..self.num_blocks() {
            w.u64(self.block_row_bases[b]);
            w.u64(self.block_col_bases[b]);
            w.f64(self.block_scales[b]);
            w.u32(self.block_leafs[b]);
        }
        w.u32_slice(&self.leaf_bounds);
        w.u32_slice(&self.leaf_rows);
        w.u32_slice(&self.leaf_cols);
        w.f64_slice(&self.leaf_coefs);
        w.u64(self.triples_visited);
        w.u64(self.triples_compiled);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let num_states = r.u64()?;
        let n = r.seq_len(28)?;
        let mut row_bases = Vec::with_capacity(n);
        let mut col_bases = Vec::with_capacity(n);
        let mut scales = Vec::with_capacity(n);
        let mut leafs = Vec::with_capacity(n);
        for _ in 0..n {
            row_bases.push(r.u64()?);
            col_bases.push(r.u64()?);
            scales.push(r.f64()?);
            leafs.push(r.u32()?);
        }
        let leaf_bounds = r.u32_vec()?;
        let leaf_rows = r.u32_vec()?;
        let leaf_cols = r.u32_vec()?;
        let leaf_coefs = r.f64_vec()?;
        let triples_visited = r.u64()?;
        let triples_compiled = r.u64()?;
        // Deep structural validation (bounds monotonicity, block
        // references) happens in `CompiledMdMatrix::from_parts`, which
        // every consumer goes through to obtain a usable kernel;
        // `validate` below covers the cross-array length invariants.
        Ok(CompiledParts {
            num_states,
            block_row_bases: row_bases.into(),
            block_col_bases: col_bases.into(),
            block_scales: scales.into(),
            block_leafs: leafs.into(),
            leaf_bounds: leaf_bounds.into(),
            leaf_rows: leaf_rows.into(),
            leaf_cols: leaf_cols.into(),
            leaf_coefs: leaf_coefs.into(),
            triples_visited,
            triples_compiled,
        })
    }

    fn validate(&self) -> Result<(), StoreError> {
        let b = self.num_blocks();
        if self.block_col_bases.len() != b
            || self.block_scales.len() != b
            || self.block_leafs.len() != b
        {
            return Err(StoreError::corrupted(
                "kernel block arrays disagree in length",
            ));
        }
        if self.leaf_rows.len() != self.leaf_coefs.len()
            || self.leaf_cols.len() != self.leaf_coefs.len()
        {
            return Err(StoreError::corrupted(
                "kernel leaf arrays disagree in length",
            ));
        }
        match self.leaf_bounds.split_first() {
            None if self.leaf_coefs.is_empty() => {}
            None => return Err(StoreError::corrupted("kernel leaf bounds missing")),
            Some((&first, rest)) => {
                if first != 0
                    || rest.windows(2).any(|w| w[0] > w[1])
                    || self.leaf_bounds.windows(2).any(|w| w[0] > w[1])
                    || *self.leaf_bounds.last().expect("nonempty") as usize != self.leaf_coefs.len()
                {
                    return Err(StoreError::corrupted("kernel leaf bounds malformed"));
                }
            }
        }
        Ok(())
    }
}

impl Codec for BoundsSolution {
    const KIND: u16 = 13;
    const NAME: &'static str = "bounds";

    fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.bounds.lo);
        w.f64(self.bounds.hi);
        w.usize(self.stats.lower_iterations);
        w.usize(self.stats.upper_iterations);
        w.f64(self.stats.lower_residual);
        w.f64(self.stats.upper_residual);
        w.u8(self.stats.converged as u8);
        w.f64(self.stats.lambda);
        w.f64(self.stats.discretization_error);
        w.u64(duration_nanos(self.stats.elapsed));
        Codec::encode(&self.report, w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let lo = r.f64()?;
        let hi = r.f64()?;
        let lower_iterations = r.usize()?;
        let upper_iterations = r.usize()?;
        let lower_residual = r.f64()?;
        let upper_residual = r.f64()?;
        let converged = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(StoreError::corrupted(format!("unknown bool tag {t}"))),
        };
        let lambda = r.f64()?;
        let discretization_error = r.f64()?;
        let elapsed = Duration::from_nanos(r.u64()?);
        let report = RunReport::decode(r)?;
        Ok(BoundsSolution {
            bounds: Interval { lo, hi },
            stats: BoundsStats {
                lower_iterations,
                upper_iterations,
                lower_residual,
                upper_residual,
                converged,
                lambda,
                discretization_error,
                elapsed,
            },
            report,
        })
    }

    fn validate(&self) -> Result<(), StoreError> {
        let Interval { lo, hi } = self.bounds;
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(StoreError::corrupted(format!(
                "bounds [{lo}, {hi}] are not a finite ordered interval"
            )));
        }
        // `is_nan` checks are spelled out so NaN stats are rejected too.
        let bad = |v: f64| v.is_nan() || v < 0.0;
        if bad(self.stats.lambda) || bad(self.stats.discretization_error) {
            return Err(StoreError::corrupted(
                "bounds stats carry a negative or NaN rate/error",
            ));
        }
        Ok(())
    }
}

/// A resumable snapshot of an interrupted (or periodically checkpointed)
/// iterative solve: the phase label, progress counters and the full
/// iterate. Written by the pipeline's checkpoint sink; consumed by
/// `--resume`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The interrupted phase (e.g. `solve.power`).
    pub phase: String,
    /// Iterations completed when the snapshot was taken.
    pub iterations: u64,
    /// Residual at the snapshot (`f64::INFINITY` if none yet).
    pub residual: f64,
    /// The primary iterate vector (normalized for stationary solves; the
    /// power iterate `v` for transient solves).
    pub iterate: Vec<f64>,
    /// Secondary state vector — the weighted partial accumulation of a
    /// transient solve. Empty for stationary solves.
    pub aux: Vec<f64>,
    /// Phase-specific scalars — `[ln_weight, accumulated]` for transient
    /// solves. Empty for stationary solves.
    pub scalars: Vec<f64>,
}

impl Codec for Checkpoint {
    const KIND: u16 = 9;
    const NAME: &'static str = "checkpoint";

    fn encode(&self, w: &mut ByteWriter) {
        w.str(&self.phase);
        w.u64(self.iterations);
        w.f64(self.residual);
        w.f64_slice(&self.iterate);
        w.f64_slice(&self.aux);
        w.f64_slice(&self.scalars);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(Checkpoint {
            phase: r.str()?,
            iterations: r.u64()?,
            residual: r.f64()?,
            iterate: r.f64_vec()?,
            aux: r.f64_vec()?,
            scalars: r.f64_vec()?,
        })
    }
}

fn outcome_tag(o: AttemptOutcome) -> u8 {
    match o {
        AttemptOutcome::Converged => 0,
        AttemptOutcome::NotConverged => 1,
        AttemptOutcome::Diverged => 2,
        AttemptOutcome::Interrupted => 3,
        AttemptOutcome::Failed => 4,
    }
}

fn outcome_from_tag(t: u8) -> Result<AttemptOutcome, StoreError> {
    Ok(match t {
        0 => AttemptOutcome::Converged,
        1 => AttemptOutcome::NotConverged,
        2 => AttemptOutcome::Diverged,
        3 => AttemptOutcome::Interrupted,
        4 => AttemptOutcome::Failed,
        _ => return Err(StoreError::corrupted(format!("unknown outcome tag {t}"))),
    })
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
