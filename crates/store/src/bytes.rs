//! Little-endian byte writer/reader. The reader is the crate's safety
//! boundary: every read is bounds-checked and returns
//! [`StoreError::Truncated`] instead of panicking, and length prefixes
//! are validated against the bytes actually remaining before any
//! allocation, so corrupted lengths cannot trigger huge allocations.

use crate::StoreError;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Starts an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by IEEE-754 bit pattern — decoding restores the
    /// exact bits, including NaN payloads and signed zeros.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, vs: &[u32]) {
        self.usize(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `u64`-widened `usize` slice.
    pub fn usize_slice(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a buffer; reading starts at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the buffer was consumed exactly — surplus bytes mean
    /// the payload length lied, which counts as corruption.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupted(format!(
                "{} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` that must fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::corrupted(format!("length {v} exceeds the address space")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix for a sequence whose elements occupy at
    /// least `min_elem_bytes` each, rejecting lengths the remaining input
    /// cannot possibly hold (so corrupt prefixes fail fast instead of
    /// allocating).
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let len = self.usize()?;
        let needed = len.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(StoreError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.seq_len(1)?;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupted("invalid UTF-8 in string"))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, StoreError> {
        let len = self.seq_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, StoreError> {
        let len = self.seq_len(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `usize` vector (stored as `u64`s).
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, StoreError> {
        let len = self.seq_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.usize()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-0.0);
        w.str("héllo");
        w.f64_slice(&[1.5, f64::NAN]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        let vs = r.f64_vec().unwrap();
        assert_eq!(vs[0], 1.5);
        assert!(vs[1].is_nan());
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(r.u64(), Err(StoreError::Truncated { .. })));
        }
    }

    #[test]
    fn absurd_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.f64_vec(), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.expect_end(), Err(StoreError::Corrupted { .. })));
    }
}
