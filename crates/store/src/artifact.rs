//! The container format and the [`Artifact`] trait.
//!
//! Every serialized artifact is one self-describing container:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MDLS"
//! 4       2     format version (little-endian u16)
//! 6       2     artifact kind tag (little-endian u16)
//! 8       8     payload length in bytes (little-endian u64)
//! 16      n     payload (artifact-specific, little-endian throughout)
//! 16+n    8     FNV-1a 64-bit hash of the payload (little-endian u64)
//! ```
//!
//! All integers are little-endian and `f64`s travel as IEEE-754 bit
//! patterns, so files written on any machine decode bit-exactly on any
//! other. Decoding validates magic, version, kind, length and checksum
//! before touching the payload, and the payload decoder itself is
//! bounds-checked — malformed input of any shape yields a
//! [`StoreError`], never a panic.

use crate::bytes::{ByteReader, ByteWriter};
use crate::hash::Fnv1a;
use crate::StoreError;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"MDLS";

/// Current format version. Bump on any payload layout change; decoders
/// reject anything newer than what they were built against.
pub const FORMAT_VERSION: u16 = 1;

pub(crate) const HEADER_LEN: usize = 4 + 2 + 2 + 8;
pub(crate) const TRAILER_LEN: usize = 8;

/// The payload codec of one artifact kind: how its bytes are written,
/// read back, and checked for structural sanity. Implement this — and
/// only this — per kind; the container logic (header, checksum, frame
/// validation) lives on [`Artifact`], which every `Codec` gets for free
/// through a blanket impl.
pub trait Codec: Sized {
    /// Kind tag distinguishing this artifact in the container header.
    /// Tags below 100 are reserved for this crate's impls; downstream
    /// crates (e.g. `mdl-core` pipeline artifacts) use 100 and up.
    const KIND: u16;

    /// Short lower-case name, used in store filenames and messages.
    const NAME: &'static str;

    /// File extension of stored containers of this kind. `"mdls"` for
    /// ordinary decode-on-load artifacts; arena-image kinds use
    /// `"mdlm"`, which the store treats as *mappable* — their sidecar
    /// lock/temp files get distinct names (`.maplock`, `.new.<pid>.<n>`)
    /// so debris sweeping and mapping-safety rules can tell them apart.
    const EXTENSION: &'static str = "mdls";

    /// Writes the payload (everything but the container frame).
    fn encode(&self, w: &mut ByteWriter);

    /// Reads the payload. Implementations must validate what they read
    /// (the container only guarantees the bytes are the ones written).
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, StoreError>;

    /// Post-decode structural check, run by [`Artifact::from_bytes`]
    /// after [`Codec::decode`] succeeds. Kinds whose decoder already
    /// feeds a validating constructor keep the default no-op; kinds that
    /// decode raw arrays (e.g. compiled-kernel parts) verify their
    /// cross-array invariants here.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupted`] describing the violated invariant.
    fn validate(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// The container layer over a [`Codec`]: serialization into and out of
/// the versioned, checksummed frame documented in the [module
/// docs](self). Blanket-implemented for every `Codec`; do not implement
/// directly.
pub trait Artifact: Codec {
    /// Serializes into a complete container.
    fn to_bytes(&self) -> Vec<u8> {
        let mut pw = ByteWriter::new();
        self.encode(&mut pw);
        let payload = pw.into_bytes();
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.u16(Self::KIND);
        w.usize(payload.len());
        w.bytes(&payload);
        w.u64(Fnv1a::hash_bytes(&payload));
        w.into_bytes()
    }

    /// The FNV-1a hash of this artifact's payload — its content address.
    fn content_hash(&self) -> u64 {
        let mut pw = ByteWriter::new();
        self.encode(&mut pw);
        Fnv1a::hash_bytes(&pw.into_bytes())
    }

    /// Deserializes a complete container, validating frame and payload.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; see the [module docs](self) for the checks.
    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u16()?;
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // Version 0 never existed; rejecting it means *every* single-byte
        // corruption of the frame is detectable (a flipped version byte
        // cannot masquerade as an older, laxer format).
        if version == 0 {
            return Err(StoreError::corrupted("format version 0 is invalid"));
        }
        let kind = r.u16()?;
        if kind != Self::KIND {
            return Err(StoreError::WrongKind {
                found: kind,
                expected: Self::KIND,
            });
        }
        let payload_len = r.usize()?;
        match r.remaining().checked_sub(TRAILER_LEN) {
            Some(have) if have == payload_len => {}
            Some(have) if have < payload_len => {
                return Err(StoreError::Truncated {
                    needed: payload_len + TRAILER_LEN,
                    available: r.remaining(),
                })
            }
            Some(_) => {
                return Err(StoreError::corrupted(
                    "container longer than header + payload + checksum",
                ))
            }
            None => {
                return Err(StoreError::Truncated {
                    needed: payload_len + TRAILER_LEN,
                    available: r.remaining(),
                })
            }
        }
        let payload = r.bytes(payload_len)?;
        let stored = r.u64()?;
        if Fnv1a::hash_bytes(payload) != stored {
            return Err(StoreError::ChecksumMismatch);
        }
        let mut pr = ByteReader::new(payload);
        let artifact = Self::decode(&mut pr)?;
        pr.expect_end()?;
        artifact.validate()?;
        Ok(artifact)
    }
}

impl<T: Codec> Artifact for T {}

/// Validates the container frame of `bytes` without decoding the
/// payload: magic, version, kind, length accounting and the FNV-1a
/// payload checksum. Returns the payload slice on success.
///
/// This is the read path of [`crate::Store::map`]: a mapped artifact is
/// frame-checked once per file version, then its payload is borrowed in
/// place rather than decoded.
///
/// # Errors
///
/// The same frame-level [`StoreError`]s as [`Artifact::from_bytes`].
pub fn validate_frame(bytes: &[u8], kind: u16) -> Result<&[u8], StoreError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u16()?;
    if version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if version == 0 {
        return Err(StoreError::corrupted("format version 0 is invalid"));
    }
    let found = r.u16()?;
    if found != kind {
        return Err(StoreError::WrongKind {
            found,
            expected: kind,
        });
    }
    let payload_len = r.usize()?;
    if r.remaining() != payload_len + TRAILER_LEN {
        return Err(StoreError::Truncated {
            needed: payload_len + TRAILER_LEN,
            available: r.remaining(),
        });
    }
    let payload = r.bytes(payload_len)?;
    let stored = r.u64()?;
    if Fnv1a::hash_bytes(payload) != stored {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Sanity: the fixed frame overhead of every container, in bytes.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;
