//! The container format and the [`Artifact`] trait.
//!
//! Every serialized artifact is one self-describing container:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MDLS"
//! 4       2     format version (little-endian u16)
//! 6       2     artifact kind tag (little-endian u16)
//! 8       8     payload length in bytes (little-endian u64)
//! 16      n     payload (artifact-specific, little-endian throughout)
//! 16+n    8     FNV-1a 64-bit hash of the payload (little-endian u64)
//! ```
//!
//! All integers are little-endian and `f64`s travel as IEEE-754 bit
//! patterns, so files written on any machine decode bit-exactly on any
//! other. Decoding validates magic, version, kind, length and checksum
//! before touching the payload, and the payload decoder itself is
//! bounds-checked — malformed input of any shape yields a
//! [`StoreError`], never a panic.

use crate::bytes::{ByteReader, ByteWriter};
use crate::hash::Fnv1a;
use crate::StoreError;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"MDLS";

/// Current format version. Bump on any payload layout change; decoders
/// reject anything newer than what they were built against.
pub const FORMAT_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 2 + 8;
const TRAILER_LEN: usize = 8;

/// A type with a canonical binary payload encoding, wrapped in the
/// versioned, checksummed container above.
///
/// Implementations define only the payload codec; the container logic
/// (header, checksum, validation) is shared.
pub trait Artifact: Sized {
    /// Kind tag distinguishing this artifact in the container header.
    /// Tags below 100 are reserved for this crate's impls; downstream
    /// crates (e.g. `mdl-core` pipeline artifacts) use 100 and up.
    const KIND: u16;

    /// Short lower-case name, used in store filenames and messages.
    const NAME: &'static str;

    /// Writes the payload (everything but the container frame).
    fn encode_payload(&self, w: &mut ByteWriter);

    /// Reads the payload. Implementations must validate what they read
    /// (the container only guarantees the bytes are the ones written).
    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError>;

    /// Serializes into a complete container.
    fn to_bytes(&self) -> Vec<u8> {
        let mut pw = ByteWriter::new();
        self.encode_payload(&mut pw);
        let payload = pw.into_bytes();
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.u16(Self::KIND);
        w.usize(payload.len());
        w.bytes(&payload);
        w.u64(Fnv1a::hash_bytes(&payload));
        w.into_bytes()
    }

    /// The FNV-1a hash of this artifact's payload — its content address.
    fn content_hash(&self) -> u64 {
        let mut pw = ByteWriter::new();
        self.encode_payload(&mut pw);
        Fnv1a::hash_bytes(&pw.into_bytes())
    }

    /// Deserializes a complete container, validating frame and payload.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; see the [module docs](self) for the checks.
    fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u16()?;
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // Version 0 never existed; rejecting it means *every* single-byte
        // corruption of the frame is detectable (a flipped version byte
        // cannot masquerade as an older, laxer format).
        if version == 0 {
            return Err(StoreError::corrupted("format version 0 is invalid"));
        }
        let kind = r.u16()?;
        if kind != Self::KIND {
            return Err(StoreError::WrongKind {
                found: kind,
                expected: Self::KIND,
            });
        }
        let payload_len = r.usize()?;
        match r.remaining().checked_sub(TRAILER_LEN) {
            Some(have) if have == payload_len => {}
            Some(have) if have < payload_len => {
                return Err(StoreError::Truncated {
                    needed: payload_len + TRAILER_LEN,
                    available: r.remaining(),
                })
            }
            Some(_) => {
                return Err(StoreError::corrupted(
                    "container longer than header + payload + checksum",
                ))
            }
            None => {
                return Err(StoreError::Truncated {
                    needed: payload_len + TRAILER_LEN,
                    available: r.remaining(),
                })
            }
        }
        let payload = r.bytes(payload_len)?;
        let stored = r.u64()?;
        if Fnv1a::hash_bytes(payload) != stored {
            return Err(StoreError::ChecksumMismatch);
        }
        let mut pr = ByteReader::new(payload);
        let artifact = Self::decode_payload(&mut pr)?;
        pr.expect_end()?;
        Ok(artifact)
    }
}

/// Sanity: the fixed frame overhead of every container, in bytes.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;
