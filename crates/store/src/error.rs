use std::fmt;

/// Errors from encoding, decoding or the on-disk store. Decoding **never
/// panics**: truncated, corrupted or future-versioned input always comes
/// back as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The input ended before the decoder read everything it needed.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The input does not start with the `MDLS` magic.
    BadMagic,
    /// The input was written by a newer format version than this build
    /// understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// The container holds a different artifact kind than the caller asked
    /// to decode.
    WrongKind {
        /// Kind tag found in the header.
        found: u16,
        /// Kind tag expected.
        expected: u16,
    },
    /// The payload's FNV-1a hash does not match the stored one.
    ChecksumMismatch,
    /// The bytes parsed but described something structurally impossible
    /// (bad lengths, out-of-range references, invalid UTF-8, trailing
    /// garbage).
    Corrupted {
        /// What was wrong.
        detail: String,
    },
    /// A filesystem operation of the on-disk store failed.
    Io {
        /// The file involved.
        path: String,
        /// The rendered I/O error.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { needed, available } => {
                write!(f, "input truncated: needed {needed} bytes, had {available}")
            }
            StoreError::BadMagic => write!(f, "not an mdl-store artifact (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact format version {found} is newer than the supported {supported}"
                )
            }
            StoreError::WrongKind { found, expected } => {
                write!(f, "artifact kind {found} found, expected {expected}")
            }
            StoreError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            StoreError::Corrupted { detail } => write!(f, "corrupted artifact: {detail}"),
            StoreError::Io { path, detail } => write!(f, "store I/O error on {path}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Shorthand for a [`StoreError::Corrupted`] with a rendered detail.
    pub fn corrupted(detail: impl Into<String>) -> Self {
        StoreError::Corrupted {
            detail: detail.into(),
        }
    }
}
