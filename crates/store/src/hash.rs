//! FNV-1a 64-bit hashing — the content hash of the artifact format and
//! the key-derivation hash of the pipeline cache. Chosen because it is
//! trivially reimplementable (the format is meant to outlive this code),
//! byte-order independent by construction, and fast enough for payloads
//! in the tens of megabytes.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
///
/// ```
/// use mdl_store::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// assert_eq!(h.finish(), Fnv1a::hash_bytes(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Feeds a `u64` in little-endian byte order (the format's fixed
    /// endianness, so keys agree across machines).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (so keys distinguish
    /// `0.0` from `-0.0` and are bit-exact, matching the codec).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string as length + UTF-8 bytes (length-prefixed so
    /// concatenations cannot collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The hash of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot hash of a byte slice.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(Fnv1a::hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv1a::hash_bytes(b"foobar"));
    }

    #[test]
    fn typed_writes_are_length_prefixed() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
