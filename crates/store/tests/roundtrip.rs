//! Round-trip and adversarial-input properties of the artifact format:
//! encode∘decode is bit-exact identity for every artifact type, and
//! truncated, corrupted or future-versioned bytes always decode to a
//! [`StoreError`] — never a panic, never a silently wrong value.

use proptest::prelude::*;

use mdl_arena::Interval;
use mdl_ctmc::{
    AttemptOutcome, AttemptRecord, BoundsSolution, BoundsStats, RunReport, Solution, SolveStats,
};
use mdl_linalg::{CooMatrix, CsrMatrix};
use mdl_md::{CompiledMdMatrix, KroneckerExpr, Md, MdMatrix, SparseFactor};
use mdl_mdd::Mdd;
use mdl_partition::Partition;
use mdl_store::{Artifact, Checkpoint, Codec, StoreError, FORMAT_VERSION};

const SIZES: [usize; 3] = [3, 4, 2];

/// Arbitrary f64 bit patterns — NaNs, infinities, signed zeros and all.
/// (The vendored rand shim cannot sample a full-width inclusive range,
/// so special values are mixed in explicitly.)
fn any_bits() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX, 0u8..8).prop_map(|(bits, sel)| match sel {
        0 => f64::NAN,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        _ => f64::from_bits(bits),
    })
}

fn vectors() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(any_bits(), 0..40)
}

fn csr_matrices() -> impl Strategy<Value = CsrMatrix> {
    let entry = (0usize..5, 0usize..6, -1.0e6..1.0e6);
    (prop::collection::vec(entry, 0..25)).prop_map(|entries| {
        let mut coo = CooMatrix::new(5, 6);
        for (r, c, v) in entries {
            coo.push(r, c, v);
        }
        coo.to_csr()
    })
}

fn partitions() -> impl Strategy<Value = Partition> {
    (1usize..12, prop::collection::vec(0usize..4, 12))
        .prop_map(|(n, keys)| Partition::from_key_fn(n, |s| keys[s]))
}

fn mdds() -> impl Strategy<Value = Mdd> {
    let one = (0..SIZES[0] as u32, 0..SIZES[1] as u32, 0..SIZES[2] as u32)
        .prop_map(|(a, b, c)| vec![a, b, c]);
    prop::collection::vec(one, 0..30).prop_map(|ts| Mdd::from_tuples(SIZES.to_vec(), ts).unwrap())
}

fn factors(size: usize) -> impl Strategy<Value = SparseFactor> {
    let entry = (0..size as u32, 0..size as u32, 0.1..10.0f64);
    prop::collection::vec(entry, 0..6).prop_map(move |entries| {
        let mut f = SparseFactor::new(size);
        for (r, c, v) in entries {
            f.push(r as usize, c as usize, v);
        }
        f
    })
}

fn mds() -> impl Strategy<Value = Md> {
    (factors(2), factors(3), factors(2), factors(3)).prop_map(|(a1, b1, a2, b2)| {
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(1.0, vec![Some(a1), Some(b1)]);
        expr.add_term(2.5, vec![Some(a2), None]);
        expr.add_term(0.5, vec![None, Some(b2)]);
        expr.to_md().unwrap()
    })
}

fn solutions() -> impl Strategy<Value = Solution> {
    (vectors(), 0usize..1_000_000, any_bits(), 0u64..u64::MAX / 2).prop_map(
        |(probabilities, iterations, residual, nanos)| Solution {
            probabilities,
            stats: SolveStats {
                iterations,
                residual,
                elapsed: std::time::Duration::from_nanos(nanos),
            },
        },
    )
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Every prefix of a valid container must decode to an error, and a
/// flip of any single byte must too (the checksum plus strict frame
/// checks leave no blind spots).
fn assert_adversarial_inputs_fail<A: Artifact>(encoded: &[u8]) {
    for cut in 0..encoded.len() {
        assert!(
            A::from_bytes(&encoded[..cut]).is_err(),
            "truncation at byte {cut} of {} decoded successfully",
            encoded.len()
        );
    }
    for i in 0..encoded.len() {
        let mut corrupt = encoded.to_vec();
        corrupt[i] ^= 0x41;
        assert!(
            A::from_bytes(&corrupt).is_err(),
            "corruption at byte {i} of {} decoded successfully",
            encoded.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn vectors_round_trip_bit_exactly(v in vectors()) {
        let decoded = Vec::<f64>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(bits(&decoded), bits(&v));
    }

    #[test]
    fn csr_round_trips(m in csr_matrices()) {
        let decoded = CsrMatrix::from_bytes(&m.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &m);
        prop_assert_eq!(bits(decoded.values_raw()), bits(m.values_raw()));
    }

    #[test]
    fn partitions_round_trip(p in partitions()) {
        let decoded = Partition::from_bytes(&p.to_bytes()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    #[test]
    fn mdds_round_trip(m in mdds()) {
        let decoded = Mdd::from_bytes(&m.to_bytes()).unwrap();
        prop_assert_eq!(decoded.sizes(), m.sizes());
        prop_assert_eq!(decoded.count(), m.count());
        for level in 0..m.num_levels() {
            prop_assert_eq!(decoded.raw_level_children(level), m.raw_level_children(level));
        }
        prop_assert_eq!(decoded.tuples(), m.tuples());
    }

    #[test]
    fn mds_round_trip(md in mds()) {
        let decoded = Md::from_bytes(&md.to_bytes()).unwrap();
        prop_assert_eq!(decoded.sizes(), md.sizes());
        prop_assert_eq!(decoded.num_nodes(), md.num_nodes());
        for level in 0..md.num_levels() {
            prop_assert_eq!(decoded.level_nodes(level), md.level_nodes(level));
        }
        // Re-encoding is byte-identical: the canonical form is stable.
        prop_assert_eq!(decoded.to_bytes(), md.to_bytes());
    }

    #[test]
    fn solutions_round_trip_bit_exactly(s in solutions()) {
        let decoded = Solution::from_bytes(&s.to_bytes()).unwrap();
        prop_assert_eq!(bits(&decoded.probabilities), bits(&s.probabilities));
        prop_assert_eq!(decoded.stats.iterations, s.stats.iterations);
        prop_assert_eq!(decoded.stats.residual.to_bits(), s.stats.residual.to_bits());
        prop_assert_eq!(decoded.stats.elapsed, s.stats.elapsed);
    }

    #[test]
    fn truncation_and_corruption_never_panic_vectors(v in vectors()) {
        assert_adversarial_inputs_fail::<Vec<f64>>(&v.to_bytes());
    }

    #[test]
    fn truncation_and_corruption_never_panic_mdds(m in mdds()) {
        assert_adversarial_inputs_fail::<Mdd>(&m.to_bytes());
    }

    #[test]
    fn truncation_and_corruption_never_panic_solutions(s in solutions()) {
        assert_adversarial_inputs_fail::<Solution>(&s.to_bytes());
    }
}

#[test]
fn truncation_and_corruption_never_panic_structured() {
    let coo = {
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 1, 1.5);
        c.push(2, 0, -2.0);
        c
    };
    assert_adversarial_inputs_fail::<CsrMatrix>(&coo.to_csr().to_bytes());
    let p = Partition::from_classes(vec![vec![0, 2], vec![1]]);
    assert_adversarial_inputs_fail::<Partition>(&p.to_bytes());
    let mut expr = KroneckerExpr::new(vec![2, 2]);
    let mut f = SparseFactor::new(2);
    f.push(0, 1, 1.0);
    f.push(1, 0, 2.0);
    expr.add_term(1.0, vec![Some(f), None]);
    let md = expr.to_md().unwrap();
    assert_adversarial_inputs_fail::<Md>(&md.to_bytes());
    let ck = Checkpoint {
        phase: "solve.power".into(),
        iterations: 42,
        residual: 1e-9,
        iterate: vec![0.25, 0.75],
        aux: vec![],
        scalars: vec![],
    };
    assert_adversarial_inputs_fail::<Checkpoint>(&ck.to_bytes());
}

#[test]
fn future_version_is_rejected() {
    let v: Vec<f64> = vec![1.0, 2.0];
    let mut bytes = v.to_bytes();
    // Bump the version field (offset 4, little-endian u16).
    let bumped = FORMAT_VERSION + 1;
    bytes[4..6].copy_from_slice(&bumped.to_le_bytes());
    match Vec::<f64>::from_bytes(&bytes) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, bumped);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_kind_is_rejected() {
    let v: Vec<f64> = vec![1.0];
    let bytes = v.to_bytes();
    match Solution::from_bytes(&bytes) {
        Err(StoreError::WrongKind { found, expected }) => {
            assert_eq!(found, <Vec<f64> as Codec>::KIND);
            assert_eq!(expected, Solution::KIND);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
}

#[test]
fn checkpoint_round_trips() {
    let ck = Checkpoint {
        phase: "solve.jacobi".into(),
        iterations: 1234,
        residual: 3.5e-7,
        iterate: vec![0.1, -0.0, f64::MIN_POSITIVE],
        aux: vec![0.4, 0.6],
        scalars: vec![-2.5, 0.97],
    };
    let decoded = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
    assert_eq!(decoded.phase, ck.phase);
    assert_eq!(decoded.iterations, ck.iterations);
    assert_eq!(decoded.residual.to_bits(), ck.residual.to_bits());
    assert_eq!(bits(&decoded.iterate), bits(&ck.iterate));
    assert_eq!(bits(&decoded.aux), bits(&ck.aux));
    assert_eq!(bits(&decoded.scalars), bits(&ck.scalars));
}

#[test]
fn compiled_kernel_round_trips_through_parts() {
    let mut w = SparseFactor::new(3);
    w.push(0, 1, 1.0);
    w.push(1, 2, 2.0);
    w.push(2, 0, 0.5);
    let mut cyc = SparseFactor::new(2);
    cyc.push(0, 1, 3.0);
    cyc.push(1, 0, 3.0);
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc), None]);
    expr.add_term(1.0, vec![None, Some(w)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
    let compiled = CompiledMdMatrix::compile(&matrix);

    let parts = compiled.to_parts();
    let decoded = mdl_md::CompiledParts::from_bytes(&parts.to_bytes()).expect("parts decode");
    assert_eq!(decoded, parts);
    let rebuilt = CompiledMdMatrix::from_parts(decoded, 2).expect("parts validate");

    use mdl_linalg::RateMatrix;
    let x: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
    let (mut y_orig, mut y_rebuilt) = (vec![0.0; 6], vec![0.0; 6]);
    compiled.acc_mat_vec(&x, &mut y_orig);
    rebuilt.acc_mat_vec(&x, &mut y_rebuilt);
    assert_eq!(bits(&y_orig), bits(&y_rebuilt));
    let (mut z_orig, mut z_rebuilt) = (vec![0.0; 6], vec![0.0; 6]);
    compiled.acc_vec_mat(&x, &mut z_orig);
    rebuilt.acc_vec_mat(&x, &mut z_rebuilt);
    assert_eq!(bits(&z_orig), bits(&z_rebuilt));

    assert_adversarial_inputs_fail::<mdl_md::CompiledParts>(&parts.to_bytes());
}

fn sample_bounds_solution(converged: bool) -> BoundsSolution {
    let sweep = |method: &'static str, iterations: usize| AttemptRecord {
        method,
        kernel: Some("interval"),
        iterations,
        residual: 3.5e-11,
        outcome: if converged {
            AttemptOutcome::Converged
        } else {
            AttemptOutcome::NotConverged
        },
        error: None,
        elapsed: std::time::Duration::from_micros(730),
    };
    BoundsSolution {
        bounds: Interval {
            lo: 0.599_999_2,
            hi: 0.600_000_9,
        },
        stats: BoundsStats {
            lower_iterations: 412,
            upper_iterations: 398,
            lower_residual: 3.5e-11,
            upper_residual: 2.1e-11,
            converged,
            lambda: 5.1,
            discretization_error: 1.25e-9,
            elapsed: std::time::Duration::from_micros(1460),
        },
        report: RunReport {
            attempts: vec![sweep("bounds-lower", 412), sweep("bounds-upper", 398)],
        },
    }
}

/// Kind 13: a certified bounds solve round-trips bit-exactly, the nested
/// attempt report reuses the interned sweep labels, and adversarial
/// inputs are rejected.
#[test]
fn bounds_solution_round_trips_bit_exactly() {
    for converged in [true, false] {
        let sol = sample_bounds_solution(converged);
        let bytes = sol.to_bytes();
        let back = BoundsSolution::from_bytes(&bytes).unwrap();
        assert_eq!(back.bounds.lo.to_bits(), sol.bounds.lo.to_bits());
        assert_eq!(back.bounds.hi.to_bits(), sol.bounds.hi.to_bits());
        assert_eq!(back.stats.lower_iterations, sol.stats.lower_iterations);
        assert_eq!(back.stats.upper_iterations, sol.stats.upper_iterations);
        assert_eq!(
            back.stats.lower_residual.to_bits(),
            sol.stats.lower_residual.to_bits()
        );
        assert_eq!(
            back.stats.upper_residual.to_bits(),
            sol.stats.upper_residual.to_bits()
        );
        assert_eq!(back.stats.converged, sol.stats.converged);
        assert_eq!(back.stats.lambda.to_bits(), sol.stats.lambda.to_bits());
        assert_eq!(
            back.stats.discretization_error.to_bits(),
            sol.stats.discretization_error.to_bits()
        );
        assert_eq!(back.stats.elapsed, sol.stats.elapsed);
        assert_eq!(back.report.attempts.len(), 2);
        // Interned labels decode to the same static strings the ctmc
        // crate hands out, so pointer-free == comparisons keep working.
        assert_eq!(back.report.attempts[0].method, "bounds-lower");
        assert_eq!(back.report.attempts[1].method, "bounds-upper");
        assert_eq!(back.report.attempts[0].kernel, Some("interval"));
        assert_eq!(
            back.report.attempts[0].outcome,
            sol.report.attempts[0].outcome
        );
        assert_adversarial_inputs_fail::<BoundsSolution>(&bytes);
    }
}

/// An inverted (`lo > hi`) or non-finite enclosure must not survive a
/// store round trip even when the payload checksum is intact.
#[test]
fn malformed_bounds_are_rejected_on_decode() {
    for bounds in [
        Interval { lo: 2.0, hi: 1.0 },
        Interval {
            lo: f64::NAN,
            hi: 1.0,
        },
        Interval {
            lo: 0.0,
            hi: f64::INFINITY,
        },
    ] {
        let mut sol = sample_bounds_solution(true);
        sol.bounds = bounds;
        assert!(
            BoundsSolution::from_bytes(&sol.to_bytes()).is_err(),
            "bounds [{}, {}] decoded successfully",
            bounds.lo,
            bounds.hi
        );
    }
}

fn temp_store(tag: &str) -> mdl_store::Store {
    let dir = std::env::temp_dir().join(format!("mdl-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    mdl_store::Store::open(dir).unwrap()
}

fn small_kernel() -> (CompiledMdMatrix, usize) {
    let mut w = SparseFactor::new(3);
    w.push(0, 1, 1.25);
    w.push(2, 1, 0.75);
    let mut cyc = SparseFactor::new(2);
    cyc.push(0, 1, 2.0);
    cyc.push(1, 0, 2.0);
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc), None]);
    expr.add_term(0.5, vec![None, Some(w)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
    let n = matrix.reach().count() as usize;
    (CompiledMdMatrix::compile(&matrix), n)
}

/// Satellite of the arena redesign: a kernel image opened by `mmap`
/// (zero-copy slabs) and the same image copy-decoded must rebuild
/// kernels whose products agree to the bit, and with the classic
/// kind-8 decode path too.
#[cfg(unix)]
#[test]
fn mapped_and_decoded_kernels_are_byte_identical() {
    use mdl_linalg::RateMatrix;
    use mdl_store::KernelImage;

    let store = temp_store("map-vs-decode");
    let (compiled, n) = small_kernel();
    let parts = compiled.to_parts();
    store.save(3, &KernelImage(parts.clone())).unwrap();
    store.save(3, &parts).unwrap(); // classic kind 8, separate file

    let mapped = store.map::<KernelImage>(3).unwrap().expect("mapped open");
    assert!(mapped.0.is_mapped(), "slabs borrow the mapping");
    let decoded = store.load::<KernelImage>(3).unwrap().expect("copy decode");
    assert!(!decoded.0.is_mapped());
    let classic = store
        .load::<mdl_md::CompiledParts>(3)
        .unwrap()
        .expect("classic decode");
    assert_eq!(mapped.0, decoded.0);
    assert_eq!(mapped.0, classic);

    let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.41 * i as f64).collect();
    let mut want = vec![0.0; n];
    compiled.acc_mat_vec(&x, &mut want);
    for parts in [mapped.0, decoded.0, classic] {
        let kernel = CompiledMdMatrix::from_parts(parts, 2).unwrap();
        let mut got = vec![0.0; n];
        kernel.acc_mat_vec(&x, &mut got);
        assert_eq!(bits(&want), bits(&got));
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// Kinds 14/15: an interval kernel image and an interval vector image
/// opened by `mmap` and copy-decoded must agree exactly, and the mapped
/// kernel's bound-operator sweeps must match the owned kernel's to the
/// bit — certification must not depend on how the artifact was opened.
#[cfg(unix)]
#[test]
fn mapped_and_decoded_interval_artifacts_are_byte_identical() {
    use mdl_linalg::IntervalRateMatrix;
    use mdl_store::{IntervalVector, IntervalVectorImage, KernelIntervalImage};

    let store = temp_store("interval-map-vs-decode");

    // An interval kernel: every leaf coefficient widened 1% outward.
    let mut w = SparseFactor::new(3);
    w.push(0, 1, 1.25);
    w.push(2, 1, 0.75);
    let mut cyc = SparseFactor::new(2);
    cyc.push(0, 1, 2.0);
    cyc.push(1, 0, 2.0);
    let mut expr = KroneckerExpr::new(vec![2, 3]);
    expr.add_term(1.0, vec![Some(cyc), None]);
    expr.add_term(0.5, vec![None, Some(w)]);
    let matrix = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3]).unwrap()).unwrap();
    let n = matrix.reach().count() as usize;
    let compiled = CompiledMdMatrix::<Interval>::compile_weighted(
        &matrix,
        1,
        &mdl_obs::Budget::unlimited(),
        &|site| Interval {
            lo: site.coef * 0.99,
            hi: site.coef * 1.01,
        },
    )
    .unwrap();
    let parts = compiled.to_parts();
    store.save(5, &KernelIntervalImage(parts.clone())).unwrap();

    let mapped = store
        .map::<KernelIntervalImage>(5)
        .unwrap()
        .expect("mapped open");
    assert!(mapped.0.is_mapped(), "slabs borrow the mapping");
    let decoded = store
        .load::<KernelIntervalImage>(5)
        .unwrap()
        .expect("copy decode");
    assert!(!decoded.0.is_mapped());
    assert_eq!(mapped.0, decoded.0);
    assert_eq!(mapped.0, parts);

    let f: Vec<f64> = (0..n).map(|i| 0.2 + 0.37 * i as f64).collect();
    for upper in [false, true] {
        let mut want = vec![0.0; n];
        compiled.acc_bound_operator(&f, &mut want, upper);
        for parts in [mapped.0.clone(), decoded.0.clone()] {
            let kernel = CompiledMdMatrix::<Interval>::from_parts(parts, 2).unwrap();
            let mut got = vec![0.0; n];
            kernel.acc_bound_operator(&f, &mut got, upper);
            assert_eq!(bits(&want), bits(&got));
        }
    }

    // An interval vector rides the same save/map/load machinery.
    let vals: Vec<Interval> = f
        .iter()
        .map(|&v| Interval {
            lo: v - 0.125,
            hi: v + 0.125,
        })
        .collect();
    store
        .save(6, &IntervalVectorImage(IntervalVector::new(vals.clone())))
        .unwrap();
    let vm = store
        .map::<IntervalVectorImage>(6)
        .unwrap()
        .expect("mapped open");
    assert!(vm.0.is_mapped());
    let vd = store
        .load::<IntervalVectorImage>(6)
        .unwrap()
        .expect("copy decode");
    assert!(!vd.0.is_mapped());
    assert_eq!(vm.0, vd.0);
    assert_eq!(vm.0.values(), &vals[..]);
    let _ = std::fs::remove_dir_all(store.root());
}

/// A second map of the same key reuses the cached mapping (one region,
/// many `Arc`s), and rewriting the file invalidates the cache entry.
#[cfg(unix)]
#[test]
fn mapping_cache_hits_and_invalidation() {
    use mdl_store::MddImage;

    let store = temp_store("map-cache");
    let mdd = Mdd::from_tuples(SIZES.to_vec(), vec![vec![0, 0, 0], vec![2, 3, 1]]).unwrap();
    store.save(9, &MddImage(mdd)).unwrap();
    let a = store.map::<MddImage>(9).unwrap().unwrap();
    let b = store.map::<MddImage>(9).unwrap().unwrap();
    assert!(a.0.is_mapped() && b.0.is_mapped());
    assert_eq!(a.0.tuples(), b.0.tuples());

    // Replace with different content; the next map must see it.
    let other = Mdd::from_tuples(SIZES.to_vec(), vec![vec![1, 1, 1]]).unwrap();
    store.save(9, &MddImage(other.clone())).unwrap();
    // Rewrites go through rename(2): `a` still reads the old inode.
    assert_eq!(a.0.count(), 2);
    let fresh = store.map::<MddImage>(9).unwrap().unwrap();
    assert_eq!(fresh.0.tuples(), other.tuples());
    let _ = std::fs::remove_dir_all(store.root());
}

/// Image artifacts use mapping-aware sidecar names; `sweep_debris`
/// must collect them alongside the classic `.lock`/`.tmp.` debris.
#[test]
fn sweep_collects_mapped_sidecar_debris() {
    let store = temp_store("map-sweep");
    let (compiled, _) = small_kernel();
    store
        .save(1, &mdl_store::KernelImage(compiled.to_parts()))
        .unwrap();
    let artifact = store.path_for::<mdl_store::KernelImage>(1);
    assert!(artifact.to_string_lossy().ends_with(".mdlm"));
    let maplock = store.root().join("kernelimg-0000000000000001.mdlm.maplock");
    let new_tmp = store
        .root()
        .join("kernelimg-0000000000000001.mdlm.new.123.0");
    std::fs::write(&maplock, b"").unwrap();
    std::fs::write(&new_tmp, b"partial").unwrap();
    // Gentle sweep keeps fresh debris (live writers), forced removes it.
    assert_eq!(store.sweep_debris(false).unwrap(), 0);
    assert!(maplock.exists() && new_tmp.exists());
    assert_eq!(store.sweep_debris(true).unwrap(), 2);
    assert!(!maplock.exists() && !new_tmp.exists());
    assert!(artifact.exists(), "sweep never touches artifacts");
    let _ = std::fs::remove_dir_all(store.root());
}
