//! Property-based tests for matrix-diagram algebra on random Kronecker
//! expressions: every structural transformation must preserve the
//! represented matrix.

use proptest::prelude::*;

use mdl_linalg::CsrMatrix;
use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
use mdl_mdd::Mdd;

const SIZES: [usize; 3] = [2, 3, 2];

fn factor(size: usize) -> impl Strategy<Value = SparseFactor> {
    let entry = (
        0..size,
        0..size,
        prop::sample::select(vec![0.5, 1.0, 2.0, 3.0]),
    );
    prop::collection::vec(entry, 0..size * 2).prop_map(move |entries| {
        let mut f = SparseFactor::new(size);
        for (r, c, v) in entries {
            f.push(r, c, v);
        }
        f
    })
}

fn expr() -> impl Strategy<Value = KroneckerExpr> {
    let term = (
        prop::sample::select(vec![0.5, 1.0, 1.5]),
        prop::option::of(factor(SIZES[0])),
        prop::option::of(factor(SIZES[1])),
        prop::option::of(factor(SIZES[2])),
    );
    prop::collection::vec(term, 1..4).prop_map(|terms| {
        let mut e = KroneckerExpr::new(SIZES.to_vec());
        for (rate, a, b, c) in terms {
            e.add_term(rate, vec![a, b, c]);
        }
        e
    })
}

fn flat(md: &mdl_md::Md) -> CsrMatrix {
    let full = Mdd::full(md.sizes().to_vec()).unwrap();
    MdMatrix::new(md.clone(), full).unwrap().flatten()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The MD represents exactly the Kronecker sum.
    #[test]
    fn md_equals_kronecker(e in expr()) {
        let md = e.to_md().unwrap();
        prop_assert_eq!(flat(&md).max_abs_diff(&e.flatten_full()), 0.0);
    }

    /// Canonicalization never changes the matrix and never adds nodes.
    #[test]
    fn canonicalize_preserves_matrix(e in expr()) {
        let md = e.to_md().unwrap();
        let (canon, removed) = md.canonicalize();
        prop_assert!(flat(&md).max_abs_diff(&flat(&canon)) < 1e-12);
        prop_assert_eq!(canon.num_nodes() + removed, md.num_nodes());
        // Idempotent.
        let (again, removed2) = canon.canonicalize();
        prop_assert_eq!(removed2, 0);
        prop_assert_eq!(again.nodes_per_level(), canon.nodes_per_level());
    }

    /// Quasi-reduction never changes the matrix.
    #[test]
    fn quasi_reduce_preserves_matrix(e in expr()) {
        let md = e.to_md().unwrap();
        let (reduced, removed) = md.quasi_reduce();
        prop_assert!(flat(&md).max_abs_diff(&flat(&reduced)) < 1e-12);
        prop_assert_eq!(reduced.num_nodes() + removed, md.num_nodes());
    }

    /// Transposition is an involution and matches the flat transpose.
    #[test]
    fn transpose_round_trips(e in expr()) {
        let md = e.to_md().unwrap();
        let t = md.transpose();
        prop_assert_eq!(flat(&t).max_abs_diff(&flat(&md).transpose()), 0.0);
        prop_assert_eq!(flat(&t.transpose()).max_abs_diff(&flat(&md)), 0.0);
    }

    /// Every merge variant preserves the matrix.
    #[test]
    fn merges_preserve_matrix(e in expr()) {
        let md = e.to_md().unwrap();
        let reference = flat(&md);
        for level in 0..3 {
            prop_assert_eq!(
                flat(&md.merge_bottom(level).unwrap()).max_abs_diff(&reference),
                0.0
            );
            prop_assert_eq!(
                flat(&md.three_level_view(level).unwrap()).max_abs_diff(&reference),
                0.0
            );
        }
        for level in 0..2 {
            prop_assert_eq!(
                flat(&md.merge_top(level).unwrap()).max_abs_diff(&reference),
                0.0
            );
        }
    }

    /// Aggregation preserves the matrix and never increases term count.
    #[test]
    fn aggregation_sound(e in expr()) {
        let agg = e.aggregate();
        prop_assert!(agg.terms().len() <= e.terms().len());
        prop_assert!(agg.flatten_full().max_abs_diff(&e.flatten_full()) < 1e-12);
        // And the MD of the aggregated form never has more nodes.
        let plain = e.to_md().unwrap();
        let merged = agg.to_md().unwrap();
        prop_assert!(merged.num_nodes() <= plain.num_nodes());
    }

    /// Restricting to a random reachable subset projects the matrix.
    #[test]
    fn restriction_projects(e in expr(), keep in prop::collection::vec(any::<bool>(), 12)) {
        let tuples: Vec<Vec<u32>> = (0..12usize)
            .filter(|&i| keep[i])
            .map(|i| {
                let a = (i / 6) as u32;
                let b = ((i / 2) % 3) as u32;
                let c = (i % 2) as u32;
                vec![a, b, c]
            })
            .collect();
        prop_assume!(!tuples.is_empty());
        let reach = Mdd::from_tuples(SIZES.to_vec(), tuples).unwrap();
        let md = e.to_md().unwrap();
        let restricted = MdMatrix::new(md.clone(), reach.clone()).unwrap().flatten();
        let full = flat(&md);
        reach.for_each_tuple(|rt, ri| {
            let rfull = (rt[0] as usize * 6) + (rt[1] as usize * 2) + rt[2] as usize;
            reach.for_each_tuple(|ct, ci| {
                let cfull = (ct[0] as usize * 6) + (ct[1] as usize * 2) + ct[2] as usize;
                assert_eq!(
                    restricted.get(ri as usize, ci as usize),
                    full.get(rfull, cfull)
                );
            });
        });
    }
}
