//! Property-based tests for matrix-diagram algebra on random Kronecker
//! expressions: every structural transformation must preserve the
//! represented matrix.

use proptest::prelude::*;

use mdl_arena::{ImageView, ImageWriter, SlabSource};
use mdl_linalg::{CsrMatrix, RateMatrix};
use mdl_md::{CompiledMdMatrix, KroneckerExpr, Md, MdMatrix, SparseFactor};
use mdl_mdd::Mdd;

const SIZES: [usize; 3] = [2, 3, 2];

fn factor(size: usize) -> impl Strategy<Value = SparseFactor> {
    let entry = (
        0..size,
        0..size,
        prop::sample::select(vec![0.5, 1.0, 2.0, 3.0]),
    );
    prop::collection::vec(entry, 0..size * 2).prop_map(move |entries| {
        let mut f = SparseFactor::new(size);
        for (r, c, v) in entries {
            f.push(r, c, v);
        }
        f
    })
}

fn expr() -> impl Strategy<Value = KroneckerExpr> {
    let term = (
        prop::sample::select(vec![0.5, 1.0, 1.5]),
        prop::option::of(factor(SIZES[0])),
        prop::option::of(factor(SIZES[1])),
        prop::option::of(factor(SIZES[2])),
    );
    prop::collection::vec(term, 1..4).prop_map(|terms| {
        let mut e = KroneckerExpr::new(SIZES.to_vec());
        for (rate, a, b, c) in terms {
            e.add_term(rate, vec![a, b, c]);
        }
        e
    })
}

fn flat(md: &mdl_md::Md) -> CsrMatrix {
    let full = Mdd::full(md.sizes().to_vec()).unwrap();
    MdMatrix::new(md.clone(), full).unwrap().flatten()
}

/// Serializes the MD to its arena image and reads it back (copy mode) —
/// the round trip every store-persisted MD takes.
fn image_round_trip(md: &Md) -> Md {
    let mut w = ImageWriter::new();
    md.write_image(&mut w);
    let payload = w.finish();
    let view = ImageView::parse(&payload).expect("image parses");
    Md::read_image(&view, SlabSource::Copy).expect("image reads")
}

/// A deterministic probe vector that exposes any arithmetic-order
/// difference between two kernels.
fn probe(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + 0.25 * (i % 11) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The MD represents exactly the Kronecker sum.
    #[test]
    fn md_equals_kronecker(e in expr()) {
        let md = e.to_md().unwrap();
        prop_assert_eq!(flat(&md).max_abs_diff(&e.flatten_full()), 0.0);
    }

    /// Canonicalization never changes the matrix and never adds nodes.
    #[test]
    fn canonicalize_preserves_matrix(e in expr()) {
        let md = e.to_md().unwrap();
        let (canon, removed) = md.canonicalize();
        prop_assert!(flat(&md).max_abs_diff(&flat(&canon)) < 1e-12);
        prop_assert_eq!(canon.num_nodes() + removed, md.num_nodes());
        // Idempotent.
        let (again, removed2) = canon.canonicalize();
        prop_assert_eq!(removed2, 0);
        prop_assert_eq!(again.nodes_per_level(), canon.nodes_per_level());
    }

    /// Quasi-reduction never changes the matrix.
    #[test]
    fn quasi_reduce_preserves_matrix(e in expr()) {
        let md = e.to_md().unwrap();
        let (reduced, removed) = md.quasi_reduce();
        prop_assert!(flat(&md).max_abs_diff(&flat(&reduced)) < 1e-12);
        prop_assert_eq!(reduced.num_nodes() + removed, md.num_nodes());
    }

    /// Transposition is an involution and matches the flat transpose.
    #[test]
    fn transpose_round_trips(e in expr()) {
        let md = e.to_md().unwrap();
        let t = md.transpose();
        prop_assert_eq!(flat(&t).max_abs_diff(&flat(&md).transpose()), 0.0);
        prop_assert_eq!(flat(&t.transpose()).max_abs_diff(&flat(&md)), 0.0);
    }

    /// Every merge variant preserves the matrix.
    #[test]
    fn merges_preserve_matrix(e in expr()) {
        let md = e.to_md().unwrap();
        let reference = flat(&md);
        for level in 0..3 {
            prop_assert_eq!(
                flat(&md.merge_bottom(level).unwrap()).max_abs_diff(&reference),
                0.0
            );
            prop_assert_eq!(
                flat(&md.three_level_view(level).unwrap()).max_abs_diff(&reference),
                0.0
            );
        }
        for level in 0..2 {
            prop_assert_eq!(
                flat(&md.merge_top(level).unwrap()).max_abs_diff(&reference),
                0.0
            );
        }
    }

    /// Aggregation preserves the matrix and never increases term count.
    #[test]
    fn aggregation_sound(e in expr()) {
        let agg = e.aggregate();
        prop_assert!(agg.terms().len() <= e.terms().len());
        prop_assert!(agg.flatten_full().max_abs_diff(&e.flatten_full()) < 1e-12);
        // And the MD of the aggregated form never has more nodes.
        let plain = e.to_md().unwrap();
        let merged = agg.to_md().unwrap();
        prop_assert!(merged.num_nodes() <= plain.num_nodes());
    }

    /// The arena image round trip is the identity on the MD — node for
    /// node, entry for entry, coefficient bit for bit — and commutes
    /// with canonicalization.
    #[test]
    fn image_round_trip_is_identity(e in expr()) {
        let md = e.to_md().unwrap();
        let back = image_round_trip(&md);
        prop_assert_eq!(back.sizes(), md.sizes());
        prop_assert_eq!(back.nodes_per_level(), md.nodes_per_level());
        for level in 0..md.num_levels() {
            prop_assert_eq!(back.level_nodes(level), md.level_nodes(level));
        }
        let (canon_orig, removed_orig) = md.canonicalize();
        let (canon_back, removed_back) = back.canonicalize();
        prop_assert_eq!(removed_back, removed_orig);
        for level in 0..canon_orig.num_levels() {
            prop_assert_eq!(canon_back.level_nodes(level), canon_orig.level_nodes(level));
        }
    }

    /// Kernels compiled before and after the image round trip produce
    /// bit-identical (0 ulp) products, at every thread count.
    #[test]
    fn image_round_trip_compiles_bit_identically(e in expr()) {
        let md = e.to_md().unwrap();
        let back = image_round_trip(&md);
        let full = Mdd::full(md.sizes().to_vec()).unwrap();
        let orig = MdMatrix::new(md, full.clone()).unwrap();
        let trip = MdMatrix::new(back, full).unwrap();
        let k_orig = CompiledMdMatrix::compile(&orig);
        let n = k_orig.num_states();
        let x = probe(n);
        let mut y_orig = vec![0.0; n];
        k_orig.acc_vec_mat(&x, &mut y_orig);
        for threads in [1usize, 2, 4] {
            let k_trip = CompiledMdMatrix::compile_with_threads(&trip, threads);
            let mut y_trip = vec![0.0; n];
            k_trip.acc_vec_mat(&x, &mut y_trip);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(bits(&y_trip), bits(&y_orig), "threads {}", threads);
        }
    }

    /// Restricting to a random reachable subset projects the matrix.
    #[test]
    fn restriction_projects(e in expr(), keep in prop::collection::vec(any::<bool>(), 12)) {
        let tuples: Vec<Vec<u32>> = (0..12usize)
            .filter(|&i| keep[i])
            .map(|i| {
                let a = (i / 6) as u32;
                let b = ((i / 2) % 3) as u32;
                let c = (i % 2) as u32;
                vec![a, b, c]
            })
            .collect();
        prop_assume!(!tuples.is_empty());
        let reach = Mdd::from_tuples(SIZES.to_vec(), tuples).unwrap();
        let md = e.to_md().unwrap();
        let restricted = MdMatrix::new(md.clone(), reach.clone()).unwrap().flatten();
        let full = flat(&md);
        reach.for_each_tuple(|rt, ri| {
            let rfull = (rt[0] as usize * 6) + (rt[1] as usize * 2) + rt[2] as usize;
            reach.for_each_tuple(|ct, ci| {
                let cfull = (ct[0] as usize * 6) + (ct[1] as usize * 2) + ct[2] as usize;
                assert_eq!(
                    restricted.get(ri as usize, ci as usize),
                    full.get(rfull, cfull)
                );
            });
        });
    }
}
