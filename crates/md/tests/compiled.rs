//! Property-based tests for the compiled MD×MDD kernel: on random
//! Kronecker expressions, compiled products must be bit-identical to the
//! recursive walk and agree with the flattened sparse matrix, for both
//! orientations and any thread count.

use proptest::prelude::*;

use mdl_linalg::{vec_ops, RateMatrix};
use mdl_md::{CompiledMdMatrix, KroneckerExpr, MdMatrix, SparseFactor};
use mdl_mdd::Mdd;

const SIZES: [usize; 3] = [2, 3, 2];

fn factor(size: usize) -> impl Strategy<Value = SparseFactor> {
    let entry = (
        0..size,
        0..size,
        prop::sample::select(vec![0.5, 1.0, 2.0, 3.0]),
    );
    prop::collection::vec(entry, 0..size * 2).prop_map(move |entries| {
        let mut f = SparseFactor::new(size);
        for (r, c, v) in entries {
            f.push(r, c, v);
        }
        f
    })
}

fn expr() -> impl Strategy<Value = KroneckerExpr> {
    let term = (
        prop::sample::select(vec![0.5, 1.0, 1.5]),
        prop::option::of(factor(SIZES[0])),
        prop::option::of(factor(SIZES[1])),
        prop::option::of(factor(SIZES[2])),
    );
    prop::collection::vec(term, 1..4).prop_map(|terms| {
        let mut e = KroneckerExpr::new(SIZES.to_vec());
        for (rate, a, b, c) in terms {
            e.add_term(rate, vec![a, b, c]);
        }
        e
    })
}

fn probe(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.25 + 0.31 * (i % 7) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Compiled products are bit-identical to the recursive walk and within
    /// 1e-12 of the flattened CSR products, both orientations, 1/2/4
    /// threads.
    #[test]
    fn compiled_matches_walk_and_flat(e in expr()) {
        let md = e.to_md().unwrap();
        let full = Mdd::full(SIZES.to_vec()).unwrap();
        let m = MdMatrix::new(md, full).unwrap();
        let flat = m.flatten();
        let n = m.num_states();
        let x = probe(n);

        let mut walk_mv = vec![0.0; n];
        m.acc_mat_vec(&x, &mut walk_mv);
        let mut walk_vm = vec![0.0; n];
        m.acc_vec_mat(&x, &mut walk_vm);
        let mut flat_mv = vec![0.0; n];
        flat.acc_mat_vec(&x, &mut flat_mv);
        let mut flat_vm = vec![0.0; n];
        flat.acc_vec_mat(&x, &mut flat_vm);

        for threads in [1usize, 2, 4] {
            let c = CompiledMdMatrix::compile_with_threads(&m, threads);
            prop_assert_eq!(c.stats().flat_entries, m.count_entries());

            let mut mv = vec![0.0; n];
            c.acc_mat_vec(&x, &mut mv);
            prop_assert_eq!(&walk_mv, &mv, "mat·vec walk parity, {} threads", threads);
            prop_assert!(vec_ops::max_abs_diff(&mv, &flat_mv) < 1e-12);

            let mut vm = vec![0.0; n];
            c.acc_vec_mat(&x, &mut vm);
            prop_assert_eq!(&walk_vm, &vm, "vec·mat walk parity, {} threads", threads);
            prop_assert!(vec_ops::max_abs_diff(&vm, &flat_vm) < 1e-12);
        }
    }

    /// `product_multi` with B ∈ {1, 2, 3, 8} right-hand sides is bitwise
    /// equal to B independent single-vector products, both orientations,
    /// at 1/2/4 threads.
    #[test]
    fn product_multi_matches_independent_products(e in expr()) {
        let md = e.to_md().unwrap();
        let full = Mdd::full(SIZES.to_vec()).unwrap();
        let m = MdMatrix::new(md, full).unwrap();
        let n = m.num_states();

        for threads in [1usize, 2, 4] {
            let c = CompiledMdMatrix::compile_with_threads(&m, threads);
            for b_count in [1usize, 2, 3, 8] {
                let inputs: Vec<Vec<f64>> = (0..b_count)
                    .map(|b| (0..n).map(|i| 0.2 + 0.29 * ((i + 5 * b) % 11) as f64).collect())
                    .collect();
                let xs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
                for by_row in [true, false] {
                    let mut multi = vec![vec![0.0; n]; b_count];
                    c.product_multi(&xs, &mut multi, by_row);
                    for (b, x) in xs.iter().enumerate() {
                        let mut single = vec![0.0; n];
                        if by_row {
                            c.acc_mat_vec(x, &mut single);
                        } else {
                            c.acc_vec_mat(x, &mut single);
                        }
                        prop_assert_eq!(
                            &multi[b], &single,
                            "B={} rhs={} threads={} by_row={}", b_count, b, threads, by_row
                        );
                    }
                }
            }
        }
    }

    /// The same parity holds when the reachable set is a strict subset of
    /// the cross product (restricted MDD offsets).
    #[test]
    fn compiled_matches_walk_on_restrictions(
        e in expr(),
        keep in prop::collection::vec(any::<bool>(), 12),
    ) {
        let tuples: Vec<Vec<u32>> = (0..12usize)
            .filter(|&i| keep[i])
            .map(|i| vec![(i / 6) as u32, ((i / 2) % 3) as u32, (i % 2) as u32])
            .collect();
        prop_assume!(!tuples.is_empty());
        let reach = Mdd::from_tuples(SIZES.to_vec(), tuples).unwrap();
        let m = MdMatrix::new(e.to_md().unwrap(), reach).unwrap();
        let n = m.num_states();
        let x = probe(n);

        let mut walk_mv = vec![0.0; n];
        m.acc_mat_vec(&x, &mut walk_mv);
        let mut walk_vm = vec![0.0; n];
        m.acc_vec_mat(&x, &mut walk_vm);

        for threads in [1usize, 2, 4] {
            let c = CompiledMdMatrix::compile_with_threads(&m, threads);
            let mut mv = vec![0.0; n];
            c.acc_mat_vec(&x, &mut mv);
            prop_assert_eq!(&walk_mv, &mv);
            let mut vm = vec![0.0; n];
            c.acc_vec_mat(&x, &mut vm);
            prop_assert_eq!(&walk_vm, &vm);
        }
    }
}
