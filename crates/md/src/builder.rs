use std::collections::HashMap;

use crate::md::{validate_node, ChildId, Md, MdNode, NodeKey, Term};
use crate::{MdError, Result};

/// Bottom-up, hash-consing construction of a quasi-reduced [`Md`].
///
/// Nodes must be interned **bottom-up**: a node's formal sums may only
/// reference already-interned nodes one level below (the unit terminal at
/// the last level). Interning an equal node twice returns the existing
/// index, which is what keeps the MD quasi-reduced — the paper's
/// efficiency assumption ("at any level, no two nodes are equal").
///
/// # Example
///
/// ```
/// use mdl_md::{ChildId, MdBuilder, Term};
///
/// let mut b = MdBuilder::new(vec![2, 2])?;
/// // Bottom level: identity over S₂.
/// let id = b.intern_node(1, vec![
///     (0, 0, vec![Term::new(1.0, ChildId::Terminal)]),
///     (1, 1, vec![Term::new(1.0, ChildId::Terminal)]),
/// ])?;
/// // Root: cycle over S₁ referencing the identity.
/// let root = b.intern_node(0, vec![
///     (0, 1, vec![Term::new(3.0, ChildId::Node(id))]),
///     (1, 0, vec![Term::new(3.0, ChildId::Node(id))]),
/// ])?;
/// let md = b.finish(root)?;
/// assert_eq!(md.nodes_per_level(), vec![1, 1]);
/// # Ok::<(), mdl_md::MdError>(())
/// ```
#[derive(Debug)]
pub struct MdBuilder {
    sizes: Vec<usize>,
    levels: Vec<Vec<MdNode>>,
    unique: Vec<HashMap<NodeKey, u32>>,
    hits: mdl_obs::Counter,
    misses: mdl_obs::Counter,
}

impl MdBuilder {
    /// Creates a builder for an MD with the given local state-space sizes.
    ///
    /// # Errors
    ///
    /// [`MdError::InvalidShape`] if `sizes` is empty or contains zero.
    pub fn new(sizes: Vec<usize>) -> Result<Self> {
        if sizes.is_empty() || sizes.iter().any(|&s| s == 0 || s > u32::MAX as usize) {
            return Err(MdError::InvalidShape);
        }
        let l = sizes.len();
        Ok(MdBuilder {
            sizes,
            levels: vec![Vec::new(); l],
            unique: vec![HashMap::new(); l],
            hits: mdl_obs::counter("md.unique.hit"),
            misses: mdl_obs::counter("md.unique.miss"),
        })
    }

    /// Local state-space sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Interns a node at `level` built from raw `(row, col, formal sum)`
    /// triples (canonicalized; duplicates merged; zero terms dropped).
    /// Returns the node's index — the existing one if an equal node was
    /// already interned.
    ///
    /// # Errors
    ///
    /// * [`MdError::NoSuchLevel`] for a bad level;
    /// * [`MdError::IndexOutOfBounds`] for entries outside the level's
    ///   local state space;
    /// * [`MdError::BadChild`] for references to nodes that have not been
    ///   interned yet (or terminals above the last level);
    /// * [`MdError::InvalidCoefficient`] for non-finite coefficients.
    pub fn intern_node(
        &mut self,
        level: usize,
        entries: Vec<(u32, u32, Vec<Term>)>,
    ) -> Result<u32> {
        if level >= self.sizes.len() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.sizes.len(),
            });
        }
        let node = MdNode::from_raw(entries);
        let last = level == self.sizes.len() - 1;
        let next_count = if last {
            0
        } else {
            self.levels[level + 1].len()
        };
        validate_node(&node, level, self.sizes[level], last, next_count)?;
        let key = node.key();
        if let Some(&idx) = self.unique[level].get(&key) {
            self.hits.inc();
            return Ok(idx);
        }
        self.misses.inc();
        let idx = self.levels[level].len() as u32;
        self.levels[level].push(node);
        self.unique[level].insert(key, idx);
        Ok(idx)
    }

    /// Convenience: interns the identity node (1·terminal-chain on the
    /// diagonal) at `level`, referencing `child` below (ignored at the last
    /// level, where the terminal is used).
    ///
    /// # Errors
    ///
    /// As for [`MdBuilder::intern_node`].
    pub fn intern_identity(&mut self, level: usize, child: ChildId) -> Result<u32> {
        if level >= self.sizes.len() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.sizes.len(),
            });
        }
        let last = level == self.sizes.len() - 1;
        let c = if last { ChildId::Terminal } else { child };
        let entries = (0..self.sizes[level] as u32)
            .map(|s| (s, s, vec![Term::new(1.0, c)]))
            .collect();
        self.intern_node(level, entries)
    }

    /// Finalizes the MD with `root` (a level-0 node index) as the root:
    /// prunes nodes unreachable from the root and renumbers.
    ///
    /// # Errors
    ///
    /// [`MdError::NoSuchRoot`] if `root` was never interned.
    pub fn finish(self, root: u32) -> Result<Md> {
        let num_levels = self.sizes.len();
        if (root as usize) >= self.levels[0].len() {
            return Err(MdError::NoSuchRoot { index: root });
        }
        // Reachability from the root.
        let mut keep: Vec<Vec<bool>> = self
            .levels
            .iter()
            .map(|nodes| vec![false; nodes.len()])
            .collect();
        keep[0][root as usize] = true;
        for l in 0..num_levels - 1 {
            for (i, node) in self.levels[l].iter().enumerate() {
                if !keep[l][i] {
                    continue;
                }
                for e in node.entries() {
                    for t in &e.terms {
                        if let ChildId::Node(n) = t.child {
                            keep[l + 1][n as usize] = true;
                        }
                    }
                }
            }
        }
        // Renumber, putting the root first at level 0.
        let mut remap: Vec<Vec<u32>> = Vec::with_capacity(num_levels);
        for (l, k) in keep.iter().enumerate() {
            let mut map = vec![u32::MAX; k.len()];
            let mut next = 0u32;
            if l == 0 {
                map[root as usize] = 0;
                next = 1;
            }
            for (i, &kept) in k.iter().enumerate() {
                if kept && map[i] == u32::MAX {
                    map[i] = next;
                    next += 1;
                }
            }
            remap.push(map);
        }
        let mut levels: Vec<Vec<MdNode>> = Vec::with_capacity(num_levels);
        for (l, nodes) in self.levels.into_iter().enumerate() {
            let mut kept: Vec<(u32, MdNode)> = nodes
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| keep[l][i])
                .map(|(i, node)| {
                    let rewritten = node
                        .entries()
                        .iter()
                        .map(|e| {
                            let terms = e
                                .terms
                                .iter()
                                .map(|t| {
                                    let child = match t.child {
                                        ChildId::Node(n) => ChildId::Node(remap[l + 1][n as usize]),
                                        c => c,
                                    };
                                    Term {
                                        coef: t.coef,
                                        child,
                                    }
                                })
                                .collect();
                            (e.row, e.col, terms)
                        })
                        .collect();
                    (remap[l][i], MdNode::from_raw(rewritten))
                })
                .collect();
            kept.sort_by_key(|&(i, _)| i);
            levels.push(kept.into_iter().map(|(_, n)| n).collect());
        }
        Ok(Md::pack(self.sizes, levels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let a = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        let c = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn forward_reference_rejected() {
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let err = b
            .intern_node(0, vec![(0, 0, vec![Term::new(1.0, ChildId::Node(0))])])
            .unwrap_err();
        assert!(matches!(err, MdError::BadChild { .. }));
    }

    #[test]
    fn terminal_above_last_level_rejected() {
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let err = b
            .intern_node(0, vec![(0, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap_err();
        assert!(matches!(err, MdError::BadChild { .. }));
    }

    #[test]
    fn node_reference_at_last_level_rejected() {
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let _ = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        let err = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.0, ChildId::Node(0))])])
            .unwrap_err();
        assert!(matches!(err, MdError::BadChild { .. }));
    }

    #[test]
    fn out_of_bounds_entry_rejected() {
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let err = b
            .intern_node(1, vec![(5, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap_err();
        assert!(matches!(err, MdError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn unreachable_nodes_pruned() {
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let used = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        let _unused = b
            .intern_node(1, vec![(1, 1, vec![Term::new(9.0, ChildId::Terminal)])])
            .unwrap();
        let root = b
            .intern_node(0, vec![(0, 1, vec![Term::new(1.0, ChildId::Node(used))])])
            .unwrap();
        let md = b.finish(root).unwrap();
        assert_eq!(md.nodes_per_level(), vec![1, 1]);
    }

    #[test]
    fn identity_helper() {
        let mut b = MdBuilder::new(vec![3, 3]).unwrap();
        let bottom = b.intern_identity(1, ChildId::Terminal).unwrap();
        let root = b.intern_identity(0, ChildId::Node(bottom)).unwrap();
        let md = b.finish(root).unwrap();
        assert_eq!(md.node_ref(md.root()).num_entries(), 3);
    }

    #[test]
    fn bad_root_rejected() {
        let b = MdBuilder::new(vec![2]).unwrap();
        assert!(matches!(b.finish(0), Err(MdError::NoSuchRoot { .. })));
    }

    #[test]
    fn single_level_md() {
        let mut b = MdBuilder::new(vec![3]).unwrap();
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 1, vec![Term::new(1.0, ChildId::Terminal)]),
                    (1, 2, vec![Term::new(2.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();
        assert_eq!(md.num_levels(), 1);
        assert_eq!(md.node_ref(md.root()).num_entries(), 2);
    }
}
