//! Canonical matrix diagrams (after Miner \[15\], cited in Section 4 of
//! the paper).
//!
//! Plain quasi-reduction only merges *identical* nodes, so two nodes that
//! represent scalar multiples of the same matrix stay distinct — and the
//! paper notes its formal-sum condition is consequently only sufficient:
//! `R_{n} = R_{n′} ⇔ n = n′` "does not necessarily hold for an arbitrary
//! MD", while "canonical MDs are a particular subclass … in which the
//! expression is true" (for scale classes). Canonicalization normalizes
//! every non-root node so its lexicographically first coefficient is `1`,
//! pushing the scale into the referencing arcs; hash-consing then merges
//! scale-multiples, which can only improve the lumping algorithm's
//! formal-sum keys.

use std::collections::HashMap;

use crate::md::{canonicalize_terms, ChildId, Md, MdNode, MdNodeId, NodeKey, Term};

impl Md {
    /// Rebuilds the MD in canonical (scale-normalized) form: every node
    /// except the root is scaled so that the coefficient of the first term
    /// of its first entry is `1`, with the scale folded into the parents'
    /// arc coefficients; equal-up-to-scale nodes then intern together.
    ///
    /// The represented matrix is unchanged. Returns the canonical MD and
    /// the number of nodes eliminated relative to `self`.
    pub fn canonicalize(&self) -> (Md, usize) {
        let num_levels = self.num_levels();
        let mut new_levels: Vec<Vec<MdNode>> = vec![Vec::new(); num_levels];
        // Per level: old index -> (new index, scale σ such that
        // old node == σ · new node).
        let mut remap: Vec<Vec<(u32, f64)>> = vec![Vec::new(); num_levels];

        for level in (0..num_levels).rev() {
            let mut unique: HashMap<NodeKey, u32> = HashMap::new();
            let mut level_map = Vec::with_capacity(self.num_nodes_at(level));
            for i in 0..self.num_nodes_at(level) {
                let node = self.node_ref(MdNodeId {
                    level: level as u32,
                    index: i as u32,
                });
                // Rewrite terms through the children's remapping, folding
                // each child's scale into the arc coefficient.
                let mut raw: Vec<(u32, u32, Vec<Term>)> = node
                    .entries()
                    .map(|e| {
                        let terms = e
                            .terms()
                            .map(|t| match t.child {
                                ChildId::Terminal => t,
                                ChildId::Node(n) => {
                                    let (idx, scale) = remap[level + 1][n as usize];
                                    Term::new(t.coef * scale, ChildId::Node(idx))
                                }
                            })
                            .collect();
                        (e.row(), e.col(), terms)
                    })
                    .collect();
                // Canonical scale: the first coefficient of the first
                // entry after canonical term ordering. The root keeps
                // scale 1 (nothing references it to absorb the factor).
                for (_, _, terms) in raw.iter_mut() {
                    canonicalize_terms(terms);
                }
                raw.sort_by_key(|&(r, c, _)| (r, c));
                raw.retain(|(_, _, terms)| !terms.is_empty());
                let sigma = if level == 0 {
                    1.0
                } else {
                    raw.first()
                        .and_then(|(_, _, t)| t.first())
                        .map_or(1.0, |t| t.coef)
                };
                let sigma = if sigma == 0.0 { 1.0 } else { sigma };
                let scaled: Vec<(u32, u32, Vec<Term>)> = raw
                    .into_iter()
                    .map(|(r, c, terms)| {
                        (
                            r,
                            c,
                            terms
                                .into_iter()
                                .map(|t| Term::new(t.coef / sigma, t.child))
                                .collect(),
                        )
                    })
                    .collect();
                let canon = MdNode::new(scaled);
                let key = canon.key();
                let idx = *unique.entry(key).or_insert_with(|| {
                    new_levels[level].push(canon);
                    (new_levels[level].len() - 1) as u32
                });
                level_map.push((idx, sigma));
            }
            remap[level] = level_map;
        }

        let removed = self.num_nodes() - new_levels.iter().map(Vec::len).sum::<usize>();
        (Md::pack(self.sizes.clone(), new_levels), removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::MdMatrix;
    use crate::builder::MdBuilder;
    use crate::kronecker::{KroneckerExpr, SparseFactor};
    use mdl_mdd::Mdd;

    #[test]
    fn scale_multiples_merge() {
        // Two bottom nodes that are scalar multiples of each other.
        let mut b = MdBuilder::new(vec![2, 2]).unwrap();
        let small = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(1.0, ChildId::Terminal)]),
                    (1, 0, vec![Term::new(2.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let big = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(3.0, ChildId::Terminal)]),
                    (1, 0, vec![Term::new(6.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        assert_ne!(small, big);
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 0, vec![Term::new(1.0, ChildId::Node(small))]),
                    (1, 1, vec![Term::new(5.0, ChildId::Node(big))]),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();
        assert_eq!(md.nodes_per_level(), vec![1, 2]);

        let (canon, removed) = md.canonicalize();
        assert_eq!(removed, 1);
        assert_eq!(canon.nodes_per_level(), vec![1, 1]);

        // Represented matrix unchanged.
        let full = Mdd::full(vec![2, 2]).unwrap();
        let a = MdMatrix::new(md, full.clone()).unwrap().flatten();
        let c = MdMatrix::new(canon, full).unwrap().flatten();
        assert!(a.max_abs_diff(&c) < 1e-12);
    }

    #[test]
    fn already_canonical_is_idempotent() {
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        let mut f = SparseFactor::new(3);
        f.push(0, 1, 1.0);
        f.push(1, 2, 0.5);
        expr.add_term(2.0, vec![None, Some(f)]);
        let md = expr.to_md().unwrap();
        let (c1, _) = md.canonicalize();
        let (c2, removed) = c1.canonicalize();
        assert_eq!(removed, 0);
        assert_eq!(c1.nodes_per_level(), c2.nodes_per_level());
        let full = Mdd::full(vec![2, 3]).unwrap();
        assert_eq!(
            MdMatrix::new(c1, full.clone())
                .unwrap()
                .flatten()
                .max_abs_diff(&MdMatrix::new(c2, full).unwrap().flatten()),
            0.0
        );
    }

    #[test]
    fn root_scale_is_preserved() {
        // A 1-level MD: the root cannot push its scale anywhere; its
        // entries must be preserved verbatim.
        let mut b = MdBuilder::new(vec![3]).unwrap();
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 1, vec![Term::new(4.0, ChildId::Terminal)]),
                    (1, 2, vec![Term::new(8.0, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();
        let (canon, _) = md.canonicalize();
        let full = Mdd::full(vec![3]).unwrap();
        let a = MdMatrix::new(md, full.clone()).unwrap().flatten();
        let c = MdMatrix::new(canon, full).unwrap().flatten();
        assert_eq!(a.max_abs_diff(&c), 0.0);
        assert_eq!(a.get(0, 1), 4.0);
    }

    #[test]
    fn deep_scale_chains_collapse() {
        // Scale differences at the bottom propagate up: nodes that become
        // scale-multiples only after their children merge also collapse.
        let mut b = MdBuilder::new(vec![2, 2, 2]).unwrap();
        let bot_a = b
            .intern_node(2, vec![(0, 1, vec![Term::new(1.0, ChildId::Terminal)])])
            .unwrap();
        let bot_b = b
            .intern_node(2, vec![(0, 1, vec![Term::new(2.0, ChildId::Terminal)])])
            .unwrap();
        let mid_a = b
            .intern_node(1, vec![(0, 0, vec![Term::new(3.0, ChildId::Node(bot_a))])])
            .unwrap();
        let mid_b = b
            .intern_node(1, vec![(0, 0, vec![Term::new(1.5, ChildId::Node(bot_b))])])
            .unwrap();
        // mid_a = 3·bot_a-block, mid_b = 1.5·(2·bot_a-block) = 3·bot_a-block:
        // equal matrices, different structure.
        assert_ne!(mid_a, mid_b);
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 0, vec![Term::new(1.0, ChildId::Node(mid_a))]),
                    (1, 1, vec![Term::new(1.0, ChildId::Node(mid_b))]),
                ],
            )
            .unwrap();
        let md = b.finish(root).unwrap();
        assert_eq!(md.nodes_per_level(), vec![1, 2, 2]);
        let (canon, removed) = md.canonicalize();
        assert_eq!(canon.nodes_per_level(), vec![1, 1, 1]);
        assert_eq!(removed, 2);
        let full = Mdd::full(vec![2, 2, 2]).unwrap();
        assert_eq!(
            MdMatrix::new(md, full.clone())
                .unwrap()
                .flatten()
                .max_abs_diff(&MdMatrix::new(canon, full).unwrap().flatten()),
            0.0
        );
    }
}
