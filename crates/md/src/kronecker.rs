use std::collections::HashMap;

use mdl_linalg::{CooMatrix, CsrMatrix};

use crate::builder::MdBuilder;
use crate::md::{ChildId, Md, Term};
use crate::Result;

/// A sparse local matrix `W` over one level's local state space — one
/// Kronecker factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseFactor {
    size: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl SparseFactor {
    /// Creates an empty (all-zero) `size` × `size` factor.
    pub fn new(size: usize) -> Self {
        SparseFactor {
            size,
            entries: Vec::new(),
        }
    }

    /// The explicit identity factor.
    pub fn identity(size: usize) -> Self {
        SparseFactor {
            size,
            entries: (0..size as u32).map(|s| (s, s, 1.0)).collect(),
        }
    }

    /// Local state-space size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Appends an entry (duplicates are summed when the factor is used).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices or non-finite values.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.size && col < self.size,
            "factor entry out of bounds"
        );
        assert!(value.is_finite(), "factor values must be finite");
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
    }

    /// Stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Canonical form: sorted by position with duplicates summed and zeros
    /// dropped.
    fn canonical(&self) -> Vec<(u32, u32, f64)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(u32, u32, f64)> = Vec::with_capacity(v.len());
        for (r, c, val) in v {
            if let Some(last) = out.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += val;
                    continue;
                }
            }
            out.push((r, c, val));
        }
        out.retain(|&(_, _, v)| v != 0.0);
        out
    }

    /// Converts to a flat sparse matrix.
    pub fn to_csr(&self) -> CsrMatrix {
        let canonical = self.canonical();
        let mut coo = CooMatrix::with_capacity(self.size, self.size, canonical.len());
        for (r, c, v) in canonical {
            coo.push(r as usize, c as usize, v);
        }
        coo.to_csr()
    }

    /// Scales all entries by `a`, in place.
    fn scale(&mut self, a: f64) {
        for e in self.entries.iter_mut() {
            e.2 *= a;
        }
    }

    /// Adds another factor's entries into this one.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    fn add_assign(&mut self, other: &SparseFactor) {
        assert_eq!(self.size, other.size, "factor size mismatch");
        self.entries.extend(other.entries.iter().copied());
    }
}

/// One term `rate · (F₁ ⊗ … ⊗ F_L)` of a Kronecker expression. `None`
/// factors are identities (the common case for levels an event does not
/// touch).
#[derive(Debug, Clone, PartialEq)]
pub struct KroneckerTerm {
    /// The scalar rate `λ_e`.
    pub rate: f64,
    /// One optional factor per level; `None` means identity.
    pub factors: Vec<Option<SparseFactor>>,
}

/// A sum of Kronecker-product terms `R = Σ_e λ_e ⊗_i W_i^e` — the block
/// structure compositional Markov models produce, and the natural input
/// from which matrix diagrams are generated.
#[derive(Debug, Clone, PartialEq)]
pub struct KroneckerExpr {
    sizes: Vec<usize>,
    terms: Vec<KroneckerTerm>,
}

impl KroneckerExpr {
    /// Creates an empty expression over local state spaces of the given
    /// sizes.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains zero.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(
            !sizes.is_empty() && sizes.iter().all(|&s| s > 0),
            "invalid shape"
        );
        KroneckerExpr {
            sizes,
            terms: Vec::new(),
        }
    }

    /// Local state-space sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The terms.
    pub fn terms(&self) -> &[KroneckerTerm] {
        &self.terms
    }

    /// Appends a term `rate · ⊗_i factors[i]` (with `None` = identity).
    ///
    /// # Panics
    ///
    /// Panics if the arity or any factor size is wrong, or the rate is not
    /// finite.
    pub fn add_term(&mut self, rate: f64, factors: Vec<Option<SparseFactor>>) {
        assert!(rate.is_finite(), "rate must be finite");
        assert_eq!(factors.len(), self.sizes.len(), "one factor slot per level");
        for (l, f) in factors.iter().enumerate() {
            if let Some(f) = f {
                assert_eq!(f.size(), self.sizes[l], "factor size mismatch at level {l}");
            }
        }
        if rate != 0.0 {
            self.terms.push(KroneckerTerm { rate, factors });
        }
    }

    /// Term aggregation: merges terms that are identical at every level
    /// except one, summing `rate · W` into a single factor at the
    /// differing level (rate becomes 1). Repeated to a fixed point over
    /// levels.
    ///
    /// This is the preprocessing that keeps the number of MD nodes per
    /// level small (the single-digit `N_i` column of the paper's Table 1):
    /// for example, the per-server service events of the tandem model—
    /// identical at the pool and MSMQ levels — collapse into one term whose
    /// hypercube factor is the sum of the per-server factors.
    pub fn aggregate(&self) -> KroneckerExpr {
        let mut terms = self.terms.clone();
        loop {
            let before = terms.len();
            for level in 0..self.sizes.len() {
                terms = aggregate_at_level(&self.sizes, terms, level);
            }
            if terms.len() == before {
                break;
            }
        }
        KroneckerExpr {
            sizes: self.sizes.clone(),
            terms,
        }
    }

    /// Builds the quasi-reduced MD representing this expression.
    ///
    /// Each term contributes a chain of single-term nodes (suffix sharing
    /// makes identical tails — typically identity tails — collapse), and
    /// the root's formal sums merge all terms (Section 3's
    /// Kronecker-as-MD construction).
    ///
    /// # Errors
    ///
    /// Propagates [`MdError`](crate::MdError) from the builder (cannot occur for
    /// expressions built through the validated `add_term`).
    pub fn to_md(&self) -> Result<Md> {
        let mut builder = MdBuilder::new(self.sizes.clone())?;
        let num_levels = self.sizes.len();

        // Root entries accumulate formal sums over all terms.
        let mut root: HashMap<(u32, u32), Vec<Term>> = HashMap::new();
        for term in &self.terms {
            // Build the suffix chain bottom-up for levels 1..L−1 (0-based).
            let mut child = ChildId::Terminal;
            for level in (1..num_levels).rev() {
                let idx = match &term.factors[level] {
                    None => builder.intern_identity(level, child)?,
                    Some(f) => {
                        let entries = f
                            .canonical()
                            .into_iter()
                            .map(|(r, c, v)| (r, c, vec![Term::new(v, child)]))
                            .collect();
                        builder.intern_node(level, entries)?
                    }
                };
                child = ChildId::Node(idx);
            }
            // Top-level factor values, scaled by the rate, into the root.
            let top = match &term.factors[0] {
                None => SparseFactor::identity(self.sizes[0]).canonical(),
                Some(f) => f.canonical(),
            };
            for (r, c, v) in top {
                root.entry((r, c))
                    .or_default()
                    .push(Term::new(term.rate * v, child));
            }
        }
        // An empty expression yields an empty (zero-matrix) root node,
        // which is a structurally valid MD.
        let root_entries = root
            .into_iter()
            .map(|((r, c), terms)| (r, c, terms))
            .collect();
        let root_idx = builder.intern_node(0, root_entries)?;
        builder.finish(root_idx)
    }

    /// The explicit flat matrix over the **full product** space, computed
    /// directly from the Kronecker structure (no MD involved) — the
    /// independent baseline MDs are verified against.
    pub fn flatten_full(&self) -> CsrMatrix {
        let n: usize = self.sizes.iter().product();
        let flats: Vec<CsrMatrix> = self
            .terms
            .iter()
            .map(|term| {
                let factors: Vec<CsrMatrix> = term
                    .factors
                    .iter()
                    .enumerate()
                    .map(|(l, f)| match f {
                        None => CsrMatrix::identity(self.sizes[l]),
                        Some(f) => f.to_csr(),
                    })
                    .collect();
                mdl_linalg::kron_many(term.rate, &factors)
            })
            .collect();
        let nnz = flats.iter().map(CsrMatrix::nnz).sum();
        let mut acc = CooMatrix::with_capacity(n, n, nnz);
        for flat in &flats {
            acc.extend(flat.iter());
        }
        acc.to_csr()
    }
}

/// Canonical key of a factor slot for aggregation grouping.
type FactorKey = Option<Vec<(u32, u32, u64)>>;

fn factor_key(f: &Option<SparseFactor>) -> FactorKey {
    f.as_ref().map(|f| {
        f.canonical()
            .into_iter()
            .map(|(r, c, v)| (r, c, v.to_bits()))
            .collect()
    })
}

fn aggregate_at_level(
    sizes: &[usize],
    terms: Vec<KroneckerTerm>,
    level: usize,
) -> Vec<KroneckerTerm> {
    // Group by (rate-normalized) factors at all other levels. Rates are
    // folded into the aggregated level, so grouping ignores the rate.
    let mut groups: HashMap<Vec<FactorKey>, Vec<KroneckerTerm>> = HashMap::new();
    let mut order: Vec<Vec<FactorKey>> = Vec::new();
    for term in terms {
        let key: Vec<FactorKey> = term
            .factors
            .iter()
            .enumerate()
            .filter(|&(l, _)| l != level)
            .map(|(_, f)| factor_key(f))
            .collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(term);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let group = groups.remove(&key).expect("group present");
        if group.len() == 1 {
            out.extend(group);
            continue;
        }
        // Merge: Σ_e rate_e · W_level^e as a single unit-rate factor.
        let mut merged = SparseFactor::new(sizes[level]);
        for t in &group {
            let mut f = match &t.factors[level] {
                None => SparseFactor::identity(sizes[level]),
                Some(f) => f.clone(),
            };
            f.scale(t.rate);
            merged.add_assign(&f);
        }
        let mut factors = group[0].factors.clone();
        factors[level] = Some(SparseFactor {
            size: merged.size,
            entries: merged.canonical(),
        });
        out.push(KroneckerTerm { rate: 1.0, factors });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    #[test]
    fn single_term_md_structure() {
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(2.0, vec![Some(cycle(2, 1.0)), None]);
        let md = expr.to_md().unwrap();
        assert_eq!(md.nodes_per_level(), vec![1, 1]);
        // Root has the two cycle entries; coefficients carry the rate.
        let root = md.node_ref(md.root());
        assert_eq!(root.num_entries(), 2);
        assert_eq!(
            root.entries().next().unwrap().terms().next().unwrap().coef,
            2.0
        );
    }

    #[test]
    fn identity_suffixes_shared_across_terms() {
        // Two terms touching only level 1: identity tails at level 2 are
        // shared, so level 2 has a single node.
        let mut expr = KroneckerExpr::new(vec![2, 4]);
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None]);
        expr.add_term(3.0, vec![Some(cycle(2, 2.0)), None]);
        let md = expr.to_md().unwrap();
        assert_eq!(md.nodes_per_level(), vec![1, 1]);
    }

    #[test]
    fn distinct_suffixes_make_distinct_nodes() {
        let mut expr = KroneckerExpr::new(vec![2, 2]);
        expr.add_term(1.0, vec![None, Some(cycle(2, 1.0))]);
        expr.add_term(1.0, vec![None, Some(cycle(2, 5.0))]);
        let md = expr.to_md().unwrap();
        assert_eq!(md.nodes_per_level()[1], 2);
    }

    #[test]
    fn aggregation_merges_same_context_terms() {
        // Two events differing only at level 1 merge into one term.
        let mut expr = KroneckerExpr::new(vec![3, 2]);
        let mut a = SparseFactor::new(3);
        a.push(0, 1, 1.0);
        let mut b = SparseFactor::new(3);
        b.push(1, 2, 1.0);
        expr.add_term(2.0, vec![Some(a), None]);
        expr.add_term(5.0, vec![Some(b), None]);
        let agg = expr.aggregate();
        assert_eq!(agg.terms().len(), 1);
        // Flat semantics unchanged.
        assert_eq!(expr.flatten_full().max_abs_diff(&agg.flatten_full()), 0.0);
    }

    #[test]
    fn aggregation_respects_differing_contexts() {
        let mut expr = KroneckerExpr::new(vec![2, 2]);
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None]);
        expr.add_term(1.0, vec![None, Some(cycle(2, 1.0))]);
        // Differ at *two* levels (identity vs cycle at both): in fact these
        // differ at level 0 AND level 1, so they cannot merge at a single
        // level... but folding rate into the identity-is-explicit factor
        // can: term1 = (C ⊗ I), term2 = (I ⊗ C). Grouping at level 0 keys
        // on level-1 factors (None vs Some(C)): different; at level 1 keys
        // on level-0 factors (Some(C) vs None): different. No merge.
        let agg = expr.aggregate();
        assert_eq!(agg.terms().len(), 2);
        assert_eq!(expr.flatten_full().max_abs_diff(&agg.flatten_full()), 0.0);
    }

    #[test]
    fn aggregated_md_has_fewer_or_equal_nodes() {
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        let mut a = SparseFactor::new(3);
        a.push(0, 1, 1.0);
        let mut b = SparseFactor::new(3);
        b.push(1, 0, 4.0);
        expr.add_term(1.0, vec![None, Some(a)]);
        expr.add_term(1.0, vec![None, Some(b)]);
        let plain = expr.to_md().unwrap();
        let agg = expr.aggregate().to_md().unwrap();
        assert!(agg.num_nodes() <= plain.num_nodes());
        assert_eq!(agg.nodes_per_level()[1], 1);
    }

    #[test]
    fn flatten_full_matches_kron_manual() {
        let mut expr = KroneckerExpr::new(vec![2, 2]);
        expr.add_term(2.0, vec![Some(cycle(2, 1.0)), Some(cycle(2, 3.0))]);
        let flat = expr.flatten_full();
        // Entry ((0,0),(1,1)) = 2·1·3 = 6 at flat position (0, 3).
        assert_eq!(flat.get(0, 3), 6.0);
        assert_eq!(flat.get(3, 0), 6.0);
        assert_eq!(flat.nnz(), 4);
    }

    #[test]
    fn zero_rate_terms_dropped() {
        let mut expr = KroneckerExpr::new(vec![2]);
        expr.add_term(0.0, vec![Some(cycle(2, 1.0))]);
        assert!(expr.terms().is_empty());
    }

    #[test]
    fn factor_identity_round_trip() {
        let id = SparseFactor::identity(3);
        let csr = id.to_csr();
        for i in 0..3 {
            assert_eq!(csr.get(i, i), 1.0);
        }
        assert_eq!(csr.nnz(), 3);
    }
}
