//! The paper's Section 3 level-merging constructions.
//!
//! Merging is the formal device the paper uses to reduce an `L`-level MD
//! to a 3-level one so that the lumpability proofs can focus on a single
//! level ("the implementation of the algorithm does not perform any
//! merging operation" — same here: these are reference operations used by
//! tests and by the expanded-key ablation, not by the lumping algorithm).

use std::collections::HashMap;

use crate::md::{ChildId, Md, MdNode, MdNodeId, Term};
use crate::{MdError, Result};

impl Md {
    /// **Bottom-up merge** (Section 3): replaces levels `level..L` by a
    /// single level over the product of their local state spaces; each
    /// node at `level` becomes a real-valued matrix (all formal sums
    /// terminate). Levels above `level` are unchanged, including node
    /// indices, so parents' references stay valid.
    ///
    /// # Errors
    ///
    /// [`MdError::NoSuchLevel`] if `level` is out of range.
    pub fn merge_bottom(&self, level: usize) -> Result<Md> {
        if level >= self.num_levels() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.num_levels(),
            });
        }
        if level == self.num_levels() - 1 {
            return Ok(self.clone());
        }
        let below: usize = self.sizes[level + 1..].iter().product();
        let merged_size = self.sizes[level] * below;

        let mut memo: HashMap<MdNodeId, Vec<(u64, u64, f64)>> = HashMap::new();
        let merged_nodes: Vec<MdNode> = (0..self.num_nodes_at(level) as u32)
            .map(|i| {
                let triples = expand_entries(
                    self,
                    MdNodeId {
                        level: level as u32,
                        index: i,
                    },
                    &mut memo,
                );
                MdNode::new(
                    triples
                        .iter()
                        .map(|&(r, c, v)| {
                            (r as u32, c as u32, vec![Term::new(v, ChildId::Terminal)])
                        })
                        .collect(),
                )
            })
            .collect();

        let mut sizes = self.sizes[..level].to_vec();
        sizes.push(merged_size);
        let mut levels: Vec<Vec<MdNode>> = (0..level).map(|l| self.level_nodes(l)).collect();
        levels.push(merged_nodes);
        Ok(Md::pack(sizes, levels))
    }

    /// **Top-down merge** (Section 3): replaces levels `0..=level` by a
    /// single root level over the product of their local state spaces,
    /// whose formal sums reference the (unchanged) nodes at `level + 1`.
    ///
    /// # Errors
    ///
    /// [`MdError::NoSuchLevel`] if `level` is the last level or out of
    /// range (the root must still reference something below).
    pub fn merge_top(&self, level: usize) -> Result<Md> {
        if level + 1 >= self.num_levels() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.num_levels(),
            });
        }
        if level == 0 {
            return Ok(self.clone());
        }
        let merged_size: usize = self.sizes[..=level].iter().product();

        // Accumulate root entries by walking all prefix paths.
        let mut acc: HashMap<(u64, u64), Vec<Term>> = HashMap::new();
        self.walk_prefix(0, 0, 0, 0, 1.0, level, &mut acc);

        let root = MdNode::new(
            acc.into_iter()
                .map(|((r, c), terms)| (r as u32, c as u32, terms))
                .collect(),
        );
        let mut sizes = vec![merged_size];
        sizes.extend_from_slice(&self.sizes[level + 1..]);
        let mut levels = vec![vec![root]];
        levels.extend((level + 1..self.num_levels()).map(|l| self.level_nodes(l)));
        Ok(Md::pack(sizes, levels))
    }

    /// The paper's 3-level view around `level`: all levels above merged
    /// into one, all levels below merged into one. (The paper pads with
    /// artificial unit levels when `level` is outermost; here the result
    /// simply has 2 levels in those cases.)
    ///
    /// # Errors
    ///
    /// [`MdError::NoSuchLevel`] if `level` is out of range.
    pub fn three_level_view(&self, level: usize) -> Result<Md> {
        if level >= self.num_levels() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.num_levels(),
            });
        }
        // Merge bottom first (indices above are unaffected), then the top.
        let bottom_merged = if level + 1 < self.num_levels() {
            self.merge_bottom(level + 1)?
        } else {
            self.clone()
        };
        if level >= 1 {
            bottom_merged.merge_top(level - 1)
        } else {
            Ok(bottom_merged)
        }
    }

    /// Recursively enumerates prefix paths through levels `0..=last`,
    /// accumulating `(packed row, packed col) → Σ coef · child` sums.
    #[allow(clippy::too_many_arguments)]
    fn walk_prefix(
        &self,
        level: usize,
        node: u32,
        row_acc: u64,
        col_acc: u64,
        coef: f64,
        last: usize,
        acc: &mut HashMap<(u64, u64), Vec<Term>>,
    ) {
        let node_ref = self.node_ref(MdNodeId {
            level: level as u32,
            index: node,
        });
        for e in node_ref.entries() {
            let r = row_acc * self.sizes[level] as u64 + e.row() as u64;
            let c = col_acc * self.sizes[level] as u64 + e.col() as u64;
            for t in e.terms() {
                if level == last {
                    acc.entry((r, c))
                        .or_default()
                        .push(Term::new(coef * t.coef, t.child));
                } else {
                    let ChildId::Node(n) = t.child else {
                        unreachable!("terminal above last level")
                    };
                    self.walk_prefix(level + 1, n, r, c, coef * t.coef, last, acc);
                }
            }
        }
    }
}

/// Expands the sub-MD rooted at `node` into flat `(row, col, value)`
/// triples over the product of its level and everything below.
fn expand_entries(
    md: &Md,
    node: MdNodeId,
    memo: &mut HashMap<MdNodeId, Vec<(u64, u64, f64)>>,
) -> Vec<(u64, u64, f64)> {
    if let Some(t) = memo.get(&node) {
        return t.clone();
    }
    let level = node.level as usize;
    let below: u64 = md.sizes()[level + 1..].iter().product::<usize>() as u64;
    let mut out: Vec<(u64, u64, f64)> = Vec::new();
    for e in md.node_ref(node).entries() {
        for t in e.terms() {
            match t.child {
                ChildId::Terminal => out.push((e.row() as u64, e.col() as u64, t.coef)),
                ChildId::Node(n) => {
                    let child = expand_entries(
                        md,
                        MdNodeId {
                            level: node.level + 1,
                            index: n,
                        },
                        memo,
                    );
                    for &(r, c, v) in &child {
                        out.push((
                            e.row() as u64 * below + r,
                            e.col() as u64 * below + c,
                            t.coef * v,
                        ));
                    }
                }
            }
        }
    }
    // Canonicalize: merge duplicate positions.
    out.sort_unstable_by_key(|&(r, c, _)| (r, c));
    out.dedup_by(|a, b| {
        if a.0 == b.0 && a.1 == b.1 {
            b.2 += a.2;
            true
        } else {
            false
        }
    });
    out.retain(|&(_, _, v)| v != 0.0);
    memo.insert(node, out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::MdMatrix;
    use crate::kronecker::{KroneckerExpr, SparseFactor};
    use mdl_mdd::Mdd;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    fn three_level_md() -> (Md, Vec<usize>) {
        let sizes = vec![2usize, 3, 2];
        let mut expr = KroneckerExpr::new(sizes.clone());
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None, None]);
        expr.add_term(2.0, vec![None, Some(cycle(3, 1.0)), None]);
        expr.add_term(0.5, vec![None, Some(cycle(3, 2.0)), Some(cycle(2, 1.0))]);
        (expr.to_md().unwrap(), sizes)
    }

    fn flat(md: &Md) -> mdl_linalg::CsrMatrix {
        let full = Mdd::full(md.sizes().to_vec()).unwrap();
        MdMatrix::new(md.clone(), full).unwrap().flatten()
    }

    #[test]
    fn merge_bottom_preserves_matrix() {
        let (md, _) = three_level_md();
        for level in 0..3 {
            let merged = md.merge_bottom(level).unwrap();
            assert_eq!(merged.num_levels(), level + 1);
            assert_eq!(flat(&md).max_abs_diff(&flat(&merged)), 0.0, "level {level}");
        }
    }

    #[test]
    fn merge_top_preserves_matrix() {
        let (md, _) = three_level_md();
        for level in 0..2 {
            let merged = md.merge_top(level).unwrap();
            assert_eq!(merged.num_levels(), 3 - level);
            assert_eq!(flat(&md).max_abs_diff(&flat(&merged)), 0.0, "level {level}");
        }
    }

    #[test]
    fn three_level_view_preserves_matrix_and_shape() {
        let (md, sizes) = three_level_md();
        for (level, &size) in sizes.iter().enumerate() {
            let view = md.three_level_view(level).unwrap();
            assert!(view.num_levels() <= 3);
            assert_eq!(flat(&md).max_abs_diff(&flat(&view)), 0.0, "level {level}");
            // The focal level's local space is unchanged.
            let focal = if level == 0 { 0 } else { 1 };
            assert_eq!(view.sizes()[focal], size);
        }
    }

    #[test]
    fn merged_view_keeps_focal_nodes_verbatim() {
        // Merging below does not touch the focal level's nodes, so local
        // lumping conditions are literally the same (the reduction step of
        // the paper's proofs).
        let (md, _) = three_level_md();
        let view = md.merge_bottom(2).unwrap(); // no-op (last level)
        assert_eq!(view.nodes_per_level(), md.nodes_per_level());
        let view = md.merge_bottom(1).unwrap();
        assert_eq!(view.nodes_per_level()[0], md.nodes_per_level()[0]);
        assert_eq!(view.nodes_per_level()[1], md.nodes_per_level()[1]);
    }

    #[test]
    fn out_of_range_levels_rejected() {
        let (md, _) = three_level_md();
        assert!(matches!(
            md.merge_bottom(7),
            Err(MdError::NoSuchLevel { .. })
        ));
        assert!(matches!(md.merge_top(2), Err(MdError::NoSuchLevel { .. })));
        assert!(matches!(
            md.three_level_view(9),
            Err(MdError::NoSuchLevel { .. })
        ));
    }

    #[test]
    fn merge_bottom_of_root_gives_flat_single_level() {
        let (md, sizes) = three_level_md();
        let merged = md.merge_bottom(0).unwrap();
        assert_eq!(merged.num_levels(), 1);
        assert_eq!(merged.sizes()[0], sizes.iter().product::<usize>());
        // Its single node IS the flat matrix.
        let root = merged.node_ref(merged.root());
        let explicit = flat(&md);
        assert_eq!(root.num_entries(), explicit.nnz());
    }
}
