use std::fmt;

/// Errors from matrix-diagram construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MdError {
    /// `sizes` was empty or contained a zero (or overflowed `u32`).
    InvalidShape,
    /// An entry's row or column index exceeded the level's local state
    /// space.
    IndexOutOfBounds {
        /// Level of the offending node (0-based).
        level: usize,
        /// The offending row or column index.
        index: u32,
        /// Size of the level's local state space.
        size: usize,
    },
    /// A formal-sum term referenced a child that does not exist (or a
    /// non-terminal child at the last level / a terminal child above it).
    BadChild {
        /// Level of the node containing the term (0-based).
        level: usize,
        /// Debug rendering of the offending child reference.
        child: String,
    },
    /// A coefficient was NaN or infinite.
    InvalidCoefficient {
        /// The offending value.
        value: f64,
    },
    /// The designated root node does not exist at level 0.
    NoSuchRoot {
        /// The index passed as root.
        index: u32,
    },
    /// The MD and MDD paired in an [`MdMatrix`](crate::MdMatrix) have
    /// different level structures.
    ShapeMismatch {
        /// Sizes of the MD.
        md_sizes: Vec<usize>,
        /// Sizes of the MDD.
        mdd_sizes: Vec<usize>,
    },
    /// Level index out of range.
    NoSuchLevel {
        /// The offending level.
        level: usize,
        /// Number of levels.
        num_levels: usize,
    },
    /// A serialized MD/kernel image had missing, mistyped or inconsistent
    /// sections.
    Image(
        /// What was wrong with the image.
        String,
    ),
    /// A compute budget expired mid-compilation (deadline, cancellation,
    /// node cap, or an injected failpoint).
    Interrupted {
        /// Which phase was interrupted (e.g. `"md.compile"`).
        phase: &'static str,
        /// Node triples visited before the interruption.
        nodes: u64,
        /// Why the work was cut short.
        reason: mdl_obs::BudgetExceeded,
    },
}

impl fmt::Display for MdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdError::InvalidShape => write!(f, "sizes must be non-empty and positive"),
            MdError::IndexOutOfBounds { level, index, size } => {
                write!(
                    f,
                    "index {index} at level {level} exceeds local space of size {size}"
                )
            }
            MdError::BadChild { level, child } => {
                write!(f, "invalid child reference {child} at level {level}")
            }
            MdError::InvalidCoefficient { value } => {
                write!(f, "invalid formal-sum coefficient {value}")
            }
            MdError::NoSuchRoot { index } => write!(f, "no node {index} at level 0"),
            MdError::ShapeMismatch {
                md_sizes,
                mdd_sizes,
            } => {
                write!(
                    f,
                    "MD sizes {md_sizes:?} do not match MDD sizes {mdd_sizes:?}"
                )
            }
            MdError::NoSuchLevel { level, num_levels } => {
                write!(f, "level {level} out of range for {num_levels} levels")
            }
            MdError::Image(detail) => write!(f, "malformed MD image: {detail}"),
            MdError::Interrupted {
                phase,
                nodes,
                reason,
            } => {
                write!(
                    f,
                    "interrupted during {phase} after visiting {nodes} node triples: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for MdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(MdError::InvalidShape.to_string().contains("sizes"));
        assert!(MdError::IndexOutOfBounds {
            level: 1,
            index: 9,
            size: 4
        }
        .to_string()
        .contains("level 1"));
        assert!(MdError::BadChild {
            level: 0,
            child: "Node(3)".into()
        }
        .to_string()
        .contains("Node(3)"));
        assert!(MdError::InvalidCoefficient { value: f64::NAN }
            .to_string()
            .contains("NaN"));
        assert!(MdError::NoSuchRoot { index: 2 }.to_string().contains("2"));
        assert!(MdError::NoSuchLevel {
            level: 5,
            num_levels: 3
        }
        .to_string()
        .contains("5"));
        let e = MdError::ShapeMismatch {
            md_sizes: vec![2],
            mdd_sizes: vec![3],
        };
        assert!(e.to_string().contains("[2]"));
        assert!(MdError::Image("level 2: entry bounds not monotone".into())
            .to_string()
            .contains("level 2"));
        let e = MdError::Interrupted {
            phase: "md.compile",
            nodes: 42,
            reason: mdl_obs::BudgetExceeded::Cancelled,
        };
        assert!(e.to_string().contains("md.compile"));
        assert!(e.to_string().contains("42"));
    }
}
