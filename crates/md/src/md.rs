use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use mdl_arena::{ImageView, ImageWriter, Slab, SlabSource};

use crate::{MdError, Result};

/// Sentinel in the `term_children` slab: the term references the unit
/// terminal (valid at the last level only).
const TERMINAL_CHILD: u32 = u32::MAX;

/// Image section holding the level sizes (`u64` elements).
const TAG_SIZES: u32 = 0;
/// First per-level section tag; level `l` owns tags
/// `LEVEL_TAG_BASE + 8l ..= LEVEL_TAG_BASE + 8l + 5`.
const LEVEL_TAG_BASE: u32 = 16;

fn level_tag(level: usize) -> u32 {
    LEVEL_TAG_BASE + (level as u32) * 8
}

/// Reference from a formal-sum term to the node one level below, or to the
/// implicit 1×1 unit terminal at the bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChildId {
    /// A node at the next level, by index.
    Node(u32),
    /// The unit terminal (only valid below the last level).
    Terminal,
}

/// One term `r · R_child` of a formal sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// The real coefficient `r`.
    pub coef: f64,
    /// The referenced node (or the unit terminal).
    pub child: ChildId,
}

impl Term {
    /// Creates a term.
    pub fn new(coef: f64, child: ChildId) -> Self {
        Term { coef, child }
    }
}

/// One stored matrix entry of a node: position `(row, col)` and its formal
/// sum (canonical: sorted by child, duplicate children merged, zero
/// coefficients dropped, never empty).
#[derive(Debug, Clone, PartialEq)]
pub struct MdEntry {
    /// Row index within the level's local state space.
    pub row: u32,
    /// Column index within the level's local state space.
    pub col: u32,
    /// The formal sum `Σ_k r_k · R_k`.
    pub terms: Vec<Term>,
}

/// A matrix-diagram node in its owned, materialized form: a sparse matrix
/// over the level's local state space whose entries are formal sums of
/// references to next-level nodes.
///
/// Inside an [`Md`] nodes are stored flattened into per-level slabs and
/// accessed through [`MdNodeRef`] handles; `MdNode` is the construction
/// and restructuring currency ([`MdBuilder`](crate::MdBuilder),
/// [`Md::replace_level`], [`Md::level_nodes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MdNode {
    entries: Vec<MdEntry>, // sorted by (row, col)
}

impl MdNode {
    /// Creates a node from raw `(row, col, terms)` triples, canonicalizing:
    /// entries sorted by position, duplicate positions merged, formal sums
    /// sorted by child with duplicate children's coefficients summed, zero
    /// coefficients and empty entries dropped.
    ///
    /// Standalone nodes built this way are **not validated** against any
    /// MD's shape; validation happens when the node enters an MD (via
    /// [`MdBuilder::intern_node`](crate::MdBuilder::intern_node) or
    /// [`Md::replace_level`]).
    pub fn new(raw: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        Self::from_raw(raw)
    }

    /// Like [`MdNode::new`], but **retains zero-coefficient terms** after
    /// merging (the canonical form drops exact zeros — they are no-ops
    /// for every product). The certified-bounds quotient needs explicit
    /// zeros as anchors for rate envelopes around transitions the class
    /// representative lacks: a `0.0`-rate term the interval kernel widens
    /// to `[0, ε]`. Scalar products over such a node are numerically
    /// unchanged (a zero coefficient contributes an exact `+0.0`).
    pub fn new_keeping_zeros(raw: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        Self::from_raw_impl(raw, true)
    }

    pub(crate) fn from_raw(raw: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        Self::from_raw_impl(raw, false)
    }

    fn from_raw_impl(mut raw: Vec<(u32, u32, Vec<Term>)>, keep_zeros: bool) -> MdNode {
        raw.sort_by_key(|&(r, c, _)| (r, c));
        let mut entries: Vec<MdEntry> = Vec::with_capacity(raw.len());
        for (row, col, terms) in raw {
            if let Some(last) = entries.last_mut() {
                if last.row == row && last.col == col {
                    last.terms.extend(terms);
                    continue;
                }
            }
            entries.push(MdEntry { row, col, terms });
        }
        for e in entries.iter_mut() {
            canonicalize_terms_impl(&mut e.terms, keep_zeros);
        }
        entries.retain(|e| !e.terms.is_empty());
        MdNode { entries }
    }

    /// Reassembles a node from entries already in canonical form (sorted
    /// by position, unique positions, canonical non-empty sums) — the
    /// inverse of [`MdNodeRef::to_node`], used when materializing slab
    /// rows.
    pub(crate) fn from_canonical_entries(entries: Vec<MdEntry>) -> MdNode {
        debug_assert!(entries
            .windows(2)
            .all(|w| (w[0].row, w[0].col) < (w[1].row, w[1].col)));
        MdNode { entries }
    }

    /// All stored entries, sorted by `(row, col)`.
    pub fn entries(&self) -> &[MdEntry] {
        &self.entries
    }

    /// The stored entries of one row (empty slice if none).
    pub fn row(&self, row: u32) -> &[MdEntry] {
        let start = self.entries.partition_point(|e| e.row < row);
        let end = self.entries.partition_point(|e| e.row <= row);
        &self.entries[start..end]
    }

    /// Number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of formal-sum terms across all entries.
    pub fn num_terms(&self) -> usize {
        self.entries.iter().map(|e| e.terms.len()).sum()
    }

    /// Hashable canonical key for quasi-reduction (hash-consing).
    pub(crate) fn key(&self) -> NodeKey {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.row,
                    e.col,
                    e.terms
                        .iter()
                        .map(|t| (t.child, t.coef.to_bits()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<MdEntry>()
            + self
                .entries
                .iter()
                .map(|e| e.terms.len() * std::mem::size_of::<Term>())
                .sum::<usize>()
    }
}

pub(crate) type NodeKey = Vec<(u32, u32, Vec<(ChildId, u64)>)>;

/// Sorts by child, merges duplicate children, drops zero coefficients.
pub(crate) fn canonicalize_terms(terms: &mut Vec<Term>) {
    canonicalize_terms_impl(terms, false);
}

fn canonicalize_terms_impl(terms: &mut Vec<Term>, keep_zeros: bool) {
    terms.sort_by_key(|t| t.child);
    let mut out: Vec<Term> = Vec::with_capacity(terms.len());
    for t in terms.drain(..) {
        if let Some(last) = out.last_mut() {
            if last.child == t.child {
                last.coef += t.coef;
                continue;
            }
        }
        out.push(t);
    }
    if !keep_zeros {
        out.retain(|t| t.coef != 0.0);
    }
    *terms = out;
}

/// Identifies a node of an [`Md`]: level (0-based) and index within the
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MdNodeId {
    /// 0-based level (the paper's level `i` is `i − 1` here).
    pub level: u32,
    /// Index within the level.
    pub index: u32,
}

/// One level of an [`Md`] as six parallel slabs (CSR-of-CSR layout): node
/// `i`'s entries are `entry_bounds[i]..entry_bounds[i+1]`, entry `e`'s
/// position is `(entry_rows[e], entry_cols[e])` and its formal sum the
/// terms `term_bounds[e]..term_bounds[e+1]` of `term_coefs` /
/// `term_children` (with [`TERMINAL_CHILD`] marking the unit terminal).
/// Slabs are either owned or zero-copy views into a mapped artifact (see
/// `mdl-arena`).
#[derive(Debug, Clone)]
pub(crate) struct MdLevel {
    /// `num_nodes + 1` monotone entry offsets.
    pub(crate) entry_bounds: Slab<u32>,
    /// Entry row indices, one per stored entry.
    pub(crate) entry_rows: Slab<u32>,
    /// Entry column indices, parallel to `entry_rows`.
    pub(crate) entry_cols: Slab<u32>,
    /// `num_entries + 1` monotone term offsets.
    pub(crate) term_bounds: Slab<u32>,
    /// Term coefficients, one per formal-sum term.
    pub(crate) term_coefs: Slab<f64>,
    /// Term child references, parallel to `term_coefs`.
    pub(crate) term_children: Slab<u32>,
}

impl MdLevel {
    pub(crate) fn num_nodes(&self) -> usize {
        self.entry_bounds.len().saturating_sub(1)
    }

    fn num_entries(&self) -> usize {
        self.entry_rows.len()
    }

    fn entry_range(&self, node: usize) -> Range<usize> {
        self.entry_bounds[node] as usize..self.entry_bounds[node + 1] as usize
    }

    fn term_range(&self, entry: usize) -> Range<usize> {
        self.term_bounds[entry] as usize..self.term_bounds[entry + 1] as usize
    }

    /// Flattens materialized nodes into the slab layout; `nodes` must be
    /// canonical (the invariant every [`MdNode`] constructor maintains).
    pub(crate) fn from_nodes(nodes: &[MdNode]) -> MdLevel {
        let num_entries: usize = nodes.iter().map(MdNode::num_entries).sum();
        let mut entry_bounds = Vec::with_capacity(nodes.len() + 1);
        let mut entry_rows = Vec::with_capacity(num_entries);
        let mut entry_cols = Vec::with_capacity(num_entries);
        let mut term_bounds = Vec::with_capacity(num_entries + 1);
        let mut term_coefs = Vec::new();
        let mut term_children = Vec::new();
        entry_bounds.push(0u32);
        term_bounds.push(0u32);
        for node in nodes {
            for e in node.entries() {
                entry_rows.push(e.row);
                entry_cols.push(e.col);
                for t in &e.terms {
                    term_coefs.push(t.coef);
                    term_children.push(match t.child {
                        ChildId::Node(n) => {
                            debug_assert_ne!(n, TERMINAL_CHILD);
                            n
                        }
                        ChildId::Terminal => TERMINAL_CHILD,
                    });
                }
                term_bounds.push(u32::try_from(term_coefs.len()).expect("term arena fits in u32"));
            }
            entry_bounds.push(u32::try_from(entry_rows.len()).expect("entry arena fits in u32"));
        }
        MdLevel {
            entry_bounds: entry_bounds.into(),
            entry_rows: entry_rows.into(),
            entry_cols: entry_cols.into(),
            term_bounds: term_bounds.into(),
            term_coefs: term_coefs.into(),
            term_children: term_children.into(),
        }
    }

    fn owned_bytes(&self) -> usize {
        self.entry_bounds.owned_bytes()
            + self.entry_rows.owned_bytes()
            + self.entry_cols.owned_bytes()
            + self.term_bounds.owned_bytes()
            + self.term_coefs.owned_bytes()
            + self.term_children.owned_bytes()
    }

    fn is_mapped(&self) -> bool {
        self.entry_bounds.is_mapped()
            || self.entry_rows.is_mapped()
            || self.entry_cols.is_mapped()
            || self.term_bounds.is_mapped()
            || self.term_coefs.is_mapped()
            || self.term_children.is_mapped()
    }
}

/// A borrowed handle to one stored entry of a node — position plus an
/// iterator over its formal sum, reading the level slabs in place.
#[derive(Clone, Copy)]
pub struct MdEntryRef<'a> {
    level: &'a MdLevel,
    idx: usize,
}

impl<'a> MdEntryRef<'a> {
    /// Row index within the level's local state space.
    pub fn row(&self) -> u32 {
        self.level.entry_rows[self.idx]
    }

    /// Column index within the level's local state space.
    pub fn col(&self) -> u32 {
        self.level.entry_cols[self.idx]
    }

    /// Number of formal-sum terms.
    pub fn num_terms(&self) -> usize {
        self.level.term_range(self.idx).len()
    }

    /// The formal sum `Σ_k r_k · R_k`, term by term in canonical (child)
    /// order.
    pub fn terms(&self) -> impl ExactSizeIterator<Item = Term> + 'a {
        let level = self.level;
        self.level.term_range(self.idx).map(move |k| Term {
            coef: level.term_coefs[k],
            child: match level.term_children[k] {
                TERMINAL_CHILD => ChildId::Terminal,
                n => ChildId::Node(n),
            },
        })
    }

    /// Materializes the entry.
    pub fn to_entry(&self) -> MdEntry {
        MdEntry {
            row: self.row(),
            col: self.col(),
            terms: self.terms().collect(),
        }
    }
}

impl fmt::Debug for MdEntryRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MdEntryRef")
            .field("row", &self.row())
            .field("col", &self.col())
            .field("num_terms", &self.num_terms())
            .finish()
    }
}

/// A borrowed handle to one node of an [`Md`] — the index-based
/// replacement for handing out `&MdNode` references into per-node heap
/// structures. Obtained from [`Md::node_ref`]; all per-node queries
/// (entries, rows, formal sums) read the level slabs without copying.
#[derive(Clone, Copy)]
pub struct MdNodeRef<'a> {
    level: &'a MdLevel,
    id: MdNodeId,
}

impl<'a> MdNodeRef<'a> {
    /// The node's identity.
    pub fn id(&self) -> MdNodeId {
        self.id
    }

    /// Number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.level.entry_range(self.id.index as usize).len()
    }

    /// Total number of formal-sum terms across all entries.
    pub fn num_terms(&self) -> usize {
        let r = self.level.entry_range(self.id.index as usize);
        (self.level.term_bounds[r.end] - self.level.term_bounds[r.start]) as usize
    }

    /// All stored entries, sorted by `(row, col)`.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = MdEntryRef<'a>> + 'a {
        let level = self.level;
        self.level
            .entry_range(self.id.index as usize)
            .map(move |idx| MdEntryRef { level, idx })
    }

    /// The stored entries of one row (empty if none).
    pub fn row(&self, row: u32) -> impl ExactSizeIterator<Item = MdEntryRef<'a>> + 'a {
        let level = self.level;
        let r = self.level.entry_range(self.id.index as usize);
        let rows = &self.level.entry_rows[r.clone()];
        let start = r.start + rows.partition_point(|&x| x < row);
        let end = r.start + rows.partition_point(|&x| x <= row);
        (start..end).map(move |idx| MdEntryRef { level, idx })
    }

    /// Materializes the node (owned entries).
    pub fn to_node(&self) -> MdNode {
        MdNode::from_canonical_entries(self.entries().map(|e| e.to_entry()).collect())
    }
}

impl fmt::Debug for MdNodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MdNodeRef")
            .field("id", &self.id)
            .field("num_entries", &self.num_entries())
            .finish()
    }
}

/// An ordered, quasi-reduced matrix diagram (Section 3 of the paper).
///
/// Nodes live in per-level slabs (`mdl-arena`): each level is a CSR-of-CSR
/// flattening — entry bounds/rows/cols plus term bounds/coefs/children —
/// addressed by node index through [`MdNodeRef`] handles. A deserialized
/// MD can borrow those arrays zero-copy from a mapped store artifact; the
/// API is identical either way.
///
/// Immutable except through the lumping-specific
/// [`Md::replace_level`], which is how the compositional lumping algorithm
/// substitutes each node with its lumped version (the paper's Fig. 3b,
/// line 6). Construct with [`MdBuilder`](crate::MdBuilder) or
/// [`KroneckerExpr::to_md`](crate::KroneckerExpr::to_md).
#[derive(Debug, Clone)]
pub struct Md {
    pub(crate) sizes: Vec<usize>,
    pub(crate) levels: Vec<MdLevel>,
}

impl Md {
    /// Flattens validated per-level node lists into the slab layout —
    /// the trusted constructor behind every MD-producing operation.
    pub(crate) fn pack(sizes: Vec<usize>, levels: Vec<Vec<MdNode>>) -> Md {
        debug_assert_eq!(sizes.len(), levels.len());
        let levels = levels
            .iter()
            .map(|nodes| MdLevel::from_nodes(nodes))
            .collect();
        Md { sizes, levels }
    }

    /// Assembles an MD directly from per-level node lists, validating the
    /// full shape — sizes and levels must align, the root level must hold
    /// at least one node, and every entry/child reference must be in range.
    /// Intended for format converters (deserialization); normal
    /// construction goes through [`MdBuilder`](crate::MdBuilder).
    ///
    /// # Errors
    ///
    /// * [`MdError::InvalidShape`] if `sizes` is empty, contains a zero, or
    ///   does not match `levels` in length, or level 0 is empty;
    /// * [`MdError::IndexOutOfBounds`] / [`MdError::BadChild`] /
    ///   [`MdError::InvalidCoefficient`] for invalid node content.
    pub fn from_levels(sizes: Vec<usize>, levels: Vec<Vec<MdNode>>) -> Result<Md> {
        if sizes.is_empty() || sizes.contains(&0) || sizes.len() != levels.len() {
            return Err(MdError::InvalidShape);
        }
        if levels[0].is_empty() {
            return Err(MdError::InvalidShape);
        }
        let num_levels = sizes.len();
        for (level, nodes) in levels.iter().enumerate() {
            let last = level == num_levels - 1;
            let next_count = if last { 0 } else { levels[level + 1].len() };
            for node in nodes {
                validate_node(node, level, sizes[level], last, next_count)?;
            }
        }
        Ok(Md::pack(sizes, levels))
    }

    /// Number of levels `L`.
    pub fn num_levels(&self) -> usize {
        self.sizes.len()
    }

    /// Local state-space sizes `|S₁|, …, |S_L|`.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The root node id (level 0, index 0).
    pub fn root(&self) -> MdNodeId {
        MdNodeId { level: 0, index: 0 }
    }

    /// A borrowed handle to the node `id`; panics if out of range.
    pub fn node_ref(&self, id: MdNodeId) -> MdNodeRef<'_> {
        let level = &self.levels[id.level as usize];
        assert!(
            (id.index as usize) < level.num_nodes(),
            "node index {} out of range at level {}",
            id.index,
            id.level
        );
        MdNodeRef { level, id }
    }

    /// Borrowed handles to every node of one level, in index order — the
    /// zero-copy counterpart of [`Md::level_nodes`] for read-only walks.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_node_refs(&self, level: usize) -> impl ExactSizeIterator<Item = MdNodeRef<'_>> {
        let lv = &self.levels[level];
        (0..lv.num_nodes()).map(move |i| MdNodeRef {
            level: lv,
            id: MdNodeId {
                level: level as u32,
                index: i as u32,
            },
        })
    }

    /// Materializes the nodes of one level (owned copies). This is the
    /// restructuring path — passes that rebuild whole levels
    /// (lumping, canonicalization) work on materialized nodes and re-enter
    /// them through [`Md::replace_level`] or the builder. For read access
    /// prefer the zero-copy [`Md::node_ref`].
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_nodes(&self, level: usize) -> Vec<MdNode> {
        let lv = &self.levels[level];
        (0..lv.num_nodes())
            .map(|i| {
                MdNodeRef {
                    level: lv,
                    id: MdNodeId {
                        level: level as u32,
                        index: i as u32,
                    },
                }
                .to_node()
            })
            .collect()
    }

    /// Number of nodes at one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn num_nodes_at(&self, level: usize) -> usize {
        self.levels[level].num_nodes()
    }

    /// Number of nodes on each level (the paper's `|N_i|`, Table 1).
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(MdLevel::num_nodes).collect()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.levels.iter().map(MdLevel::num_nodes).sum()
    }

    /// Approximate memory footprint in bytes (the paper's "MD space"
    /// column of Table 1): heap owned by this MD. Mapped slabs count zero
    /// here — their pages are shared and accounted once at the store layer.
    pub fn memory_bytes(&self) -> usize {
        self.levels.iter().map(MdLevel::owned_bytes).sum()
    }

    /// `true` when any level borrows its slabs from a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        self.levels.iter().any(MdLevel::is_mapped)
    }

    /// Replaces **all** nodes of a level and the level's local state-space
    /// size — the lumping step of the paper's Fig. 3b (line 6): each node
    /// is replaced by its (possibly smaller) lumped version; node count and
    /// child references are unchanged.
    ///
    /// # Errors
    ///
    /// * [`MdError::NoSuchLevel`] for a bad level;
    /// * [`MdError::InvalidShape`] if the node count changes or
    ///   `new_size == 0`;
    /// * [`MdError::IndexOutOfBounds`] if an entry exceeds `new_size`;
    /// * [`MdError::BadChild`] if a child reference is invalid for the
    ///   level.
    pub fn replace_level(
        &mut self,
        level: usize,
        new_size: usize,
        nodes: Vec<MdNode>,
    ) -> Result<()> {
        if level >= self.num_levels() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.num_levels(),
            });
        }
        if new_size == 0 || nodes.len() != self.levels[level].num_nodes() {
            return Err(MdError::InvalidShape);
        }
        let last = level == self.num_levels() - 1;
        let next_count = if last {
            0
        } else {
            self.levels[level + 1].num_nodes()
        };
        for node in &nodes {
            validate_node(node, level, new_size, last, next_count)?;
        }
        self.sizes[level] = new_size;
        self.levels[level] = MdLevel::from_nodes(&nodes);
        Ok(())
    }

    /// The transpose `Rᵀ` of the represented matrix, as an MD: every
    /// node's entries have row and column swapped (levels, children and
    /// coefficients are unchanged, since
    /// `(A ⊗ B)ᵀ = Aᵀ ⊗ Bᵀ` extends entrywise to formal sums).
    ///
    /// Useful for the exact/ordinary duality: exact lumpability of `R` is
    /// ordinary lumpability of `Rᵀ` (plus the exit-rate and initial-
    /// distribution conditions).
    pub fn transpose(&self) -> Md {
        let levels = (0..self.num_levels())
            .map(|l| {
                (0..self.levels[l].num_nodes())
                    .map(|i| {
                        let n = MdNodeRef {
                            level: &self.levels[l],
                            id: MdNodeId {
                                level: l as u32,
                                index: i as u32,
                            },
                        };
                        MdNode::from_raw(
                            n.entries()
                                .map(|e| (e.col(), e.row(), e.terms().collect()))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        Md::pack(self.sizes.clone(), levels)
    }

    /// Re-runs quasi-reduction bottom-up: merges nodes on a level that have
    /// become equal (for example after lumping made previously distinct
    /// nodes coincide), remapping parent references.
    ///
    /// Returns the reduced MD and the number of nodes removed. The paper's
    /// algorithm deliberately does *not* do this (its lumping step keeps
    /// the node count fixed); it is exposed as the post-pass measured by
    /// the ablation experiments.
    pub fn quasi_reduce(&self) -> (Md, usize) {
        let mut new_levels: Vec<Vec<MdNode>> = vec![Vec::new(); self.num_levels()];
        let mut removed = 0usize;
        // remap[level][old index] = new index
        let mut remap: Vec<Vec<u32>> = Vec::with_capacity(self.num_levels());
        for level in (0..self.num_levels()).rev() {
            let mut unique: HashMap<NodeKey, u32> = HashMap::new();
            let old_count = self.levels[level].num_nodes();
            let mut level_map = vec![0u32; old_count];
            let child_map = if level + 1 < self.num_levels() {
                Some(&remap[self.num_levels() - 2 - level])
            } else {
                None
            };
            for (i, slot) in level_map.iter_mut().enumerate() {
                let node = MdNodeRef {
                    level: &self.levels[level],
                    id: MdNodeId {
                        level: level as u32,
                        index: i as u32,
                    },
                };
                // Rewrite children through the lower level's remapping.
                let rewritten: Vec<(u32, u32, Vec<Term>)> = node
                    .entries()
                    .map(|e| {
                        let terms = e
                            .terms()
                            .map(|t| {
                                let child = match (t.child, child_map) {
                                    (ChildId::Node(n), Some(map)) => ChildId::Node(map[n as usize]),
                                    (c, _) => c,
                                };
                                Term {
                                    coef: t.coef,
                                    child,
                                }
                            })
                            .collect();
                        (e.row(), e.col(), terms)
                    })
                    .collect();
                let canon = MdNode::from_raw(rewritten);
                let key = canon.key();
                let new_index = *unique.entry(key).or_insert_with(|| {
                    new_levels[level].push(canon);
                    (new_levels[level].len() - 1) as u32
                });
                *slot = new_index;
            }
            removed += old_count - new_levels[level].len();
            remap.push(level_map);
        }
        (Md::pack(self.sizes.clone(), new_levels), removed)
    }

    /// Serializes the MD into arena image sections: tag [`TAG_SIZES`]
    /// holds the level sizes; level `l` owns tags `16 + 8l` (entry bounds,
    /// `u32`), `+1` (entry rows, `u32`), `+2` (entry cols, `u32`), `+3`
    /// (term bounds, `u32`), `+4` (term coefficients, `f64`) and `+5`
    /// (term children, `u32`).
    pub fn write_image(&self, w: &mut ImageWriter) {
        let sizes: Vec<u64> = self.sizes.iter().map(|&s| s as u64).collect();
        w.put_u64(TAG_SIZES, &sizes);
        for (l, level) in self.levels.iter().enumerate() {
            let base = level_tag(l);
            w.put_u32(base, &level.entry_bounds);
            w.put_u32(base + 1, &level.entry_rows);
            w.put_u32(base + 2, &level.entry_cols);
            w.put_u32(base + 3, &level.term_bounds);
            w.put_f64(base + 4, &level.term_coefs);
            w.put_u32(base + 5, &level.term_children);
        }
    }

    /// Rebuilds an MD from arena image sections written by
    /// [`Md::write_image`]. With [`SlabSource::Mapped`] the level slabs
    /// borrow the mapped region zero-copy (falling back to copies on
    /// non-little-endian or misaligned layouts).
    ///
    /// Structure — bounds monotonicity, entry positions, child references —
    /// is re-validated by a linear scan (a corrupt offset would otherwise
    /// panic far from the cause); coefficient values and the canonical
    /// entry/term ordering are trusted: the store checksums the payload
    /// before handing it here, and the writer emitted canonical slabs.
    ///
    /// # Errors
    ///
    /// [`MdError::Image`] on missing/mistyped sections or inconsistent
    /// content; [`MdError::InvalidShape`] for malformed level sizes.
    pub fn read_image(view: &ImageView<'_>, source: SlabSource<'_>) -> Result<Md> {
        let img = |e: mdl_arena::ArenaError| MdError::Image(e.to_string());
        let sizes_u64 = view.vec_u64(TAG_SIZES).map_err(img)?;
        if sizes_u64.is_empty() || sizes_u64.iter().any(|&s| s == 0 || s > u32::MAX as u64) {
            return Err(MdError::InvalidShape);
        }
        let sizes: Vec<usize> = sizes_u64.iter().map(|&s| s as usize).collect();
        let num_levels = sizes.len();
        let mut levels = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let base = level_tag(l);
            let level = MdLevel {
                entry_bounds: view.slab_u32(base, source).map_err(img)?,
                entry_rows: view.slab_u32(base + 1, source).map_err(img)?,
                entry_cols: view.slab_u32(base + 2, source).map_err(img)?,
                term_bounds: view.slab_u32(base + 3, source).map_err(img)?,
                term_coefs: view.slab_f64(base + 4, source).map_err(img)?,
                term_children: view.slab_u32(base + 5, source).map_err(img)?,
            };
            validate_level_bounds(l, &level)?;
            levels.push(level);
        }
        if levels[0].num_nodes() == 0 {
            return Err(MdError::InvalidShape);
        }
        for l in 0..num_levels {
            let last = l == num_levels - 1;
            let size = sizes[l] as u32;
            let next_count = if last {
                0
            } else {
                levels[l + 1].num_nodes() as u32
            };
            let lv = &levels[l];
            for e in 0..lv.num_entries() {
                if lv.entry_rows[e] >= size || lv.entry_cols[e] >= size {
                    return Err(MdError::Image(format!(
                        "level {l}: entry {e} position ({}, {}) exceeds local space of size {size}",
                        lv.entry_rows[e], lv.entry_cols[e]
                    )));
                }
            }
            for (k, &c) in lv.term_children.iter().enumerate() {
                let ok = if last {
                    c == TERMINAL_CHILD
                } else {
                    c != TERMINAL_CHILD && c < next_count
                };
                if !ok {
                    return Err(MdError::Image(format!(
                        "level {l}: term {k} has invalid child reference {c}"
                    )));
                }
            }
        }
        Ok(Md { sizes, levels })
    }
}

/// Checks one decoded level's internal slab consistency: bounds lengths,
/// monotonicity, and agreement between the entry and term layers.
fn validate_level_bounds(l: usize, lv: &MdLevel) -> Result<()> {
    let err = |detail: String| Err(MdError::Image(format!("level {l}: {detail}")));
    if lv.entry_bounds.first() != Some(&0) {
        return err("entry bounds must start at 0".into());
    }
    if lv.entry_bounds.windows(2).any(|w| w[0] > w[1]) {
        return err("entry bounds not monotone".into());
    }
    let entries = lv.entry_rows.len();
    if *lv.entry_bounds.last().unwrap() as usize != entries || lv.entry_cols.len() != entries {
        return err(format!(
            "entry arenas misaligned ({} bounds end, {} rows, {} cols)",
            lv.entry_bounds.last().unwrap(),
            entries,
            lv.entry_cols.len()
        ));
    }
    if lv.term_bounds.len() != entries + 1 {
        return err(format!(
            "{} term bounds for {entries} entries",
            lv.term_bounds.len()
        ));
    }
    if lv.term_bounds.first() != Some(&0) || lv.term_bounds.windows(2).any(|w| w[0] > w[1]) {
        return err("term bounds not monotone from 0".into());
    }
    let terms = lv.term_coefs.len();
    if *lv.term_bounds.last().unwrap() as usize != terms || lv.term_children.len() != terms {
        return err(format!(
            "term arenas misaligned ({} bounds end, {} coefs, {} children)",
            lv.term_bounds.last().unwrap(),
            terms,
            lv.term_children.len()
        ));
    }
    Ok(())
}

pub(crate) fn validate_node(
    node: &MdNode,
    level: usize,
    size: usize,
    last: bool,
    next_count: usize,
) -> Result<()> {
    for e in node.entries() {
        if e.row as usize >= size {
            return Err(MdError::IndexOutOfBounds {
                level,
                index: e.row,
                size,
            });
        }
        if e.col as usize >= size {
            return Err(MdError::IndexOutOfBounds {
                level,
                index: e.col,
                size,
            });
        }
        for t in &e.terms {
            if !t.coef.is_finite() {
                return Err(MdError::InvalidCoefficient { value: t.coef });
            }
            match t.child {
                ChildId::Terminal if !last => {
                    return Err(MdError::BadChild {
                        level,
                        child: "Terminal".into(),
                    })
                }
                ChildId::Node(_) if last => {
                    return Err(MdError::BadChild {
                        level,
                        child: format!("{:?}", t.child),
                    })
                }
                ChildId::Node(n) if (n as usize) >= next_count || n == TERMINAL_CHILD => {
                    return Err(MdError::BadChild {
                        level,
                        child: format!("Node({n})"),
                    })
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MdBuilder;

    #[test]
    fn canonicalize_merges_and_drops() {
        let mut terms = vec![
            Term::new(1.0, ChildId::Node(2)),
            Term::new(2.0, ChildId::Node(1)),
            Term::new(3.0, ChildId::Node(2)),
            Term::new(0.0, ChildId::Node(5)),
            Term::new(1.0, ChildId::Node(7)),
            Term::new(-1.0, ChildId::Node(7)),
        ];
        canonicalize_terms(&mut terms);
        assert_eq!(
            terms,
            vec![
                Term::new(2.0, ChildId::Node(1)),
                Term::new(4.0, ChildId::Node(2))
            ]
        );
    }

    #[test]
    fn node_row_access() {
        let node = MdNode::from_raw(vec![
            (1, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 1, vec![Term::new(2.0, ChildId::Terminal)]),
            (1, 2, vec![Term::new(3.0, ChildId::Terminal)]),
        ]);
        assert_eq!(node.num_entries(), 3);
        assert_eq!(node.row(0).len(), 1);
        assert_eq!(node.row(1).len(), 2);
        assert!(node.row(2).is_empty());
        assert_eq!(node.row(1)[1].col, 2);
    }

    #[test]
    fn from_raw_merges_duplicate_positions() {
        let node = MdNode::from_raw(vec![
            (0, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 0, vec![Term::new(2.0, ChildId::Terminal)]),
        ]);
        assert_eq!(node.num_entries(), 1);
        assert_eq!(
            node.entries()[0].terms,
            vec![Term::new(3.0, ChildId::Terminal)]
        );
    }

    #[test]
    fn empty_sums_dropped() {
        let node = MdNode::from_raw(vec![(0, 0, vec![Term::new(0.0, ChildId::Terminal)])]);
        assert_eq!(node.num_entries(), 0);
    }

    #[test]
    fn keys_equal_iff_content_equal() {
        let a = MdNode::from_raw(vec![(0, 1, vec![Term::new(1.5, ChildId::Node(0))])]);
        let b = MdNode::from_raw(vec![(0, 1, vec![Term::new(1.5, ChildId::Node(0))])]);
        let c = MdNode::from_raw(vec![(0, 1, vec![Term::new(2.5, ChildId::Node(0))])]);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }

    fn two_level_md() -> Md {
        let mut b = MdBuilder::new(vec![2, 3]).unwrap();
        let bottom = b
            .intern_node(
                1,
                vec![
                    (0, 1, vec![Term::new(1.0, ChildId::Terminal)]),
                    (2, 0, vec![Term::new(0.5, ChildId::Terminal)]),
                ],
            )
            .unwrap();
        let ident = b.intern_identity(1, ChildId::Terminal).unwrap();
        let root = b
            .intern_node(
                0,
                vec![
                    (0, 1, vec![Term::new(2.0, ChildId::Node(bottom))]),
                    (
                        1,
                        0,
                        vec![
                            Term::new(3.0, ChildId::Node(bottom)),
                            Term::new(1.0, ChildId::Node(ident)),
                        ],
                    ),
                ],
            )
            .unwrap();
        b.finish(root).unwrap()
    }

    #[test]
    fn node_ref_matches_materialized_nodes() {
        let md = two_level_md();
        for l in 0..md.num_levels() {
            let nodes = md.level_nodes(l);
            assert_eq!(nodes.len(), md.num_nodes_at(l));
            for (i, node) in nodes.iter().enumerate() {
                let r = md.node_ref(MdNodeId {
                    level: l as u32,
                    index: i as u32,
                });
                assert_eq!(&r.to_node(), node);
                assert_eq!(r.num_entries(), node.num_entries());
                assert_eq!(r.num_terms(), node.num_terms());
                for (er, e) in r.entries().zip(node.entries()) {
                    assert_eq!(er.row(), e.row);
                    assert_eq!(er.col(), e.col);
                    assert_eq!(er.terms().collect::<Vec<_>>(), e.terms);
                }
                for row in 0..3u32 {
                    assert_eq!(
                        r.row(row).map(|e| e.to_entry()).collect::<Vec<_>>(),
                        node.row(row).to_vec()
                    );
                }
            }
        }
    }

    #[test]
    fn image_round_trip_preserves_everything() {
        let md = two_level_md();
        let mut w = ImageWriter::new();
        md.write_image(&mut w);
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        let back = Md::read_image(&view, SlabSource::Copy).unwrap();
        assert_eq!(back.sizes(), md.sizes());
        assert_eq!(back.nodes_per_level(), md.nodes_per_level());
        for l in 0..md.num_levels() {
            assert_eq!(back.level_nodes(l), md.level_nodes(l));
        }
    }

    #[test]
    fn image_with_corrupt_child_is_rejected() {
        let md = two_level_md();
        // Re-emit the image with the root level's term children pointing
        // past the bottom level.
        let mut w = ImageWriter::new();
        let sizes: Vec<u64> = md.sizes().iter().map(|&s| s as u64).collect();
        w.put_u64(TAG_SIZES, &sizes);
        for (l, level) in md.levels.iter().enumerate() {
            let base = level_tag(l);
            w.put_u32(base, &level.entry_bounds);
            w.put_u32(base + 1, &level.entry_rows);
            w.put_u32(base + 2, &level.entry_cols);
            w.put_u32(base + 3, &level.term_bounds);
            w.put_f64(base + 4, &level.term_coefs);
            let mut children: Vec<u32> = level.term_children.to_vec();
            if l == 0 {
                children[0] = 97; // no such bottom node
            }
            w.put_u32(base + 5, &children);
        }
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        let err = Md::read_image(&view, SlabSource::Copy).unwrap_err();
        assert!(matches!(err, MdError::Image(_)), "got {err:?}");
    }

    #[test]
    fn image_with_broken_bounds_is_rejected() {
        let md = two_level_md();
        let mut w = ImageWriter::new();
        let sizes: Vec<u64> = md.sizes().iter().map(|&s| s as u64).collect();
        w.put_u64(TAG_SIZES, &sizes);
        for (l, level) in md.levels.iter().enumerate() {
            let base = level_tag(l);
            let mut bounds: Vec<u32> = level.entry_bounds.to_vec();
            if l == 1 {
                let n = bounds.len();
                bounds[n - 1] += 7; // points past the entry arena
            }
            w.put_u32(base, &bounds);
            w.put_u32(base + 1, &level.entry_rows);
            w.put_u32(base + 2, &level.entry_cols);
            w.put_u32(base + 3, &level.term_bounds);
            w.put_f64(base + 4, &level.term_coefs);
            w.put_u32(base + 5, &level.term_children);
        }
        let payload = w.finish();
        let view = ImageView::parse(&payload).unwrap();
        let err = Md::read_image(&view, SlabSource::Copy).unwrap_err();
        assert!(matches!(err, MdError::Image(_)), "got {err:?}");
    }

    #[test]
    fn memory_accounting_positive_and_unmapped() {
        let md = two_level_md();
        assert!(md.memory_bytes() > 0);
        assert!(!md.is_mapped());
    }
}
