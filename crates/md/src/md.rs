use std::collections::HashMap;

use crate::{MdError, Result};

/// Reference from a formal-sum term to the node one level below, or to the
/// implicit 1×1 unit terminal at the bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChildId {
    /// A node at the next level, by index.
    Node(u32),
    /// The unit terminal (only valid below the last level).
    Terminal,
}

/// One term `r · R_child` of a formal sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// The real coefficient `r`.
    pub coef: f64,
    /// The referenced node (or the unit terminal).
    pub child: ChildId,
}

impl Term {
    /// Creates a term.
    pub fn new(coef: f64, child: ChildId) -> Self {
        Term { coef, child }
    }
}

/// One stored matrix entry of a node: position `(row, col)` and its formal
/// sum (canonical: sorted by child, duplicate children merged, zero
/// coefficients dropped, never empty).
#[derive(Debug, Clone, PartialEq)]
pub struct MdEntry {
    /// Row index within the level's local state space.
    pub row: u32,
    /// Column index within the level's local state space.
    pub col: u32,
    /// The formal sum `Σ_k r_k · R_k`.
    pub terms: Vec<Term>,
}

/// A matrix-diagram node: a sparse matrix over the level's local state
/// space whose entries are formal sums of references to next-level nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct MdNode {
    entries: Vec<MdEntry>, // sorted by (row, col)
}

impl MdNode {
    /// Creates a node from raw `(row, col, terms)` triples, canonicalizing:
    /// entries sorted by position, duplicate positions merged, formal sums
    /// sorted by child with duplicate children's coefficients summed, zero
    /// coefficients and empty entries dropped.
    ///
    /// Standalone nodes built this way are **not validated** against any
    /// MD's shape; validation happens when the node enters an MD (via
    /// [`MdBuilder::intern_node`](crate::MdBuilder::intern_node) or
    /// [`Md::replace_level`]).
    pub fn new(raw: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        Self::from_raw(raw)
    }

    pub(crate) fn from_raw(mut raw: Vec<(u32, u32, Vec<Term>)>) -> MdNode {
        raw.sort_by_key(|&(r, c, _)| (r, c));
        let mut entries: Vec<MdEntry> = Vec::with_capacity(raw.len());
        for (row, col, terms) in raw {
            if let Some(last) = entries.last_mut() {
                if last.row == row && last.col == col {
                    last.terms.extend(terms);
                    continue;
                }
            }
            entries.push(MdEntry { row, col, terms });
        }
        for e in entries.iter_mut() {
            canonicalize_terms(&mut e.terms);
        }
        entries.retain(|e| !e.terms.is_empty());
        MdNode { entries }
    }

    /// All stored entries, sorted by `(row, col)`.
    pub fn entries(&self) -> &[MdEntry] {
        &self.entries
    }

    /// The stored entries of one row (empty slice if none).
    pub fn row(&self, row: u32) -> &[MdEntry] {
        let start = self.entries.partition_point(|e| e.row < row);
        let end = self.entries.partition_point(|e| e.row <= row);
        &self.entries[start..end]
    }

    /// Number of stored entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of formal-sum terms across all entries.
    pub fn num_terms(&self) -> usize {
        self.entries.iter().map(|e| e.terms.len()).sum()
    }

    /// Hashable canonical key for quasi-reduction (hash-consing).
    pub(crate) fn key(&self) -> NodeKey {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.row,
                    e.col,
                    e.terms
                        .iter()
                        .map(|t| (t.child, t.coef.to_bits()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<MdEntry>()
            + self
                .entries
                .iter()
                .map(|e| e.terms.len() * std::mem::size_of::<Term>())
                .sum::<usize>()
    }
}

pub(crate) type NodeKey = Vec<(u32, u32, Vec<(ChildId, u64)>)>;

/// Sorts by child, merges duplicate children, drops zero coefficients.
pub(crate) fn canonicalize_terms(terms: &mut Vec<Term>) {
    terms.sort_by_key(|t| t.child);
    let mut out: Vec<Term> = Vec::with_capacity(terms.len());
    for t in terms.drain(..) {
        if let Some(last) = out.last_mut() {
            if last.child == t.child {
                last.coef += t.coef;
                continue;
            }
        }
        out.push(t);
    }
    out.retain(|t| t.coef != 0.0);
    *terms = out;
}

/// Identifies a node of an [`Md`]: level (0-based) and index within the
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MdNodeId {
    /// 0-based level (the paper's level `i` is `i − 1` here).
    pub level: u32,
    /// Index within the level.
    pub index: u32,
}

/// An ordered, quasi-reduced matrix diagram (Section 3 of the paper).
///
/// Immutable except through the lumping-specific
/// [`Md::replace_level`], which is how the compositional lumping algorithm
/// substitutes each node with its lumped version (the paper's Fig. 3b,
/// line 6). Construct with [`MdBuilder`](crate::MdBuilder) or
/// [`KroneckerExpr::to_md`](crate::KroneckerExpr::to_md).
#[derive(Debug, Clone)]
pub struct Md {
    pub(crate) sizes: Vec<usize>,
    pub(crate) levels: Vec<Vec<MdNode>>,
}

impl Md {
    /// Assembles an MD directly from per-level node lists, validating the
    /// full shape — sizes and levels must align, the root level must hold
    /// at least one node, and every entry/child reference must be in range.
    /// Intended for format converters (deserialization); normal
    /// construction goes through [`MdBuilder`](crate::MdBuilder).
    ///
    /// # Errors
    ///
    /// * [`MdError::InvalidShape`] if `sizes` is empty, contains a zero, or
    ///   does not match `levels` in length, or level 0 is empty;
    /// * [`MdError::IndexOutOfBounds`] / [`MdError::BadChild`] /
    ///   [`MdError::InvalidCoefficient`] for invalid node content.
    pub fn from_levels(sizes: Vec<usize>, levels: Vec<Vec<MdNode>>) -> Result<Md> {
        if sizes.is_empty() || sizes.contains(&0) || sizes.len() != levels.len() {
            return Err(MdError::InvalidShape);
        }
        if levels[0].is_empty() {
            return Err(MdError::InvalidShape);
        }
        let num_levels = sizes.len();
        for (level, nodes) in levels.iter().enumerate() {
            let last = level == num_levels - 1;
            let next_count = if last { 0 } else { levels[level + 1].len() };
            for node in nodes {
                validate_node(node, level, sizes[level], last, next_count)?;
            }
        }
        Ok(Md { sizes, levels })
    }

    /// Number of levels `L`.
    pub fn num_levels(&self) -> usize {
        self.sizes.len()
    }

    /// Local state-space sizes `|S₁|, …, |S_L|`.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The root node id (level 0, index 0).
    pub fn root(&self) -> MdNodeId {
        MdNodeId { level: 0, index: 0 }
    }

    /// The nodes of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn nodes_at(&self, level: usize) -> &[MdNode] {
        &self.levels[level]
    }

    /// A single node.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node(&self, id: MdNodeId) -> &MdNode {
        &self.levels[id.level as usize][id.index as usize]
    }

    /// Number of nodes on each level (the paper's `|N_i|`, Table 1).
    pub fn nodes_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Approximate memory footprint in bytes (the paper's "MD space"
    /// column of Table 1).
    pub fn memory_bytes(&self) -> usize {
        self.levels.iter().flatten().map(MdNode::memory_bytes).sum()
    }

    /// Replaces **all** nodes of a level and the level's local state-space
    /// size — the lumping step of the paper's Fig. 3b (line 6): each node
    /// is replaced by its (possibly smaller) lumped version; node count and
    /// child references are unchanged.
    ///
    /// # Errors
    ///
    /// * [`MdError::NoSuchLevel`] for a bad level;
    /// * [`MdError::InvalidShape`] if the node count changes or
    ///   `new_size == 0`;
    /// * [`MdError::IndexOutOfBounds`] if an entry exceeds `new_size`;
    /// * [`MdError::BadChild`] if a child reference is invalid for the
    ///   level.
    pub fn replace_level(
        &mut self,
        level: usize,
        new_size: usize,
        nodes: Vec<MdNode>,
    ) -> Result<()> {
        if level >= self.num_levels() {
            return Err(MdError::NoSuchLevel {
                level,
                num_levels: self.num_levels(),
            });
        }
        if new_size == 0 || nodes.len() != self.levels[level].len() {
            return Err(MdError::InvalidShape);
        }
        let last = level == self.num_levels() - 1;
        let next_count = if last {
            0
        } else {
            self.levels[level + 1].len()
        };
        for node in &nodes {
            validate_node(node, level, new_size, last, next_count)?;
        }
        self.sizes[level] = new_size;
        self.levels[level] = nodes;
        Ok(())
    }

    /// The transpose `Rᵀ` of the represented matrix, as an MD: every
    /// node's entries have row and column swapped (levels, children and
    /// coefficients are unchanged, since
    /// `(A ⊗ B)ᵀ = Aᵀ ⊗ Bᵀ` extends entrywise to formal sums).
    ///
    /// Useful for the exact/ordinary duality: exact lumpability of `R` is
    /// ordinary lumpability of `Rᵀ` (plus the exit-rate and initial-
    /// distribution conditions).
    pub fn transpose(&self) -> Md {
        let levels = self
            .levels
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .map(|n| {
                        MdNode::from_raw(
                            n.entries
                                .iter()
                                .map(|e| (e.col, e.row, e.terms.clone()))
                                .collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        Md {
            sizes: self.sizes.clone(),
            levels,
        }
    }

    /// Re-runs quasi-reduction bottom-up: merges nodes on a level that have
    /// become equal (for example after lumping made previously distinct
    /// nodes coincide), remapping parent references.
    ///
    /// Returns the reduced MD and the number of nodes removed. The paper's
    /// algorithm deliberately does *not* do this (its lumping step keeps
    /// the node count fixed); it is exposed as the post-pass measured by
    /// the ablation experiments.
    pub fn quasi_reduce(&self) -> (Md, usize) {
        let mut new_levels: Vec<Vec<MdNode>> = vec![Vec::new(); self.num_levels()];
        let mut removed = 0usize;
        // remap[level][old index] = new index
        let mut remap: Vec<Vec<u32>> = Vec::with_capacity(self.num_levels());
        for level in (0..self.num_levels()).rev() {
            let mut unique: HashMap<NodeKey, u32> = HashMap::new();
            let mut level_map = vec![0u32; self.levels[level].len()];
            let child_map = if level + 1 < self.num_levels() {
                Some(&remap[self.num_levels() - 2 - level])
            } else {
                None
            };
            for (i, node) in self.levels[level].iter().enumerate() {
                // Rewrite children through the lower level's remapping.
                let rewritten: Vec<(u32, u32, Vec<Term>)> = node
                    .entries
                    .iter()
                    .map(|e| {
                        let terms = e
                            .terms
                            .iter()
                            .map(|t| {
                                let child = match (t.child, child_map) {
                                    (ChildId::Node(n), Some(map)) => ChildId::Node(map[n as usize]),
                                    (c, _) => c,
                                };
                                Term {
                                    coef: t.coef,
                                    child,
                                }
                            })
                            .collect();
                        (e.row, e.col, terms)
                    })
                    .collect();
                let canon = MdNode::from_raw(rewritten);
                let key = canon.key();
                let new_index = *unique.entry(key).or_insert_with(|| {
                    new_levels[level].push(canon);
                    (new_levels[level].len() - 1) as u32
                });
                level_map[i] = new_index;
            }
            removed += self.levels[level].len() - new_levels[level].len();
            remap.push(level_map);
        }
        (
            Md {
                sizes: self.sizes.clone(),
                levels: new_levels,
            },
            removed,
        )
    }
}

pub(crate) fn validate_node(
    node: &MdNode,
    level: usize,
    size: usize,
    last: bool,
    next_count: usize,
) -> Result<()> {
    for e in node.entries() {
        if e.row as usize >= size {
            return Err(MdError::IndexOutOfBounds {
                level,
                index: e.row,
                size,
            });
        }
        if e.col as usize >= size {
            return Err(MdError::IndexOutOfBounds {
                level,
                index: e.col,
                size,
            });
        }
        for t in &e.terms {
            if !t.coef.is_finite() {
                return Err(MdError::InvalidCoefficient { value: t.coef });
            }
            match t.child {
                ChildId::Terminal if !last => {
                    return Err(MdError::BadChild {
                        level,
                        child: "Terminal".into(),
                    })
                }
                ChildId::Node(_) if last => {
                    return Err(MdError::BadChild {
                        level,
                        child: format!("{:?}", t.child),
                    })
                }
                ChildId::Node(n) if (n as usize) >= next_count => {
                    return Err(MdError::BadChild {
                        level,
                        child: format!("Node({n})"),
                    })
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_merges_and_drops() {
        let mut terms = vec![
            Term::new(1.0, ChildId::Node(2)),
            Term::new(2.0, ChildId::Node(1)),
            Term::new(3.0, ChildId::Node(2)),
            Term::new(0.0, ChildId::Node(5)),
            Term::new(1.0, ChildId::Node(7)),
            Term::new(-1.0, ChildId::Node(7)),
        ];
        canonicalize_terms(&mut terms);
        assert_eq!(
            terms,
            vec![
                Term::new(2.0, ChildId::Node(1)),
                Term::new(4.0, ChildId::Node(2))
            ]
        );
    }

    #[test]
    fn node_row_access() {
        let node = MdNode::from_raw(vec![
            (1, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 1, vec![Term::new(2.0, ChildId::Terminal)]),
            (1, 2, vec![Term::new(3.0, ChildId::Terminal)]),
        ]);
        assert_eq!(node.num_entries(), 3);
        assert_eq!(node.row(0).len(), 1);
        assert_eq!(node.row(1).len(), 2);
        assert!(node.row(2).is_empty());
        assert_eq!(node.row(1)[1].col, 2);
    }

    #[test]
    fn from_raw_merges_duplicate_positions() {
        let node = MdNode::from_raw(vec![
            (0, 0, vec![Term::new(1.0, ChildId::Terminal)]),
            (0, 0, vec![Term::new(2.0, ChildId::Terminal)]),
        ]);
        assert_eq!(node.num_entries(), 1);
        assert_eq!(
            node.entries()[0].terms,
            vec![Term::new(3.0, ChildId::Terminal)]
        );
    }

    #[test]
    fn empty_sums_dropped() {
        let node = MdNode::from_raw(vec![(0, 0, vec![Term::new(0.0, ChildId::Terminal)])]);
        assert_eq!(node.num_entries(), 0);
    }

    #[test]
    fn keys_equal_iff_content_equal() {
        let a = MdNode::from_raw(vec![(0, 1, vec![Term::new(1.5, ChildId::Node(0))])]);
        let b = MdNode::from_raw(vec![(0, 1, vec![Term::new(1.5, ChildId::Node(0))])]);
        let c = MdNode::from_raw(vec![(0, 1, vec![Term::new(2.5, ChildId::Node(0))])]);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }
}
