//! Matrix diagrams (MDs): the leveled symbolic representation of large
//! state-transition rate matrices that the paper's compositional lumping
//! algorithm operates on.
//!
//! Following Section 3 of *Derisavi, Kemper & Sanders, DSN 2005*, an ordered
//! MD is a DAG of matrix-valued nodes arranged in levels: a node `R_{n_i}`
//! at level `i` is a sparse matrix over the level's local state space `S_i`
//! whose entries are **formal sums** `Σ_k r_k · R_{n_{i+1},k}` of real
//! coefficients times references to nodes one level below. At the last
//! level the references point to the implicit 1×1 unit terminal (the
//! paper's artificial level `L+1`), so every level is uniform. The MD is
//! kept *quasi-reduced* — no two equal nodes on a level — by hash-consing
//! in [`MdBuilder`].
//!
//! The crate provides:
//!
//! * [`Md`] / [`MdNode`] / [`Term`] — the data structure;
//! * [`MdBuilder`] — bottom-up hash-consing construction;
//! * [`KroneckerExpr`] — sums of Kronecker products `Σ_e λ_e ⊗_i W_i^e`
//!   (the form compositional Markov models produce) and their translation
//!   to MDs, including the term-aggregation preprocessing that keeps node
//!   counts per level small;
//! * [`MdMatrix`] — an MD paired with the [`Mdd`](mdl_mdd::Mdd) of
//!   reachable states; implements
//!   [`RateMatrix`](mdl_linalg::RateMatrix), so the iterative solvers of
//!   `mdl-ctmc` run directly over the symbolic representation with
//!   iteration vectors indexed over reachable states only;
//! * [`CompiledMdMatrix`] — a compile-once, execute-many lowering of an
//!   [`MdMatrix`] to flat block/arena programs whose products are
//!   bit-identical to the recursive walk, optionally multi-threaded;
//! * [`MdMatrix::flatten`] — the explicit sparse matrix, for verification
//!   and the flat baselines.
//!
//! # Example
//!
//! ```
//! use mdl_md::{KroneckerExpr, MdMatrix, SparseFactor};
//! use mdl_mdd::Mdd;
//! use mdl_linalg::RateMatrix;
//!
//! // R = 2.0 · (W ⊗ I) with W a 2×2 cyclic factor: two independent levels.
//! let mut w = SparseFactor::new(2);
//! w.push(0, 1, 1.0);
//! w.push(1, 0, 1.0);
//! let mut expr = KroneckerExpr::new(vec![2, 2]);
//! expr.add_term(2.0, vec![Some(w), None]);
//! let md = expr.to_md().unwrap();
//!
//! let reach = Mdd::full(vec![2, 2]).unwrap();
//! let m = MdMatrix::new(md, reach).unwrap();
//! assert_eq!(m.num_states(), 4);
//! let flat = m.flatten();
//! assert_eq!(flat.get(0, 2), 2.0); // (0,0) -> (1,0)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apply;
mod builder;
mod canonical;
mod compiled;
mod error;
mod kronecker;
mod md;
mod merge;

pub use builder::MdBuilder;
pub use error::MdError;
pub use kronecker::{KroneckerExpr, KroneckerTerm, SparseFactor};
pub use md::{ChildId, Md, MdEntry, MdEntryRef, MdNode, MdNodeId, MdNodeRef, Term};

pub use apply::MdMatrix;
pub use compiled::{default_threads, CompileStats, CompiledMdMatrix, CompiledParts, TermSite};

/// Convenience alias for fallible MD operations.
pub type Result<T> = std::result::Result<T, MdError>;
