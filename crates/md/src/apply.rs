use std::collections::HashMap;

use mdl_linalg::{CooMatrix, CsrMatrix, RateMatrix};
use mdl_mdd::{Mdd, MddNodeId};

use crate::md::{ChildId, Md, MdNodeId};
use crate::{MdError, Result};

/// A matrix diagram paired with the MDD of reachable states: together they
/// are a [`RateMatrix`] over the reachable state space, with vectors
/// indexed by the MDD's offset labelling.
///
/// This is the operational form of the paper's setting: the MD represents
/// `R` symbolically, the MDD indexes the iteration vectors over reachable
/// states only, and iterative solvers (`mdl-ctmc`) run over the pair
/// without ever materializing the flat matrix.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct MdMatrix {
    md: Md,
    reach: Mdd,
}

impl MdMatrix {
    /// Pairs an MD with the MDD of its reachable states.
    ///
    /// # Errors
    ///
    /// [`MdError::ShapeMismatch`] if the level structures differ.
    pub fn new(md: Md, reach: Mdd) -> Result<Self> {
        if md.sizes() != reach.sizes() {
            return Err(MdError::ShapeMismatch {
                md_sizes: md.sizes().to_vec(),
                mdd_sizes: reach.sizes().to_vec(),
            });
        }
        Ok(MdMatrix { md, reach })
    }

    /// The matrix diagram.
    pub fn md(&self) -> &Md {
        &self.md
    }

    /// The reachable-state MDD.
    pub fn reach(&self) -> &Mdd {
        &self.reach
    }

    /// Decomposes into the MD and the MDD.
    pub fn into_parts(self) -> (Md, Mdd) {
        (self.md, self.reach)
    }

    /// Visits every non-zero entry of the represented matrix restricted to
    /// reachable rows and columns, as `(row index, col index, value)` with
    /// indices in the MDD's offset order.
    ///
    /// Multiple formal-sum paths contributing to the same flat position are
    /// visited separately (callers accumulate).
    pub fn for_each_entry<F: FnMut(u64, u64, f64)>(&self, mut f: F) {
        if self.reach.is_empty() {
            return;
        }
        let root_mdd = self.reach.root();
        self.walk(self.md.root(), root_mdd, root_mdd, 0, 0, 1.0, &mut f);
    }

    #[allow(clippy::too_many_arguments)]
    fn walk<F: FnMut(u64, u64, f64)>(
        &self,
        md_node: MdNodeId,
        row_n: MddNodeId,
        col_n: MddNodeId,
        row_off: u64,
        col_off: u64,
        scale: f64,
        f: &mut F,
    ) {
        let level = md_node.level as usize;
        let last = level == self.md.num_levels() - 1;
        for entry in self.md.node_ref(md_node).entries() {
            let (s, s2) = (entry.row() as usize, entry.col() as usize);
            if !self.reach.is_present(row_n, s) || !self.reach.is_present(col_n, s2) {
                continue;
            }
            let ro = row_off + self.reach.offset(row_n, s);
            let co = col_off + self.reach.offset(col_n, s2);
            if last {
                for t in entry.terms() {
                    debug_assert_eq!(t.child, ChildId::Terminal);
                    f(ro, co, scale * t.coef);
                }
            } else {
                let rc = self.reach.child(row_n, s).expect("present child");
                let cc = self.reach.child(col_n, s2).expect("present child");
                for t in entry.terms() {
                    let ChildId::Node(n) = t.child else {
                        unreachable!("terminal above last level")
                    };
                    self.walk(
                        MdNodeId {
                            level: md_node.level + 1,
                            index: n,
                        },
                        rc,
                        cc,
                        ro,
                        co,
                        scale * t.coef,
                        f,
                    );
                }
            }
        }
    }

    /// Number of entry visits a full traversal performs — the exact number
    /// of `(row, col, value)` triples [`Self::for_each_entry`] yields.
    ///
    /// Computed by a memoized count over distinct
    /// `(MD node, row MDD node, col MDD node)` triples, so the cost is
    /// proportional to the *shared* structure, not the flat entry count.
    pub fn count_entries(&self) -> u64 {
        if self.reach.is_empty() {
            return 0;
        }
        let mut memo: Vec<HashMap<(u32, u32, u32), u64>> =
            vec![HashMap::new(); self.md.num_levels()];
        let root_mdd = self.reach.root();
        self.count_walk(self.md.root(), root_mdd, root_mdd, &mut memo)
    }

    fn count_walk(
        &self,
        md_node: MdNodeId,
        row_n: MddNodeId,
        col_n: MddNodeId,
        memo: &mut Vec<HashMap<(u32, u32, u32), u64>>,
    ) -> u64 {
        let level = md_node.level as usize;
        let key = (md_node.index, row_n.index, col_n.index);
        if let Some(&n) = memo[level].get(&key) {
            return n;
        }
        let last = level == self.md.num_levels() - 1;
        let mut total = 0u64;
        for entry in self.md.node_ref(md_node).entries() {
            let (s, s2) = (entry.row() as usize, entry.col() as usize);
            if !self.reach.is_present(row_n, s) || !self.reach.is_present(col_n, s2) {
                continue;
            }
            if last {
                total += entry.num_terms() as u64;
            } else {
                let rc = self.reach.child(row_n, s).expect("present child");
                let cc = self.reach.child(col_n, s2).expect("present child");
                for t in entry.terms() {
                    let ChildId::Node(n) = t.child else {
                        unreachable!("terminal above last level")
                    };
                    total += self.count_walk(
                        MdNodeId {
                            level: md_node.level + 1,
                            index: n,
                        },
                        rc,
                        cc,
                        memo,
                    );
                }
            }
        }
        memo[level].insert(key, total);
        total
    }

    /// Materializes the represented matrix over reachable states as an
    /// explicit sparse matrix (verification / flat baselines; memory is
    /// O(nnz)).
    pub fn flatten(&self) -> CsrMatrix {
        let n = self.reach.count() as usize;
        let cap = usize::try_from(self.count_entries()).unwrap_or(usize::MAX);
        let mut coo = CooMatrix::with_capacity(n, n, cap);
        self.for_each_entry(|r, c, v| coo.push(r as usize, c as usize, v));
        coo.to_csr()
    }

    /// Total memory of the symbolic representation (MD + MDD), in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.md.memory_bytes() + self.reach.memory_bytes()
    }
}

impl RateMatrix for MdMatrix {
    fn num_states(&self) -> usize {
        self.reach.count() as usize
    }

    fn acc_mat_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_states());
        assert_eq!(y.len(), self.num_states());
        self.for_each_entry(|r, c, v| y[r as usize] += v * x[c as usize]);
    }

    fn acc_vec_mat(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_states());
        assert_eq!(y.len(), self.num_states());
        self.for_each_entry(|r, c, v| y[c as usize] += v * x[r as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kronecker::{KroneckerExpr, SparseFactor};
    use mdl_linalg::vec_ops;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    fn two_level_expr() -> KroneckerExpr {
        let mut expr = KroneckerExpr::new(vec![2, 3]);
        expr.add_term(2.0, vec![Some(cycle(2, 1.0)), None]);
        expr.add_term(1.5, vec![None, Some(cycle(3, 1.0))]);
        expr
    }

    #[test]
    fn flatten_matches_kronecker_baseline() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let full = Mdd::full(vec![2, 3]).unwrap();
        let m = MdMatrix::new(md, full).unwrap();
        let diff = m.flatten().max_abs_diff(&expr.flatten_full());
        assert_eq!(diff, 0.0);
    }

    #[test]
    fn restricted_reachability_projects_matrix() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        // Keep only 4 of the 6 product states.
        let reach = Mdd::from_tuples(
            vec![2, 3],
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
        )
        .unwrap();
        let m = MdMatrix::new(md, reach.clone()).unwrap();
        assert_eq!(m.num_states(), 4);
        let flat = m.flatten();
        let full_flat = expr.flatten_full();
        // Every restricted entry must equal the corresponding full entry.
        reach.for_each_tuple(|rt, ri| {
            let rfull = (rt[0] * 3 + rt[1]) as usize;
            reach.clone().for_each_tuple(|ct, ci| {
                let cfull = (ct[0] * 3 + ct[1]) as usize;
                assert_eq!(
                    flat.get(ri as usize, ci as usize),
                    full_flat.get(rfull, cfull)
                );
            });
        });
    }

    #[test]
    fn mat_vec_matches_flat() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let full = Mdd::full(vec![2, 3]).unwrap();
        let m = MdMatrix::new(md, full).unwrap();
        let flat = m.flatten();
        let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3 + 0.1).collect();

        let mut y_md = vec![0.0; 6];
        m.acc_mat_vec(&x, &mut y_md);
        let mut y_flat = vec![0.0; 6];
        flat.acc_mat_vec(&x, &mut y_flat);
        assert!(vec_ops::max_abs_diff(&y_md, &y_flat) < 1e-12);

        let mut z_md = vec![0.0; 6];
        m.acc_vec_mat(&x, &mut z_md);
        let mut z_flat = vec![0.0; 6];
        flat.acc_vec_mat(&x, &mut z_flat);
        assert!(vec_ops::max_abs_diff(&z_md, &z_flat) < 1e-12);
    }

    #[test]
    fn row_sums_match_flat() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let m = MdMatrix::new(md, Mdd::full(vec![2, 3]).unwrap()).unwrap();
        assert_eq!(RateMatrix::row_sums(&m), m.flatten().row_sums_vec());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let err = MdMatrix::new(md, Mdd::full(vec![2, 2]).unwrap()).unwrap_err();
        assert!(matches!(err, MdError::ShapeMismatch { .. }));
    }

    #[test]
    fn empty_reachability_is_empty_matrix() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let empty = Mdd::from_tuples(vec![2, 3], vec![]).unwrap();
        let m = MdMatrix::new(md, empty).unwrap();
        assert_eq!(m.num_states(), 0);
        assert_eq!(m.flatten().nnz(), 0);
    }

    #[test]
    fn md_transpose_flattens_to_matrix_transpose() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let full = Mdd::full(vec![2, 3]).unwrap();
        let m = MdMatrix::new(md.clone(), full.clone()).unwrap();
        let mt = MdMatrix::new(md.transpose(), full).unwrap();
        assert_eq!(mt.flatten().max_abs_diff(&m.flatten().transpose()), 0.0);
    }

    #[test]
    fn double_transpose_is_identity() {
        let expr = two_level_expr();
        let md = expr.to_md().unwrap();
        let full = Mdd::full(vec![2, 3]).unwrap();
        let a = MdMatrix::new(md.clone(), full.clone()).unwrap().flatten();
        let b = MdMatrix::new(md.transpose().transpose(), full)
            .unwrap()
            .flatten();
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn three_level_flatten_matches() {
        let mut expr = KroneckerExpr::new(vec![2, 2, 2]);
        expr.add_term(1.0, vec![Some(cycle(2, 1.0)), None, None]);
        expr.add_term(2.0, vec![None, Some(cycle(2, 1.0)), Some(cycle(2, 1.0))]);
        expr.add_term(0.5, vec![None, None, Some(cycle(2, 3.0))]);
        let md = expr.to_md().unwrap();
        let m = MdMatrix::new(md, Mdd::full(vec![2, 2, 2]).unwrap()).unwrap();
        assert_eq!(m.flatten().max_abs_diff(&expr.flatten_full()), 0.0);
    }
}
