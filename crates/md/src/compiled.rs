//! Compile-once, execute-many kernel for [`MdMatrix`] products.
//!
//! Every iteration of a symbolic solve is a `y += x·R` product over the
//! MD×MDD pair, and the recursive walk in [`MdMatrix::for_each_entry`]
//! re-derives the same structure on every call: offsets are recomputed,
//! shared sub-diagrams are re-descended once per incoming path, and the
//! traversal order is pointer-chasing rather than streaming. This module
//! walks the pair **once** and lowers it to a flat program:
//!
//! * each distinct `(MdNodeId, row MddNodeId, col MddNodeId)` triple is
//!   compiled exactly once (hash-consing happens at compile time only);
//! * bottom-level triples become **leaf runs** — contiguous
//!   `(row, col, coef)` triples in shared arenas, with offsets relative to
//!   the enclosing block;
//! * the levels above are linearized into a flat list of **blocks**
//!   `(row_base, col_base, scale, leaf)` in exactly the order the
//!   recursive walk would visit them.
//!
//! Executing a product is then two nested loops over contiguous arrays —
//! no recursion, no hashing, no offset arithmetic beyond one add per
//! index — and the shared leaf runs stay hot in cache across blocks.
//!
//! # Determinism
//!
//! The serial product applies blocks in walk order, so every output entry
//! accumulates its contributions in the same order as
//! [`MdMatrix::acc_mat_vec`] / [`MdMatrix::acc_vec_mat`] — products are
//! **bit-identical** to the recursive walk. The threaded product keeps
//! this guarantee: the MDD offset labelling makes the row (resp. column)
//! intervals of two blocks either disjoint or identical, so blocks can be
//! partitioned into contiguous, disjoint output ranges; each output entry
//! is owned by exactly one thread, which applies its blocks in walk order
//! (the same discipline as `ParCsr::gather` in `mdl-ctmc`).

use std::collections::HashMap;
use std::time::Duration;

use mdl_arena::{ImageView, ImageWriter, Slab, SlabSource};
use mdl_linalg::weight::{add_down, add_up, mul_down, mul_up, sub_down, sub_up};
use mdl_linalg::{Interval, IntervalRateMatrix, RateMatrix, Weight};
use mdl_mdd::MddNodeId;

use crate::apply::MdMatrix;
use crate::md::{ChildId, MdNodeId};
use crate::MdError;

/// Products over fewer states than this run serially even when the kernel
/// was compiled for several threads (same threshold as `ParCsr`).
const PAR_MIN_STATES: usize = 1024;

/// Growable structure-of-arrays block list used during linearization,
/// frozen into the [`CompiledParts`] slabs once compilation finishes. A
/// "block" is one linearized top-level invocation: apply leaf run
/// `leafs[b]`, offset by `(row_bases[b], col_bases[b])` and scaled by
/// `scales[b]` (the product of the formal-sum coefficients along the path,
/// accumulated in walk order).
struct BlockList<W> {
    row_bases: Vec<u64>,
    col_bases: Vec<u64>,
    scales: Vec<W>,
    leafs: Vec<u32>,
}

impl<W> Default for BlockList<W> {
    fn default() -> Self {
        BlockList {
            row_bases: Vec::new(),
            col_bases: Vec::new(),
            scales: Vec::new(),
            leafs: Vec::new(),
        }
    }
}

impl<W> BlockList<W> {
    fn push(&mut self, row_base: u64, col_base: u64, scale: W, leaf: u32) {
        self.row_bases.push(row_base);
        self.col_bases.push(col_base);
        self.scales.push(scale);
        self.leafs.push(leaf);
    }

    fn len(&self) -> usize {
        self.leafs.len()
    }
}

/// A deterministic schedule for one product orientation: block indices in
/// walk order grouped into per-thread runs over disjoint output ranges.
#[derive(Debug, Clone)]
struct Plan {
    /// Block indices, stably sorted by the orientation's output base —
    /// walk order is preserved among blocks sharing an output interval.
    order: Vec<u32>,
    /// `order[splits[k]..splits[k + 1]]` is thread `k`'s run.
    splits: Vec<usize>,
    /// Thread `k` owns output indices `bounds[k]..bounds[k + 1]`.
    bounds: Vec<u64>,
}

/// Size and sharing statistics of a compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileStats {
    /// Linearized top-level block invocations.
    pub blocks: usize,
    /// Distinct bottom-level `(MD node, row MDD node, col MDD node)`
    /// triples, i.e. compiled leaf programs.
    pub leaf_programs: usize,
    /// Total `(row, col, coef)` triples stored across all leaf arenas
    /// (after sharing).
    pub leaf_entries: usize,
    /// Total matrix entries one product touches: `Σ_blocks |leaf run|`.
    /// Equals the number of `(r, c, v)` visits of
    /// [`MdMatrix::for_each_entry`].
    pub flat_entries: u64,
    /// Triples reached during compilation, counted once per incoming path.
    pub triples_visited: u64,
    /// Distinct triples compiled (the rest were sub-program cache hits).
    pub triples_compiled: u64,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
}

/// The serializable content of a [`CompiledMdMatrix`]: everything the
/// products read, minus the per-thread schedules (rebuilt for the loading
/// machine's thread count) and wall-clock stats. Produced by
/// [`CompiledMdMatrix::to_parts`], consumed by
/// [`CompiledMdMatrix::from_parts`]. Generic over the kernel's
/// [`Weight`]: `CompiledParts` (the `f64` default) is the historical
/// scalar kernel, `CompiledParts<Interval>` the certified-bounds one.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledParts<W: Weight = f64> {
    /// Number of reachable states the kernel addresses.
    pub num_states: u64,
    /// Block output row bases, in walk order.
    pub block_row_bases: Slab<u64>,
    /// Block output column bases, parallel to `block_row_bases`.
    pub block_col_bases: Slab<u64>,
    /// Block scales (path coefficient products).
    pub block_scales: Slab<W>,
    /// Block leaf-program references.
    pub block_leafs: Slab<u32>,
    /// Leaf arena bounds: program `p` is entries `bounds[p]..bounds[p+1]`.
    pub leaf_bounds: Slab<u32>,
    /// Leaf-relative row offsets, parallel to `leaf_cols`/`leaf_coefs`.
    pub leaf_rows: Slab<u32>,
    /// Leaf-relative column offsets.
    pub leaf_cols: Slab<u32>,
    /// Leaf coefficients.
    pub leaf_coefs: Slab<W>,
    /// [`CompileStats::triples_visited`] of the original compilation.
    pub triples_visited: u64,
    /// [`CompileStats::triples_compiled`] of the original compilation.
    pub triples_compiled: u64,
}

/// Kernel image section holding `[num_states, triples_visited,
/// triples_compiled]` as `u64`.
const TAG_KERNEL_META: u32 = 1;
/// First array section; the eight kernel arrays occupy tags `16..=23` in
/// [`CompiledParts`] field order.
const TAG_KERNEL_ARRAYS: u32 = 16;

impl<W: Weight> CompiledParts<W> {
    /// Number of linearized blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_leafs.len()
    }

    /// `true` when any array borrows from a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        self.block_row_bases.is_mapped()
            || self.block_col_bases.is_mapped()
            || self.block_scales.is_mapped()
            || self.block_leafs.is_mapped()
            || self.leaf_bounds.is_mapped()
            || self.leaf_rows.is_mapped()
            || self.leaf_cols.is_mapped()
            || self.leaf_coefs.is_mapped()
    }

    /// Serializes the kernel into arena image sections: tag 1 holds
    /// `[num_states, triples_visited, triples_compiled]`; tags `16..=23`
    /// hold the eight arrays in declaration order.
    pub fn write_image(&self, w: &mut ImageWriter) {
        w.put_u64(
            TAG_KERNEL_META,
            &[self.num_states, self.triples_visited, self.triples_compiled],
        );
        w.put_u64(TAG_KERNEL_ARRAYS, &self.block_row_bases);
        w.put_u64(TAG_KERNEL_ARRAYS + 1, &self.block_col_bases);
        W::put_section(w, TAG_KERNEL_ARRAYS + 2, &self.block_scales);
        w.put_u32(TAG_KERNEL_ARRAYS + 3, &self.block_leafs);
        w.put_u32(TAG_KERNEL_ARRAYS + 4, &self.leaf_bounds);
        w.put_u32(TAG_KERNEL_ARRAYS + 5, &self.leaf_rows);
        w.put_u32(TAG_KERNEL_ARRAYS + 6, &self.leaf_cols);
        W::put_section(w, TAG_KERNEL_ARRAYS + 7, &self.leaf_coefs);
    }

    /// Rebuilds kernel parts from sections written by
    /// [`CompiledParts::write_image`]. With [`SlabSource::Mapped`] the
    /// arrays borrow the mapped region zero-copy. Only section-level
    /// structure is checked here; the full cross-array validation runs in
    /// [`CompiledMdMatrix::from_parts`], which every consumer goes
    /// through.
    ///
    /// # Errors
    ///
    /// [`MdError::Image`] on missing or mistyped sections, or a malformed
    /// meta section.
    pub fn read_image(view: &ImageView<'_>, source: SlabSource<'_>) -> Result<Self, MdError> {
        let img = |e: mdl_arena::ArenaError| MdError::Image(e.to_string());
        let meta = view.vec_u64(TAG_KERNEL_META).map_err(img)?;
        let [num_states, triples_visited, triples_compiled] = meta[..] else {
            return Err(MdError::Image(format!(
                "kernel meta section has {} fields, expected 3",
                meta.len()
            )));
        };
        Ok(CompiledParts {
            num_states,
            block_row_bases: view.slab_u64(TAG_KERNEL_ARRAYS, source).map_err(img)?,
            block_col_bases: view.slab_u64(TAG_KERNEL_ARRAYS + 1, source).map_err(img)?,
            block_scales: W::read_section(view, TAG_KERNEL_ARRAYS + 2, source).map_err(img)?,
            block_leafs: view.slab_u32(TAG_KERNEL_ARRAYS + 3, source).map_err(img)?,
            leaf_bounds: view.slab_u32(TAG_KERNEL_ARRAYS + 4, source).map_err(img)?,
            leaf_rows: view.slab_u32(TAG_KERNEL_ARRAYS + 5, source).map_err(img)?,
            leaf_cols: view.slab_u32(TAG_KERNEL_ARRAYS + 6, source).map_err(img)?,
            leaf_coefs: W::read_section(view, TAG_KERNEL_ARRAYS + 7, source).map_err(img)?,
            triples_visited,
            triples_compiled,
        })
    }
}

impl CompileStats {
    /// Sharing factor exploited by compilation: visited / compiled triples
    /// (`1.0` means no sharing; higher is better).
    pub fn dedup_ratio(&self) -> f64 {
        if self.triples_compiled == 0 {
            1.0
        } else {
            self.triples_visited as f64 / self.triples_compiled as f64
        }
    }
}

/// The position of one MD term during compilation, handed to a weight
/// source so it can replace the stored `f64` coefficient: the node's
/// level and per-level index, the entry's local `(row, col)` and the
/// term's child. For the scalar kernel the source returns `coef`
/// verbatim; for an interval kernel a rate-envelope sidecar (keyed by
/// exactly these coordinates — `Md::replace_level` preserves per-level
/// node order, so lumped node indices match the envelope's) widens
/// inexactly lumped terms.
#[derive(Debug, Clone, Copy)]
pub struct TermSite {
    /// MD level of the node owning the term (0 = root level).
    pub level: u32,
    /// Node index within the level.
    pub node: u32,
    /// Entry row (local state / class index).
    pub row: u32,
    /// Entry column.
    pub col: u32,
    /// The term's child reference ([`ChildId::Terminal`] at the last
    /// level).
    pub child: ChildId,
    /// The stored coefficient.
    pub coef: f64,
}

/// Per-level memoized sub-programs built during compilation and discarded
/// after linearization.
struct Compiler<'a, W: Weight> {
    m: &'a MdMatrix,
    /// Maps a term's coordinates to its kernel weight.
    weigh: &'a dyn Fn(&TermSite) -> W,
    /// `memo[level]` maps `(md index, row mdd index, col mdd index)` to the
    /// sub-program (upper levels) or leaf program (last level) id.
    memo: Vec<HashMap<(u32, u32, u32), u32>>,
    /// Upper-level programs: lists of relative invocations.
    segments: Vec<Vec<Segment<W>>>,
    /// Leaf arena bounds: leaf `p` is `leaf_*[bounds[p]..bounds[p + 1]]`.
    leaf_bounds: Vec<u32>,
    leaf_rows: Vec<u32>,
    leaf_cols: Vec<u32>,
    leaf_coefs: Vec<W>,
    visited: u64,
    compiled: u64,
    /// Amortized budget checks, run against `visited` so node caps bound
    /// the traversal even when no deadline is set.
    ticker: mdl_obs::Ticker<'a>,
}

/// One invocation of a next-level program, relative to the caller's
/// offsets.
#[derive(Debug, Clone, Copy)]
struct SegmentCall<W> {
    d_row: u64,
    d_col: u64,
    coef: W,
    child: u32,
}

type Segment<W> = Vec<SegmentCall<W>>;

impl<'a, W: Weight> Compiler<'a, W> {
    fn new(
        m: &'a MdMatrix,
        budget: &'a mdl_obs::Budget,
        weigh: &'a dyn Fn(&TermSite) -> W,
    ) -> Self {
        let levels = m.md().num_levels();
        Compiler {
            m,
            weigh,
            memo: vec![HashMap::new(); levels],
            segments: vec![Vec::new(); levels.saturating_sub(1)],
            leaf_bounds: vec![0],
            leaf_rows: Vec::new(),
            leaf_cols: Vec::new(),
            leaf_coefs: Vec::new(),
            visited: 0,
            compiled: 0,
            ticker: budget.ticker(64),
        }
    }

    /// Compiles the triple once, returning its program id (leaf id at the
    /// last level, segment id above).
    fn compile_triple(
        &mut self,
        md_node: MdNodeId,
        row_n: MddNodeId,
        col_n: MddNodeId,
    ) -> Result<u32, MdError> {
        self.ticker
            .tick_nodes(self.visited)
            .map_err(|reason| MdError::Interrupted {
                phase: "md.compile",
                nodes: self.visited,
                reason,
            })?;
        self.visited += 1;
        let level = md_node.level as usize;
        let key = (md_node.index, row_n.index, col_n.index);
        if let Some(&id) = self.memo[level].get(&key) {
            return Ok(id);
        }
        self.compiled += 1;
        let reach = self.m.reach();
        let last = level == self.m.md().num_levels() - 1;
        let id = if last {
            for entry in self.m.md().node_ref(md_node).entries() {
                let (s, s2) = (entry.row() as usize, entry.col() as usize);
                if !reach.is_present(row_n, s) || !reach.is_present(col_n, s2) {
                    continue;
                }
                let ro = reach.offset(row_n, s);
                let co = reach.offset(col_n, s2);
                for t in entry.terms() {
                    debug_assert_eq!(t.child, ChildId::Terminal);
                    self.leaf_rows.push(ro as u32);
                    self.leaf_cols.push(co as u32);
                    self.leaf_coefs.push((self.weigh)(&TermSite {
                        level: md_node.level,
                        node: md_node.index,
                        row: entry.row(),
                        col: entry.col(),
                        child: t.child,
                        coef: t.coef,
                    }));
                }
            }
            let end = u32::try_from(self.leaf_rows.len()).expect("leaf arena fits in u32");
            self.leaf_bounds.push(end);
            (self.leaf_bounds.len() - 2) as u32
        } else {
            // Reserve the segment id before recursing so ids stay dense.
            let seg_id = self.segments[level].len() as u32;
            self.segments[level].push(Vec::new());
            let mut calls = Vec::new();
            for entry in self.m.md().node_ref(md_node).entries() {
                let (s, s2) = (entry.row() as usize, entry.col() as usize);
                if !reach.is_present(row_n, s) || !reach.is_present(col_n, s2) {
                    continue;
                }
                let d_row = reach.offset(row_n, s);
                let d_col = reach.offset(col_n, s2);
                let rc = reach.child(row_n, s).expect("present child");
                let cc = reach.child(col_n, s2).expect("present child");
                for t in entry.terms() {
                    let ChildId::Node(n) = t.child else {
                        unreachable!("terminal above last level")
                    };
                    let child = self.compile_triple(
                        MdNodeId {
                            level: md_node.level + 1,
                            index: n,
                        },
                        rc,
                        cc,
                    )?;
                    calls.push(SegmentCall {
                        d_row,
                        d_col,
                        coef: (self.weigh)(&TermSite {
                            level: md_node.level,
                            node: md_node.index,
                            row: entry.row(),
                            col: entry.col(),
                            child: t.child,
                            coef: t.coef,
                        }),
                        child,
                    });
                }
            }
            self.segments[level][seg_id as usize] = calls;
            seg_id
        };
        self.memo[level].insert(key, id);
        Ok(id)
    }

    /// Expands the root program into the flat block list, accumulating
    /// offsets and scales in walk order.
    fn linearize(&self, root: u32, blocks: &mut BlockList<W>) {
        let levels = self.m.md().num_levels();
        if levels == 1 {
            blocks.push(0, 0, W::one(), root);
            return;
        }
        self.expand(0, root, 0, 0, W::one(), blocks);
    }

    fn expand(
        &self,
        level: usize,
        segment: u32,
        row_base: u64,
        col_base: u64,
        scale: W,
        blocks: &mut BlockList<W>,
    ) {
        let last_segment_level = level == self.m.md().num_levels() - 2;
        for call in &self.segments[level][segment as usize] {
            let ro = row_base + call.d_row;
            let co = col_base + call.d_col;
            let sc = scale.mul(call.coef);
            if last_segment_level {
                blocks.push(ro, co, sc, call.child);
            } else {
                self.expand(level + 1, call.child, ro, co, sc, blocks);
            }
        }
    }
}

/// A compiled [`MdMatrix`]: the same matrix over the same reachable state
/// space, with products that run over flat arrays instead of re-walking
/// the diagrams, optionally on several threads.
///
/// Products are bit-identical to the recursive walk in either form; see
/// the [module docs](self) for the determinism argument.
///
/// # Example
///
/// ```
/// use mdl_md::{CompiledMdMatrix, KroneckerExpr, MdMatrix, SparseFactor};
/// use mdl_mdd::Mdd;
/// use mdl_linalg::RateMatrix;
///
/// let mut w = SparseFactor::new(2);
/// w.push(0, 1, 1.0);
/// let mut expr = KroneckerExpr::new(vec![2, 2]);
/// expr.add_term(2.0, vec![Some(w), None]);
/// let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 2]).unwrap()).unwrap();
///
/// let compiled = CompiledMdMatrix::compile(&m);
/// let x = vec![1.0; 4];
/// let (mut y_walk, mut y_comp) = (vec![0.0; 4], vec![0.0; 4]);
/// m.acc_mat_vec(&x, &mut y_walk);
/// compiled.acc_mat_vec(&x, &mut y_comp);
/// assert_eq!(y_walk, y_comp); // bit-identical
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMdMatrix<W: Weight = f64> {
    num_states: usize,
    threads: usize,
    /// The block and leaf arrays the products read — either owned or
    /// borrowed zero-copy from a mapped store artifact.
    parts: CompiledParts<W>,
    row_plan: Plan,
    col_plan: Plan,
    stats: CompileStats,
}

/// Number of worker threads to use when the caller does not care:
/// [`std::thread::available_parallelism`], or `1` when it is unavailable.
///
/// Re-exported from [`mdl_obs::default_threads`] so every layer of the
/// stack (compiled kernels, `ParCsr`, the lumping engine's
/// [`ThreadPool`](mdl_obs::ThreadPool)) resolves "auto" identically.
pub fn default_threads() -> usize {
    mdl_obs::default_threads()
}

impl CompiledMdMatrix {
    /// Compiles a serial kernel (`threads == 1`).
    pub fn compile(m: &MdMatrix) -> Self {
        Self::compile_with_threads(m, 1)
    }

    /// Compiles a kernel whose products use `threads` workers
    /// (`0` means [`default_threads`]). Small matrices
    /// (< 1024 states) and `threads == 1` never spawn.
    pub fn compile_with_threads(m: &MdMatrix, threads: usize) -> Self {
        Self::compile_inner(m, threads, &mdl_obs::Budget::unlimited())
            .expect("unlimited budget cannot interrupt compilation")
    }

    /// [`compile_with_threads`](Self::compile_with_threads) under a
    /// compute [`Budget`](mdl_obs::Budget): the triple traversal checks
    /// the deadline, cancellation token and node cap amortized (every 64
    /// visited triples), and the `md.compile` failpoint is consulted at
    /// entry for deterministic fault injection.
    ///
    /// # Errors
    ///
    /// [`MdError::Interrupted`] when a budget limit is hit or a failpoint
    /// injects a failure; the `nodes` field reports how far the traversal
    /// got.
    pub fn compile_budgeted(
        m: &MdMatrix,
        threads: usize,
        budget: &mdl_obs::Budget,
    ) -> Result<Self, MdError> {
        if mdl_obs::failpoint::hit("md.compile").is_some() {
            return Err(MdError::Interrupted {
                phase: "md.compile",
                nodes: 0,
                reason: mdl_obs::BudgetExceeded::Injected,
            });
        }
        Self::compile_inner(m, threads, budget)
    }

    fn compile_inner(
        m: &MdMatrix,
        threads: usize,
        budget: &mdl_obs::Budget,
    ) -> Result<Self, MdError> {
        // The scalar weight source: every term keeps its stored
        // coefficient, so this compiles to exactly the pre-generic kernel.
        CompiledMdMatrix::compile_weighted(m, threads, budget, &|site: &TermSite| site.coef)
    }
}

impl<W: Weight> CompiledMdMatrix<W> {
    /// Compiles a kernel whose term weights come from `weigh` instead of
    /// the stored `f64` coefficients — the generic entry point behind
    /// [`CompiledMdMatrix::compile`] (where `weigh` is the identity) and
    /// the interval kernels of the certified-bounds path (where `weigh`
    /// consults a rate-envelope sidecar and widens inexactly lumped
    /// terms).
    ///
    /// # Errors
    ///
    /// [`MdError::Interrupted`] when the budget expires or the
    /// `md.compile` failpoint fires (checked by the budgeted wrappers).
    pub fn compile_weighted(
        m: &MdMatrix,
        threads: usize,
        budget: &mdl_obs::Budget,
        weigh: &dyn Fn(&TermSite) -> W,
    ) -> Result<Self, MdError> {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let mut span = mdl_obs::span("md.compile").with("threads", threads);
        let t0 = std::time::Instant::now();

        let mut compiler = Compiler::new(m, budget, weigh);
        let mut blocks = BlockList::<W>::default();
        if !m.reach().is_empty() {
            let root_mdd = m.reach().root();
            let root = compiler.compile_triple(m.md().root(), root_mdd, root_mdd)?;
            // The amortized ticker can undershoot a node cap on small
            // diagrams; settle the cap exactly once traversal is done.
            budget
                .check_nodes(compiler.visited)
                .map_err(|reason| MdError::Interrupted {
                    phase: "md.compile",
                    nodes: compiler.visited,
                    reason,
                })?;
            compiler.linearize(root, &mut blocks);
        }

        let flat_entries: u64 = blocks
            .leafs
            .iter()
            .map(|&leaf| {
                (compiler.leaf_bounds[leaf as usize + 1] - compiler.leaf_bounds[leaf as usize])
                    as u64
            })
            .sum();
        let stats = CompileStats {
            blocks: blocks.len(),
            leaf_programs: compiler.leaf_bounds.len() - 1,
            leaf_entries: compiler.leaf_rows.len(),
            flat_entries,
            triples_visited: compiler.visited,
            triples_compiled: compiler.compiled,
            compile_time: Duration::ZERO, // patched below, after the plans
        };

        let n = m.num_states();
        let parts = CompiledParts {
            num_states: n as u64,
            block_row_bases: blocks.row_bases.into(),
            block_col_bases: blocks.col_bases.into(),
            block_scales: blocks.scales.into(),
            block_leafs: blocks.leafs.into(),
            leaf_bounds: compiler.leaf_bounds.into(),
            leaf_rows: compiler.leaf_rows.into(),
            leaf_cols: compiler.leaf_cols.into(),
            leaf_coefs: compiler.leaf_coefs.into(),
            triples_visited: compiler.visited,
            triples_compiled: compiler.compiled,
        };
        let row_plan = build_plan(&parts, threads, n as u64, true);
        let col_plan = build_plan(&parts, threads, n as u64, false);

        let mut out = CompiledMdMatrix {
            num_states: n,
            threads,
            parts,
            row_plan,
            col_plan,
            stats,
        };
        out.stats.compile_time = t0.elapsed();

        mdl_obs::counter("md.compile.blocks").add(out.stats.blocks as u64);
        mdl_obs::counter("md.compile.leaf_entries").add(out.stats.leaf_entries as u64);
        mdl_obs::counter("md.compile.triples_visited").add(out.stats.triples_visited);
        mdl_obs::counter("md.compile.triples_compiled").add(out.stats.triples_compiled);
        span.record("blocks", out.stats.blocks);
        span.record("leaf_entries", out.stats.leaf_entries);
        span.record("flat_entries", out.stats.flat_entries);
        span.record("dedup_ratio", out.stats.dedup_ratio());
        span.finish();
        Ok(out)
    }

    /// Decomposes the kernel into its serializable content — block arrays
    /// and leaf arenas. The per-thread schedules and wall-clock stats are
    /// derived data and are rebuilt by [`Self::from_parts`]. Cloning a
    /// mapped kernel's parts is cheap (the slabs share the mapping).
    pub fn to_parts(&self) -> CompiledParts<W> {
        self.parts.clone()
    }

    /// Rebuilds a kernel from [`Self::to_parts`] output, validating every
    /// array and reference, then recomputing the per-thread schedules for
    /// `threads` workers (`0` means [`default_threads`]). The rebuilt
    /// kernel's products are bit-identical to the original's; its
    /// `compile_time` stat is zero (nothing was compiled).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural
    /// defect: malformed leaf bounds, misaligned arenas, a non-finite
    /// coefficient, or a block referencing a missing leaf program or an
    /// out-of-range output position.
    pub fn from_parts(parts: CompiledParts<W>, threads: usize) -> Result<Self, String> {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let n = parts.num_states;
        if n > usize::MAX as u64 {
            return Err(format!("num_states {n} exceeds the address space"));
        }
        let num_blocks = parts.block_leafs.len();
        if parts.block_row_bases.len() != num_blocks
            || parts.block_col_bases.len() != num_blocks
            || parts.block_scales.len() != num_blocks
        {
            return Err(format!(
                "block arrays misaligned: {} row bases, {} col bases, {} scales, {num_blocks} leafs",
                parts.block_row_bases.len(),
                parts.block_col_bases.len(),
                parts.block_scales.len()
            ));
        }
        let bounds = &parts.leaf_bounds;
        if bounds.first() != Some(&0) {
            return Err("leaf_bounds must start at 0".into());
        }
        if let Some(w) = bounds.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!(
                "leaf_bounds is not monotonic ({} > {})",
                w[0], w[1]
            ));
        }
        let entries = parts.leaf_rows.len();
        if *bounds.last().unwrap() as usize != entries {
            return Err(format!(
                "leaf_bounds ends at {} but there are {entries} leaf entries",
                bounds.last().unwrap()
            ));
        }
        if parts.leaf_cols.len() != entries || parts.leaf_coefs.len() != entries {
            return Err(format!(
                "leaf arenas misaligned: {} rows, {} cols, {} coefs",
                entries,
                parts.leaf_cols.len(),
                parts.leaf_coefs.len()
            ));
        }
        if let Some((i, &v)) = parts
            .leaf_coefs
            .iter()
            .enumerate()
            .find(|&(_, &v)| !v.is_finite())
        {
            return Err(format!("non-finite leaf coefficient {v:?} at entry {i}"));
        }
        let leaf_programs = bounds.len() - 1;
        // Per-leaf-program output extents, to bound block offsets.
        let mut max_row = vec![0u32; leaf_programs];
        let mut max_col = vec![0u32; leaf_programs];
        for p in 0..leaf_programs {
            for i in bounds[p] as usize..bounds[p + 1] as usize {
                max_row[p] = max_row[p].max(parts.leaf_rows[i]);
                max_col[p] = max_col[p].max(parts.leaf_cols[i]);
            }
        }
        let mut flat_entries = 0u64;
        for i in 0..num_blocks {
            let leaf = parts.block_leafs[i] as usize;
            if leaf >= leaf_programs {
                return Err(format!(
                    "block {i} references leaf program {leaf} of {leaf_programs}"
                ));
            }
            let scale = parts.block_scales[i];
            if !scale.is_finite() {
                return Err(format!("block {i} has non-finite scale {scale:?}"));
            }
            let (row_base, col_base) = (parts.block_row_bases[i], parts.block_col_bases[i]);
            let nonempty = bounds[leaf] < bounds[leaf + 1];
            if nonempty {
                let r = row_base.checked_add(max_row[leaf] as u64);
                let c = col_base.checked_add(max_col[leaf] as u64);
                match (r, c) {
                    (Some(r), Some(c)) if r < n && c < n => {}
                    _ => return Err(format!("block {i} writes outside the {n}-state space")),
                }
            } else if row_base >= n || col_base >= n {
                return Err(format!("block {i} writes outside the {n}-state space"));
            }
            flat_entries += (bounds[leaf + 1] - bounds[leaf]) as u64;
        }
        let row_plan = build_plan(&parts, threads, n, true);
        let col_plan = build_plan(&parts, threads, n, false);
        let stats = CompileStats {
            blocks: num_blocks,
            leaf_programs,
            leaf_entries: entries,
            flat_entries,
            triples_visited: parts.triples_visited,
            triples_compiled: parts.triples_compiled,
            compile_time: Duration::ZERO,
        };
        Ok(CompiledMdMatrix {
            num_states: n as usize,
            threads,
            parts,
            row_plan,
            col_plan,
            stats,
        })
    }

    /// Compilation statistics (sizes, sharing, time).
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Number of worker threads products use (before the small-matrix
    /// serial fallback).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Memory owned by the compiled program in bytes (blocks, arenas and
    /// schedules). Mapped slabs count zero — their pages are shared and
    /// accounted once at the store layer.
    pub fn memory_bytes(&self) -> usize {
        let p = &self.parts;
        p.block_row_bases.owned_bytes()
            + p.block_col_bases.owned_bytes()
            + p.block_scales.owned_bytes()
            + p.block_leafs.owned_bytes()
            + p.leaf_bounds.owned_bytes()
            + p.leaf_rows.owned_bytes()
            + p.leaf_cols.owned_bytes()
            + p.leaf_coefs.owned_bytes()
            + (self.row_plan.order.len() + self.col_plan.order.len()) * 4
    }

    /// `true` when the kernel's arrays borrow from a mapped store
    /// artifact instead of owning copies.
    pub fn is_mapped(&self) -> bool {
        self.parts.is_mapped()
    }

    /// Applies block `b` in the `y[row] += v·x[col]` orientation.
    #[inline]
    fn apply_block_by_row(&self, b: usize, x: &[W], y: &mut [W], y_offset: u64) {
        let p = &self.parts;
        let leaf = p.block_leafs[b] as usize;
        let lo = p.leaf_bounds[leaf] as usize;
        let hi = p.leaf_bounds[leaf + 1] as usize;
        let scale = p.block_scales[b];
        let base = p.block_row_bases[b] - y_offset;
        let col_base = p.block_col_bases[b];
        for i in lo..hi {
            let v = scale.mul(p.leaf_coefs[i]);
            let yi = (base + p.leaf_rows[i] as u64) as usize;
            y[yi] = y[yi].add(v.mul(x[(col_base + p.leaf_cols[i] as u64) as usize]));
        }
    }

    /// Applies block `b` in the `y[col] += v·x[row]` orientation.
    #[inline]
    fn apply_block_by_col(&self, b: usize, x: &[W], y: &mut [W], y_offset: u64) {
        let p = &self.parts;
        let leaf = p.block_leafs[b] as usize;
        let lo = p.leaf_bounds[leaf] as usize;
        let hi = p.leaf_bounds[leaf + 1] as usize;
        let scale = p.block_scales[b];
        let base = p.block_col_bases[b] - y_offset;
        let row_base = p.block_row_bases[b];
        for i in lo..hi {
            let v = scale.mul(p.leaf_coefs[i]);
            let yi = (base + p.leaf_cols[i] as u64) as usize;
            y[yi] = y[yi].add(v.mul(x[(row_base + p.leaf_rows[i] as u64) as usize]));
        }
    }

    /// Applies one block to `B` stacked right-hand sides at once: the leaf
    /// run is traversed a single time and each `(row, col, coef)` entry is
    /// applied to every RHS before moving on — the entry (and the indices
    /// derived from it) stays in registers across the B-way inner loop, so
    /// the shared arenas are read once per block instead of once per RHS.
    #[inline]
    fn apply_block_multi(
        &self,
        b: usize,
        xs: &[&[W]],
        ys: &mut [&mut [W]],
        y_offset: u64,
        by_row: bool,
    ) {
        let p = &self.parts;
        let leaf = p.block_leafs[b] as usize;
        let lo = p.leaf_bounds[leaf] as usize;
        let hi = p.leaf_bounds[leaf + 1] as usize;
        let scale = p.block_scales[b];
        let (out_base, in_base) = if by_row {
            (p.block_row_bases[b] - y_offset, p.block_col_bases[b])
        } else {
            (p.block_col_bases[b] - y_offset, p.block_row_bases[b])
        };
        for i in lo..hi {
            let v = scale.mul(p.leaf_coefs[i]);
            let (o, c) = if by_row {
                (p.leaf_rows[i], p.leaf_cols[i])
            } else {
                (p.leaf_cols[i], p.leaf_rows[i])
            };
            let yi = (out_base + o as u64) as usize;
            let xi = (in_base + c as u64) as usize;
            for (x, y) in xs.iter().zip(ys.iter_mut()) {
                y[yi] = y[yi].add(v.mul(x[xi]));
            }
        }
    }

    /// Blocked multi-RHS product: accumulates `B = xs.len()` products into
    /// `ys` in one pass over the block list and the shared leaf arenas
    /// (`ys[b] += xs[b]·R` when `by_row`, `ys[b] += R·xs[b]` otherwise —
    /// matching [`acc_mat_vec`](RateMatrix::acc_mat_vec) /
    /// [`acc_vec_mat`](RateMatrix::acc_vec_mat) respectively).
    ///
    /// Each RHS accumulates its contributions in exactly the order the
    /// single-vector product would, so every `ys[b]` is **bit-identical**
    /// to an independent [`RateMatrix::acc_mat_vec`] /
    /// [`RateMatrix::acc_vec_mat`] call on `xs[b]` — at any thread count
    /// (the threaded path reuses the same per-orientation [`Plan`], with
    /// every thread owning the same disjoint output range across all B
    /// outputs).
    ///
    /// # Panics
    ///
    /// When `xs.len() != ys.len()` or any vector's length differs from
    /// [`num_states`](RateMatrix::num_states).
    pub fn product_multi(&self, xs: &[&[W]], ys: &mut [Vec<W>], by_row: bool) {
        assert_eq!(xs.len(), ys.len(), "one output per right-hand side");
        for x in xs {
            assert_eq!(x.len(), self.num_states);
        }
        for y in ys.iter() {
            assert_eq!(y.len(), self.num_states);
        }
        if xs.is_empty() {
            return;
        }
        let mut span = mdl_obs::span("md.kernel.product_multi").with("n", self.num_states);
        span.record("rhs", xs.len());
        span.record("threads", self.threads);
        let mut outs: Vec<&mut [W]> = ys.iter_mut().map(|y| y.as_mut_slice()).collect();
        if self.threads == 1 || self.num_states < PAR_MIN_STATES {
            for b in 0..self.parts.num_blocks() {
                self.apply_block_multi(b, xs, &mut outs, 0, by_row);
            }
            span.finish();
            return;
        }
        let plan = if by_row {
            &self.row_plan
        } else {
            &self.col_plan
        };
        std::thread::scope(|scope| {
            let mut rests = outs;
            let mut offset = 0u64;
            for k in 0..self.threads {
                let end = plan.bounds[k + 1];
                let mut chunks = Vec::with_capacity(rests.len());
                let mut tails = Vec::with_capacity(rests.len());
                for rest in rests {
                    let (chunk, tail) = rest.split_at_mut((end - offset) as usize);
                    chunks.push(chunk);
                    tails.push(tail);
                }
                rests = tails;
                let run = &plan.order[plan.splits[k]..plan.splits[k + 1]];
                let y_offset = offset;
                scope.spawn(move || {
                    let mut chunks = chunks;
                    for &idx in run {
                        self.apply_block_multi(idx as usize, xs, &mut chunks, y_offset, by_row);
                    }
                });
                offset = end;
            }
        });
        span.finish();
    }

    /// Shared gather driver: serial in walk order, or threaded over the
    /// orientation's plan (each thread owns a disjoint output range and
    /// applies its blocks in walk order — bit-identical either way).
    fn gather(&self, x: &[W], y: &mut [W], by_row: bool) {
        assert_eq!(x.len(), self.num_states);
        assert_eq!(y.len(), self.num_states);
        let mut span = mdl_obs::span("md.kernel.product").with("n", self.num_states);
        span.record("threads", self.threads);
        if self.threads == 1 || self.num_states < PAR_MIN_STATES {
            for b in 0..self.parts.num_blocks() {
                if by_row {
                    self.apply_block_by_row(b, x, y, 0);
                } else {
                    self.apply_block_by_col(b, x, y, 0);
                }
            }
            span.finish();
            return;
        }
        let plan = if by_row {
            &self.row_plan
        } else {
            &self.col_plan
        };
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut offset = 0u64;
            for k in 0..self.threads {
                let end = plan.bounds[k + 1];
                let (chunk, tail) = rest.split_at_mut((end - offset) as usize);
                let run = &plan.order[plan.splits[k]..plan.splits[k + 1]];
                let y_offset = offset;
                scope.spawn(move || {
                    for &idx in run {
                        if by_row {
                            self.apply_block_by_row(idx as usize, x, chunk, y_offset);
                        } else {
                            self.apply_block_by_col(idx as usize, x, chunk, y_offset);
                        }
                    }
                });
                rest = tail;
                offset = end;
            }
        });
        span.finish();
    }
}

/// Builds a deterministic `threads`-way schedule: block indices stably
/// sorted by the orientation's output base, split at base-change
/// boundaries into weight-balanced runs over disjoint output ranges.
fn build_plan<W: Weight>(parts: &CompiledParts<W>, threads: usize, n: u64, by_row: bool) -> Plan {
    let bases: &[u64] = if by_row {
        &parts.block_row_bases
    } else {
        &parts.block_col_bases
    };
    let bounds_arr = &parts.leaf_bounds;
    let weight = |i: usize| {
        let leaf = parts.block_leafs[i] as usize;
        (bounds_arr[leaf + 1] - bounds_arr[leaf]) as u64
    };
    let num_blocks = parts.num_blocks();
    let mut order: Vec<u32> = (0..num_blocks as u32).collect();
    order.sort_by_key(|&i| bases[i as usize]); // stable: walk order within a base
    let total: u64 = (0..num_blocks).map(weight).sum();
    let mut splits = vec![0usize];
    let mut bounds = vec![0u64];
    let mut acc = 0u64;
    let mut cursor = 0usize;
    for k in 1..threads {
        let target = total * k as u64 / threads as u64;
        while cursor < order.len() && acc < target {
            acc += weight(order[cursor] as usize);
            cursor += 1;
        }
        // Never split a group of blocks sharing an output interval.
        while cursor > 0
            && cursor < order.len()
            && bases[order[cursor] as usize] == bases[order[cursor - 1] as usize]
        {
            acc += weight(order[cursor] as usize);
            cursor += 1;
        }
        splits.push(cursor);
        bounds.push(if cursor < order.len() {
            bases[order[cursor] as usize]
        } else {
            n
        });
    }
    splits.push(order.len());
    bounds.push(n);
    Plan {
        order,
        splits,
        bounds,
    }
}

impl RateMatrix for CompiledMdMatrix {
    fn num_states(&self) -> usize {
        self.num_states
    }

    fn acc_mat_vec(&self, x: &[f64], y: &mut [f64]) {
        self.gather(x, y, true);
    }

    fn acc_vec_mat(&self, x: &[f64], y: &mut [f64]) {
        self.gather(x, y, false);
    }
}

impl CompiledMdMatrix<Interval> {
    /// Applies block `b` of the lower (`upper == false`) or upper
    /// transition operator to the gamble `f`, rounding every step toward
    /// the bound. Per entry the rate interval is `scale · coef` (outward);
    /// the operator picks the endpoint that minimizes (resp. maximizes)
    /// `q · (f(col) − f(row))`. The endpoint test runs on the *rounded*
    /// difference, which stays sound for nonnegative rate intervals: when
    /// the rounded difference straddles zero against the true one, the
    /// selected product is still on the bound's side of zero.
    ///
    /// Self-loop entries contribute `±q·ulp` instead of an exact zero —
    /// one ulp of slack on the bound's side, sound by construction.
    #[inline]
    fn apply_block_bound(&self, b: usize, f: &[f64], out: &mut [f64], y_offset: u64, upper: bool) {
        let p = &self.parts;
        let leaf = p.block_leafs[b] as usize;
        let lo = p.leaf_bounds[leaf] as usize;
        let hi = p.leaf_bounds[leaf + 1] as usize;
        let scale = p.block_scales[b];
        let row_base = p.block_row_bases[b];
        let col_base = p.block_col_bases[b];
        let base = row_base - y_offset;
        for i in lo..hi {
            let rate = scale.mul(p.leaf_coefs[i]);
            let r = (row_base + p.leaf_rows[i] as u64) as usize;
            let c = (col_base + p.leaf_cols[i] as u64) as usize;
            let yi = (base + p.leaf_rows[i] as u64) as usize;
            if upper {
                let g = sub_up(f[c], f[r]);
                let q = if g >= 0.0 { rate.hi } else { rate.lo };
                out[yi] = add_up(out[yi], mul_up(q, g));
            } else {
                let g = sub_down(f[c], f[r]);
                let q = if g >= 0.0 { rate.lo } else { rate.hi };
                out[yi] = add_down(out[yi], mul_down(q, g));
            }
        }
    }
}

impl IntervalRateMatrix for CompiledMdMatrix<Interval> {
    fn num_states(&self) -> usize {
        self.num_states
    }

    /// Deterministic at every thread count: the threaded path reuses the
    /// row-oriented [`Plan`], so each output entry is owned by exactly one
    /// thread and accumulates its contributions in walk order — the same
    /// sequence of directed-rounded adds as the serial sweep.
    fn acc_bound_operator(&self, f: &[f64], out: &mut [f64], upper: bool) {
        assert_eq!(f.len(), self.num_states);
        assert_eq!(out.len(), self.num_states);
        let mut span = mdl_obs::span("md.kernel.bound_operator").with("n", self.num_states);
        span.record("threads", self.threads);
        if self.threads == 1 || self.num_states < PAR_MIN_STATES {
            for b in 0..self.parts.num_blocks() {
                self.apply_block_bound(b, f, out, 0, upper);
            }
            span.finish();
            return;
        }
        let plan = &self.row_plan;
        std::thread::scope(|scope| {
            let mut rest = out;
            let mut offset = 0u64;
            for k in 0..self.threads {
                let end = plan.bounds[k + 1];
                let (chunk, tail) = rest.split_at_mut((end - offset) as usize);
                let run = &plan.order[plan.splits[k]..plan.splits[k + 1]];
                let y_offset = offset;
                scope.spawn(move || {
                    for &idx in run {
                        self.apply_block_bound(idx as usize, f, chunk, y_offset, upper);
                    }
                });
                rest = tail;
                offset = end;
            }
        });
        span.finish();
    }

    fn max_exit_rate_hi(&self) -> f64 {
        let p = &self.parts;
        let mut exit = vec![0.0f64; self.num_states];
        for b in 0..p.num_blocks() {
            let leaf = p.block_leafs[b] as usize;
            let scale = p.block_scales[b];
            let row_base = p.block_row_bases[b];
            let col_base = p.block_col_bases[b];
            for i in p.leaf_bounds[leaf] as usize..p.leaf_bounds[leaf + 1] as usize {
                let r = (row_base + p.leaf_rows[i] as u64) as usize;
                let c = (col_base + p.leaf_cols[i] as u64) as usize;
                if r == c {
                    continue;
                }
                let rate = scale.mul(p.leaf_coefs[i]);
                // Clamp at zero so a (malformed) negative contribution can
                // only over-estimate the exit rate, never shrink it.
                exit[r] = add_up(exit[r], rate.hi.max(0.0));
            }
        }
        exit.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kronecker::{KroneckerExpr, SparseFactor};
    use mdl_linalg::vec_ops;
    use mdl_mdd::Mdd;

    fn cycle(size: usize, rate: f64) -> SparseFactor {
        let mut f = SparseFactor::new(size);
        for s in 0..size {
            f.push(s, (s + 1) % size, rate);
        }
        f
    }

    fn three_level_expr() -> KroneckerExpr {
        let mut expr = KroneckerExpr::new(vec![2, 3, 2]);
        expr.add_term(2.0, vec![Some(cycle(2, 1.0)), None, None]);
        expr.add_term(1.5, vec![None, Some(cycle(3, 1.0)), Some(cycle(2, 0.5))]);
        expr.add_term(0.7, vec![None, None, Some(cycle(2, 2.0))]);
        expr
    }

    fn full_matrix() -> MdMatrix {
        let expr = three_level_expr();
        MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![2, 3, 2]).unwrap()).unwrap()
    }

    fn probe(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.1 + 0.37 * (i % 13) as f64).collect()
    }

    #[test]
    fn products_bit_identical_to_walk() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        let n = m.num_states();
        let x = probe(n);
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        m.acc_mat_vec(&x, &mut a);
        c.acc_mat_vec(&x, &mut b);
        assert_eq!(a, b, "mat·vec bit-identical");
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        m.acc_vec_mat(&x, &mut a);
        c.acc_vec_mat(&x, &mut b);
        assert_eq!(a, b, "vec·mat bit-identical");
    }

    #[test]
    fn products_match_flat_matrix() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        let flat = m.flatten();
        let n = m.num_states();
        let x = probe(n);
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        flat.acc_mat_vec(&x, &mut a);
        c.acc_mat_vec(&x, &mut b);
        assert!(vec_ops::max_abs_diff(&a, &b) < 1e-12);
    }

    #[test]
    fn restricted_reachability_compiles() {
        let expr = three_level_expr();
        let tuples: Vec<Vec<u32>> = (0..12u32)
            .filter(|i| i % 3 != 1)
            .map(|i| vec![i / 6, (i / 2) % 3, i % 2])
            .collect();
        let reach = Mdd::from_tuples(vec![2, 3, 2], tuples).unwrap();
        let m = MdMatrix::new(expr.to_md().unwrap(), reach).unwrap();
        let c = CompiledMdMatrix::compile(&m);
        let n = m.num_states();
        let x = probe(n);
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        m.acc_vec_mat(&x, &mut a);
        c.acc_vec_mat(&x, &mut b);
        assert_eq!(a, b);
        assert_eq!(c.stats().flat_entries, m.count_entries());
    }

    #[test]
    fn threaded_products_bit_identical() {
        // 2 × 3 × 2 is far below the parallel threshold, so force the
        // threaded path indirectly by checking plan-partitioned execution
        // on a model large enough to cross it.
        let mut expr = KroneckerExpr::new(vec![16, 16, 8]);
        expr.add_term(1.0, vec![Some(cycle(16, 1.0)), None, None]);
        expr.add_term(2.0, vec![None, Some(cycle(16, 1.5)), Some(cycle(8, 0.5))]);
        expr.add_term(0.3, vec![None, None, Some(cycle(8, 2.0))]);
        let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![16, 16, 8]).unwrap()).unwrap();
        assert!(m.num_states() >= PAR_MIN_STATES);
        let serial = CompiledMdMatrix::compile(&m);
        let n = m.num_states();
        let x = probe(n);
        let mut y_walk = vec![0.0; n];
        m.acc_mat_vec(&x, &mut y_walk);
        let mut z_walk = vec![0.0; n];
        m.acc_vec_mat(&x, &mut z_walk);
        for threads in [1, 2, 3, 4, 7] {
            let c = CompiledMdMatrix::compile_with_threads(&m, threads);
            let mut y = vec![0.0; n];
            c.acc_mat_vec(&x, &mut y);
            assert_eq!(y_walk, y, "mat·vec, {threads} threads");
            let mut z = vec![0.0; n];
            c.acc_vec_mat(&x, &mut z);
            assert_eq!(z_walk, z, "vec·mat, {threads} threads");
            let mut y_ser = vec![0.0; n];
            serial.acc_mat_vec(&x, &mut y_ser);
            assert_eq!(y, y_ser, "threaded equals serial");
        }
    }

    fn probe_b(n: usize, b: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.2 + 0.29 * ((i + 3 * b) % 11) as f64)
            .collect()
    }

    #[test]
    fn product_multi_bit_identical_to_independent_products() {
        // Small model (serial path) and a model crossing PAR_MIN_STATES
        // (threaded path), both orientations, B ∈ {1, 2, 3, 8}.
        let small = full_matrix();
        let mut expr = KroneckerExpr::new(vec![16, 16, 8]);
        expr.add_term(1.0, vec![Some(cycle(16, 1.0)), None, None]);
        expr.add_term(2.0, vec![None, Some(cycle(16, 1.5)), Some(cycle(8, 0.5))]);
        expr.add_term(0.3, vec![None, None, Some(cycle(8, 2.0))]);
        let large =
            MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![16, 16, 8]).unwrap()).unwrap();
        assert!(large.num_states() >= PAR_MIN_STATES);
        for m in [&small, &large] {
            let n = m.num_states();
            for threads in [1usize, 2, 4] {
                let c = CompiledMdMatrix::compile_with_threads(m, threads);
                for b_count in [1usize, 2, 3, 8] {
                    let inputs: Vec<Vec<f64>> = (0..b_count).map(|b| probe_b(n, b)).collect();
                    let xs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
                    for by_row in [true, false] {
                        let mut multi = vec![vec![0.0; n]; b_count];
                        c.product_multi(&xs, &mut multi, by_row);
                        for (b, x) in xs.iter().enumerate() {
                            let mut single = vec![0.0; n];
                            if by_row {
                                c.acc_mat_vec(x, &mut single);
                            } else {
                                c.acc_vec_mat(x, &mut single);
                            }
                            assert_eq!(
                                multi[b], single,
                                "B={b_count} rhs={b} threads={threads} by_row={by_row}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn product_multi_accumulates_and_handles_empty() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        let n = m.num_states();
        c.product_multi(&[], &mut [], true);
        // Accumulation: a non-zero initial output is added to, not reset.
        let x = probe(n);
        let mut y = vec![1.0; n];
        let mut expect = vec![1.0; n];
        c.acc_mat_vec(&x, &mut expect);
        let mut multi = vec![std::mem::take(&mut y)];
        c.product_multi(&[&x], &mut multi, true);
        assert_eq!(multi[0], expect);
    }

    #[test]
    #[should_panic(expected = "one output per right-hand side")]
    fn product_multi_rejects_mismatched_arity() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        let x = probe(m.num_states());
        c.product_multi(&[&x], &mut [], true);
    }

    #[test]
    fn empty_reachability_compiles_to_nothing() {
        let expr = three_level_expr();
        let empty = Mdd::from_tuples(vec![2, 3, 2], vec![]).unwrap();
        let m = MdMatrix::new(expr.to_md().unwrap(), empty).unwrap();
        let c = CompiledMdMatrix::compile(&m);
        assert_eq!(c.num_states(), 0);
        assert_eq!(c.stats().blocks, 0);
        assert_eq!(c.stats().flat_entries, 0);
    }

    #[test]
    fn single_level_md_compiles() {
        let mut expr = KroneckerExpr::new(vec![4]);
        expr.add_term(1.0, vec![Some(cycle(4, 2.0))]);
        let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![4]).unwrap()).unwrap();
        let c = CompiledMdMatrix::compile(&m);
        assert_eq!(c.stats().blocks, 1);
        let x = probe(4);
        let (mut a, mut b) = (vec![0.0; 4], vec![0.0; 4]);
        m.acc_mat_vec(&x, &mut a);
        c.acc_mat_vec(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn sharing_deduplicates_subprograms() {
        // A full cross-product MDD has one node per level, and the second
        // term's bottom factor is referenced from every level-1 entry: the
        // bottom triples are shared across all incoming paths.
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        let s = c.stats();
        assert!(s.triples_visited >= s.triples_compiled);
        assert!(s.dedup_ratio() >= 1.0);
        assert!(s.leaf_entries as u64 <= s.flat_entries);
        assert_eq!(s.flat_entries, m.count_entries());
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn row_sums_match_walk() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        assert_eq!(RateMatrix::row_sums(&m), RateMatrix::row_sums(&c));
        assert_eq!(RateMatrix::col_sums(&m), RateMatrix::col_sums(&c));
    }

    #[test]
    fn zero_threads_means_auto() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile_with_threads(&m, 0);
        assert_eq!(c.threads(), default_threads());
        assert!(c.threads() >= 1);
    }

    #[test]
    fn unlimited_budget_compiles_identically() {
        let _guard = mdl_obs::testing::guard();
        let m = full_matrix();
        let plain = CompiledMdMatrix::compile(&m);
        let budgeted =
            CompiledMdMatrix::compile_budgeted(&m, 1, &mdl_obs::Budget::unlimited()).unwrap();
        let mut a = plain.stats().clone();
        let mut b = budgeted.stats().clone();
        a.compile_time = Duration::ZERO;
        b.compile_time = Duration::ZERO;
        assert_eq!(a, b);
        let n = m.num_states();
        let x = probe(n);
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        plain.acc_mat_vec(&x, &mut a);
        budgeted.acc_mat_vec(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn expired_deadline_interrupts_compilation() {
        let _guard = mdl_obs::testing::guard();
        let m = full_matrix();
        let budget = mdl_obs::Budget::unlimited().deadline_in(Duration::ZERO);
        let err = CompiledMdMatrix::compile_budgeted(&m, 1, &budget).unwrap_err();
        assert!(matches!(
            err,
            MdError::Interrupted {
                phase: "md.compile",
                reason: mdl_obs::BudgetExceeded::Deadline { .. },
                ..
            }
        ));
    }

    #[test]
    fn node_cap_interrupts_compilation() {
        let _guard = mdl_obs::testing::guard();
        // A model large enough that the traversal crosses the amortized
        // check period (64) several times.
        let mut expr = KroneckerExpr::new(vec![16, 16, 8]);
        expr.add_term(1.0, vec![Some(cycle(16, 1.0)), None, None]);
        expr.add_term(2.0, vec![None, Some(cycle(16, 1.5)), Some(cycle(8, 0.5))]);
        let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![16, 16, 8]).unwrap()).unwrap();
        let full = CompiledMdMatrix::compile(&m);
        assert!(full.stats().triples_visited > 64);
        let budget = mdl_obs::Budget::unlimited().node_cap(1);
        let err = CompiledMdMatrix::compile_budgeted(&m, 1, &budget).unwrap_err();
        let MdError::Interrupted {
            phase,
            nodes,
            reason: mdl_obs::BudgetExceeded::NodeCap { cap, .. },
        } = err
        else {
            panic!("expected node-cap interruption, got {err:?}");
        };
        assert_eq!(phase, "md.compile");
        assert_eq!(cap, 1);
        assert!(nodes <= full.stats().triples_visited);
    }

    #[test]
    fn cancellation_interrupts_compilation() {
        let _guard = mdl_obs::testing::guard();
        let m = full_matrix();
        let token = mdl_obs::CancelToken::new();
        token.cancel();
        let budget = mdl_obs::Budget::unlimited().cancelled_by(&token);
        let err = CompiledMdMatrix::compile_budgeted(&m, 1, &budget).unwrap_err();
        assert!(matches!(
            err,
            MdError::Interrupted {
                reason: mdl_obs::BudgetExceeded::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn kernel_image_round_trip_is_bit_identical() {
        let m = full_matrix();
        let c = CompiledMdMatrix::compile(&m);
        let parts = c.to_parts();
        let mut w = ImageWriter::new();
        parts.write_image(&mut w);
        let payload = w.finish();
        let view = ImageView::parse(&payload).expect("image parses");
        let back = CompiledParts::read_image(&view, SlabSource::Copy).expect("image reads");
        assert_eq!(back, parts);
        let rebuilt = CompiledMdMatrix::from_parts(back, 1).expect("parts validate");
        let n = m.num_states();
        let x = probe(n);
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        c.acc_mat_vec(&x, &mut a);
        rebuilt.acc_mat_vec(&x, &mut b);
        assert_eq!(a, b, "mat·vec bit-identical after image round trip");
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        c.acc_vec_mat(&x, &mut a);
        rebuilt.acc_vec_mat(&x, &mut b);
        assert_eq!(a, b, "vec·mat bit-identical after image round trip");
    }

    #[test]
    fn kernel_image_rejects_truncated_sections() {
        let c = CompiledMdMatrix::compile(&full_matrix());
        let parts = c.to_parts();
        let mut w = ImageWriter::new();
        parts.write_image(&mut w);
        let payload = w.finish();
        // Dropping the trailing bytes must fail cleanly, not panic.
        for cut in [1usize, 8, 16] {
            let trimmed = &payload[..payload.len().saturating_sub(cut)];
            let bad = match ImageView::parse(trimmed) {
                Err(_) => continue,
                Ok(view) => CompiledParts::<f64>::read_image(&view, SlabSource::Copy),
            };
            assert!(bad.is_err(), "truncation by {cut} bytes not detected");
        }
    }

    /// Compiles the point-interval kernel: every term keeps its stored
    /// coefficient as a degenerate `[coef, coef]` interval.
    fn compile_point_interval(m: &MdMatrix, threads: usize) -> CompiledMdMatrix<Interval> {
        CompiledMdMatrix::compile_weighted(m, threads, &mdl_obs::Budget::unlimited(), &|site| {
            Interval::point(site.coef)
        })
        .unwrap()
    }

    /// The exact scalar operator `(Qf)(s) = Σ_c q(s,c)·(f(c) − f(s))`
    /// computed from the scalar kernel: `R·f − f ∘ row_sums`.
    fn exact_operator(m: &MdMatrix, f: &[f64]) -> Vec<f64> {
        let c = CompiledMdMatrix::compile(m);
        let mut qf = vec![0.0; f.len()];
        c.acc_mat_vec(f, &mut qf);
        let sums = RateMatrix::row_sums(&c);
        for (s, v) in qf.iter_mut().enumerate() {
            *v -= f[s] * sums[s];
        }
        qf
    }

    #[test]
    fn point_interval_bound_operators_bracket_exact_operator() {
        let m = full_matrix();
        let n = m.num_states();
        let f = probe(n);
        let exact = exact_operator(&m, &f);
        let ci = compile_point_interval(&m, 1);
        let (mut lower, mut upper) = (vec![0.0; n], vec![0.0; n]);
        ci.acc_bound_operator(&f, &mut lower, false);
        ci.acc_bound_operator(&f, &mut upper, true);
        for s in 0..n {
            assert!(
                lower[s] <= exact[s] && exact[s] <= upper[s],
                "state {s}: [{}, {}] must enclose {}",
                lower[s],
                upper[s],
                exact[s]
            );
            // Point intervals: slack is rounding only, a few ulps.
            assert!(upper[s] - lower[s] < 1e-12, "width {}", upper[s] - lower[s]);
        }
    }

    #[test]
    fn widened_intervals_widen_the_bounds() {
        let m = full_matrix();
        let n = m.num_states();
        let f = probe(n);
        let point = compile_point_interval(&m, 1);
        let delta = 0.05;
        let wide = CompiledMdMatrix::<Interval>::compile_weighted(
            &m,
            1,
            &mdl_obs::Budget::unlimited(),
            &|site| Interval {
                lo: (site.coef - delta).max(0.0),
                hi: site.coef + delta,
            },
        )
        .unwrap();
        let (mut lo_p, mut hi_p) = (vec![0.0; n], vec![0.0; n]);
        point.acc_bound_operator(&f, &mut lo_p, false);
        point.acc_bound_operator(&f, &mut hi_p, true);
        let (mut lo_w, mut hi_w) = (vec![0.0; n], vec![0.0; n]);
        wide.acc_bound_operator(&f, &mut lo_w, false);
        wide.acc_bound_operator(&f, &mut hi_w, true);
        for s in 0..n {
            assert!(lo_w[s] <= lo_p[s], "state {s} lower must not tighten");
            assert!(hi_w[s] >= hi_p[s], "state {s} upper must not tighten");
        }
        assert!(
            (0..n).any(|s| hi_w[s] - lo_w[s] > hi_p[s] - lo_p[s] + 1e-6),
            "widened rates must widen some bound"
        );
    }

    #[test]
    fn bound_operator_bit_identical_across_thread_counts() {
        let mut expr = KroneckerExpr::new(vec![16, 16, 8]);
        expr.add_term(1.0, vec![Some(cycle(16, 1.0)), None, None]);
        expr.add_term(2.0, vec![None, Some(cycle(16, 1.5)), Some(cycle(8, 0.5))]);
        expr.add_term(0.3, vec![None, None, Some(cycle(8, 2.0))]);
        let m = MdMatrix::new(expr.to_md().unwrap(), Mdd::full(vec![16, 16, 8]).unwrap()).unwrap();
        assert!(m.num_states() >= PAR_MIN_STATES);
        let n = m.num_states();
        let f = probe(n);
        let serial = compile_point_interval(&m, 1);
        let (mut lo_ref, mut hi_ref) = (vec![0.0; n], vec![0.0; n]);
        serial.acc_bound_operator(&f, &mut lo_ref, false);
        serial.acc_bound_operator(&f, &mut hi_ref, true);
        for threads in [2usize, 4, 7] {
            let c = compile_point_interval(&m, threads);
            let (mut lo, mut hi) = (vec![0.0; n], vec![0.0; n]);
            c.acc_bound_operator(&f, &mut lo, false);
            c.acc_bound_operator(&f, &mut hi, true);
            assert_eq!(lo_ref, lo, "lower sweep, {threads} threads");
            assert_eq!(hi_ref, hi, "upper sweep, {threads} threads");
        }
    }

    #[test]
    fn max_exit_rate_hi_dominates_scalar_row_sums() {
        let m = full_matrix();
        let ci = compile_point_interval(&m, 1);
        let c = CompiledMdMatrix::compile(&m);
        let scalar_max = RateMatrix::row_sums(&c).into_iter().fold(0.0, f64::max);
        let hi = ci.max_exit_rate_hi();
        assert!(hi >= scalar_max, "{hi} must dominate {scalar_max}");
        assert!(hi < scalar_max + 1e-9, "only rounding slack above");
    }

    #[test]
    fn interval_kernel_image_round_trips() {
        let m = full_matrix();
        let ci = compile_point_interval(&m, 1);
        let parts = ci.to_parts();
        let mut w = ImageWriter::new();
        parts.write_image(&mut w);
        let payload = w.finish();
        let view = ImageView::parse(&payload).expect("image parses");
        let back = CompiledParts::<Interval>::read_image(&view, SlabSource::Copy).expect("reads");
        assert_eq!(back, parts);
        let rebuilt = CompiledMdMatrix::from_parts(back, 1).expect("parts validate");
        let n = m.num_states();
        let f = probe(n);
        let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
        ci.acc_bound_operator(&f, &mut a, false);
        rebuilt.acc_bound_operator(&f, &mut b, false);
        assert_eq!(a, b, "lower sweep bit-identical after round trip");
    }

    #[test]
    fn failpoint_injects_compile_interruption() {
        let _guard = mdl_obs::testing::guard();
        mdl_obs::failpoint::clear();
        mdl_obs::failpoint::set("md.compile", "err").unwrap();
        let m = full_matrix();
        let err =
            CompiledMdMatrix::compile_budgeted(&m, 1, &mdl_obs::Budget::unlimited()).unwrap_err();
        // The infallible path ignores failpoints entirely.
        let c = CompiledMdMatrix::compile(&m);
        mdl_obs::failpoint::clear();
        assert!(matches!(
            err,
            MdError::Interrupted {
                phase: "md.compile",
                reason: mdl_obs::BudgetExceeded::Injected,
                ..
            }
        ));
        assert!(c.stats().blocks > 0);
    }
}
